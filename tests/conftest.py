"""Shared pytest configuration: hypothesis profiles.

* default — CI-friendly example counts (each test sets its own).
* thorough — run with ``--hypothesis-profile=thorough`` for a deeper
  property sweep (e.g. before a release).
* ci — derandomized for reproducible CI runs; selected automatically
  when ``HYPOTHESIS_PROFILE=ci`` is set (the workflow does this).
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "thorough",
    max_examples=1000,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    settings.load_profile(_profile)
