"""Shared pytest configuration: hypothesis profiles.

* default — CI-friendly example counts (each test sets its own).
* thorough — run with ``--hypothesis-profile=thorough`` for a deeper
  property sweep (e.g. before a release).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "thorough",
    max_examples=1000,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
