"""Tests for address generators and request traces."""

import collections

import pytest

from repro.workloads import (
    Op,
    Request,
    ZipfGenerator,
    flash_crowd,
    flash_crowd_sample,
    hotspot,
    materialize,
    mixed,
    sequential,
    uniform,
    uniform_sample,
    write_population,
    zipf_reads,
)


class TestSequential:
    def test_basic(self):
        assert list(sequential(3)) == [0, 1, 2]

    def test_offset(self):
        assert list(sequential(2, start=10)) == [10, 11]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(sequential(-1))


class TestUniform:
    def test_range_and_determinism(self):
        first = list(uniform(100, 50, seed=1))
        second = list(uniform(100, 50, seed=1))
        assert first == second
        assert all(0 <= value < 50 for value in first)

    def test_different_seeds_differ(self):
        assert list(uniform(50, 1000, seed=1)) != list(uniform(50, 1000, seed=2))

    def test_bad_universe(self):
        with pytest.raises(ValueError):
            list(uniform(1, 0))

    def test_roughly_uniform(self):
        counts = collections.Counter(uniform(20_000, 10, seed=3))
        for value in range(10):
            assert counts[value] / 20_000 == pytest.approx(0.1, abs=0.02)


class TestZipf:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, alpha=0)

    def test_determinism(self):
        generator = ZipfGenerator(100, alpha=1.2, seed=7)
        assert list(generator.stream(50)) == list(
            ZipfGenerator(100, alpha=1.2, seed=7).stream(50)
        )

    def test_skew(self):
        generator = ZipfGenerator(1000, alpha=1.2, seed=1)
        counts = collections.Counter(generator.stream(10_000))
        top = counts[0]
        mid = counts.get(100, 0)
        assert top > 10 * max(mid, 1)

    def test_range(self):
        generator = ZipfGenerator(16, seed=2)
        assert all(0 <= value < 16 for value in generator.stream(500))


class TestHotspot:
    def test_validation(self):
        with pytest.raises(ValueError):
            list(hotspot(1, 100, hot_fraction=0.0))
        with pytest.raises(ValueError):
            list(hotspot(1, 100, hot_weight=1.5))

    def test_hot_region_dominates(self):
        values = list(hotspot(5000, 1000, hot_fraction=0.1, hot_weight=0.9, seed=1))
        hot_hits = sum(1 for value in values if value < 100)
        assert hot_hits / len(values) == pytest.approx(0.9, abs=0.03)


class TestTraces:
    def test_write_population(self):
        trace = materialize(write_population(5))
        assert len(trace) == 5
        assert all(request.op is Op.WRITE for request in trace)
        assert [request.address for request in trace] == [0, 1, 2, 3, 4]

    def test_payload_deterministic_and_sized(self):
        request = Request(Op.WRITE, 42, payload_seed=1)
        assert request.payload(32) == Request(Op.WRITE, 42, payload_seed=1).payload(32)
        assert len(request.payload(100)) == 100

    def test_payload_varies_by_address(self):
        a = Request(Op.WRITE, 1, payload_seed=1).payload()
        b = Request(Op.WRITE, 2, payload_seed=1).payload()
        assert a != b

    def test_mixed_fraction(self):
        trace = materialize(mixed(5000, 100, read_fraction=0.7, seed=1))
        reads = sum(1 for request in trace if request.op is Op.READ)
        assert reads / len(trace) == pytest.approx(0.7, abs=0.03)

    def test_mixed_validation(self):
        with pytest.raises(ValueError):
            materialize(mixed(1, 10, read_fraction=2.0))

    def test_zipf_reads(self):
        trace = materialize(zipf_reads(200, 50, seed=1))
        assert all(request.op is Op.READ for request in trace)
        assert all(0 <= request.address < 50 for request in trace)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        from repro.workloads import dump_trace, load_trace

        original = materialize(mixed(200, 50, read_fraction=0.5, seed=4))
        path = tmp_path / "trace.jsonl"
        written = dump_trace(original, path)
        assert written == 200
        loaded = list(load_trace(path))
        assert loaded == original

    def test_write_seeds_preserved(self, tmp_path):
        from repro.workloads import dump_trace, load_trace

        original = materialize(write_population(5))
        path = tmp_path / "w.jsonl"
        dump_trace(original, path)
        loaded = list(load_trace(path))
        assert all(request.payload_seed == 1 for request in loaded)
        assert loaded[3].payload() == original[3].payload()

    def test_blank_lines_skipped(self, tmp_path):
        from repro.workloads import load_trace

        path = tmp_path / "t.jsonl"
        path.write_text('{"op": "read", "address": 3}\n\n')
        assert len(list(load_trace(path))) == 1

    def test_malformed_line_raises(self, tmp_path):
        from repro.workloads import load_trace

        path = tmp_path / "bad.jsonl"
        path.write_text("not-json\n")
        with pytest.raises(ValueError):
            list(load_trace(path))

    def test_missing_field_raises(self, tmp_path):
        from repro.workloads import load_trace

        path = tmp_path / "bad2.jsonl"
        path.write_text('{"op": "read"}\n')
        with pytest.raises(ValueError):
            list(load_trace(path))


class TestBatchSamplers:
    """The batched sampler APIs exist for the million-request scheduling
    benches; each is element-wise identical on the NumPy and pure legs
    (and where a streaming twin shares draw bases, identical to it)."""

    def _both_legs(self, build):
        import repro._compat as compat

        fast = [int(value) for value in build()]
        saved = compat.np
        compat.np = None
        try:
            pure = [int(value) for value in build()]
        finally:
            compat.np = saved
        assert fast == pure
        return fast

    def test_uniform_sample_range_and_legs(self):
        values = self._both_legs(lambda: uniform_sample(500, 64, seed=9))
        assert all(0 <= value < 64 for value in values)
        assert values == self._both_legs(lambda: uniform_sample(500, 64, seed=9))

    def test_zipf_sample_matches_distribution_and_legs(self):
        values = self._both_legs(
            lambda: ZipfGenerator(100, alpha=1.2, seed=7).sample(2_000)
        )
        assert all(0 <= value < 100 for value in values)
        counts = collections.Counter(values)
        assert counts[0] > counts.get(50, 0)

    def test_flash_crowd_sample_matches_stream(self):
        kwargs = dict(crowd_weight=0.8, crowd_size=2, seed=3)
        streamed = list(flash_crowd(1_000, 50, **kwargs))
        sampled = self._both_legs(
            lambda: flash_crowd_sample(1_000, 50, **kwargs)
        )
        assert sampled == streamed
        # the crowd window really concentrates traffic on the targets
        window = streamed[250:750]
        top_two = collections.Counter(window).most_common(2)
        assert sum(count for _, count in top_two) > 0.6 * len(window)

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            flash_crowd_sample(10, 5, crowd_weight=1.5)
        with pytest.raises(ValueError):
            flash_crowd_sample(10, 5, crowd_size=0)
        with pytest.raises(ValueError):
            flash_crowd_sample(10, 5, window=(0.9, 0.1))
