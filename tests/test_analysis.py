"""Tests for the durability models (MTTDL closed forms + simulation)."""

import pytest

from repro.analysis import (
    DurabilityModel,
    annual_loss_probability,
    mttdl,
    mttdl_mirror,
    simulate_mttdl,
)


class TestModelValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            DurabilityModel(0, 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            DurabilityModel(3, 3, 1.0, 1.0)
        with pytest.raises(ValueError):
            DurabilityModel(3, 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            DurabilityModel(3, 1, 1.0, -1.0)


class TestClosedForms:
    def test_mirror_k2_matches_textbook(self):
        # Classic result: MTTDL = (3λ + μ) / (2 λ²).
        mttf, mttr = 1000.0, 10.0
        lam, mu = 1 / mttf, 1 / mttr
        expected = (3 * lam + mu) / (2 * lam * lam)
        assert mttdl_mirror(2, mttf, mttr) == pytest.approx(expected)

    def test_no_redundancy_is_mttf(self):
        model = DurabilityModel(1, 0, 500.0, 5.0)
        assert mttdl(model) == pytest.approx(500.0)

    def test_more_copies_help_enormously(self):
        two = mttdl_mirror(2, 1000.0, 1.0)
        three = mttdl_mirror(3, 1000.0, 1.0)
        assert three > 100 * two

    def test_faster_repair_helps(self):
        slow = mttdl_mirror(2, 1000.0, 100.0)
        fast = mttdl_mirror(2, 1000.0, 1.0)
        assert fast > 10 * slow

    def test_rs_code_tolerance(self):
        # RS(4+2) on 6 devices tolerates 2 losses; beats mirroring k=2 on
        # the same per-device parameters despite more devices.
        rs = mttdl(DurabilityModel(6, 2, 1000.0, 1.0))
        mirror = mttdl_mirror(2, 1000.0, 1.0)
        assert rs > mirror

    def test_annual_loss_probability_small_and_monotone(self):
        good = DurabilityModel(3, 2, 10_000.0, 1.0)
        bad = DurabilityModel(2, 1, 1_000.0, 100.0)
        assert annual_loss_probability(good) < annual_loss_probability(bad)
        assert 0.0 < annual_loss_probability(bad) < 1.0


class TestSimulationCrossCheck:
    def test_simulated_matches_analytic_mirror(self):
        # Moderate ratio so runs are fast yet the estimate concentrates.
        model = DurabilityModel(2, 1, 100.0, 10.0)
        analytic = mttdl(model)
        simulated = simulate_mttdl(model, runs=300, seed=1)
        assert simulated == pytest.approx(analytic, rel=0.25)

    def test_simulated_matches_analytic_three_way(self):
        model = DurabilityModel(3, 2, 50.0, 10.0)
        analytic = mttdl(model)
        simulated = simulate_mttdl(model, runs=300, seed=2)
        assert simulated == pytest.approx(analytic, rel=0.3)

    def test_runs_validated(self):
        with pytest.raises(ValueError):
            simulate_mttdl(DurabilityModel(2, 1, 10.0, 1.0), runs=0)

    def test_deterministic_given_seed(self):
        model = DurabilityModel(2, 1, 100.0, 10.0)
        first = simulate_mttdl(model, runs=50, seed=3)
        second = simulate_mttdl(model, runs=50, seed=3)
        assert first == second


class TestConcentration:
    def test_validation(self):
        from repro.analysis import (
            deviation_probability,
            required_copies,
            tolerance_for,
        )

        with pytest.raises(ValueError):
            deviation_probability(0, 0.5, 0.1)
        with pytest.raises(ValueError):
            deviation_probability(10, 1.5, 0.1)
        with pytest.raises(ValueError):
            deviation_probability(10, 0.5, 0.0)
        with pytest.raises(ValueError):
            tolerance_for(10, 0.5, confidence=1.5)
        with pytest.raises(ValueError):
            required_copies(0.5, 0.0)

    def test_bound_shrinks_with_samples(self):
        from repro.analysis import deviation_probability

        assert deviation_probability(100_000, 0.3, 0.01) < (
            deviation_probability(1_000, 0.3, 0.01)
        )

    def test_tolerance_inverts_probability(self):
        from repro.analysis import deviation_probability, tolerance_for

        eps = tolerance_for(50_000, 0.25, confidence=0.999)
        assert deviation_probability(50_000, 0.25, eps) <= 0.0011

    def test_required_copies_round_trip(self):
        from repro.analysis import required_copies, tolerance_for

        n = required_copies(0.4, 0.01, confidence=0.99)
        assert tolerance_for(n, 0.4, confidence=0.99) <= 0.0101

    def test_empirical_deviation_within_tolerance(self):
        """A perfectly fair strategy stays inside the Chernoff envelope."""
        import collections

        from repro.analysis import fairness_tolerances
        from repro.core import RedundantShare
        from repro.types import bins_from_capacities

        strategy = RedundantShare(
            bins_from_capacities([900, 700, 400]), copies=2
        )
        balls = 20_000
        counts = collections.Counter()
        for address in range(balls):
            counts.update(strategy.place(address))
        expected = strategy.expected_shares()
        tolerances = fairness_tolerances(expected, 2 * balls, confidence=0.9999)
        for bin_id, share in expected.items():
            deviation = abs(counts[bin_id] / (2 * balls) - share)
            assert deviation <= tolerances[bin_id], bin_id


class TestObservedModel:
    """Edge cases for fitting a durability model to a chaos run."""

    def test_rejects_zero_failures(self):
        from repro.analysis import observed_model

        with pytest.raises(ValueError):
            observed_model(10, 1, 0, 5.0, 0.5)

    def test_rejects_non_positive_horizon(self):
        from repro.analysis import observed_model

        with pytest.raises(ValueError):
            observed_model(10, 1, 3, 0.0, 0.5)

    def test_rejects_non_positive_repair_time(self):
        from repro.analysis import observed_model

        with pytest.raises(ValueError):
            observed_model(10, 1, 3, 5.0, 0.0)
        with pytest.raises(ValueError):
            observed_model(10, 1, 3, 5.0, -1.0)

    def test_single_failure_fit(self):
        # One failure over the horizon: the per-device MTTF estimate is
        # the full pooled observation time.
        from repro.analysis import mttdl, observed_model

        model = observed_model(10, 1, 1, 5.0, 0.5)
        assert model.mttf == pytest.approx(50.0)
        assert model.mttr == pytest.approx(0.5)
        assert mttdl(model) > model.mttf

    def test_fit_scales_with_failures(self):
        from repro.analysis import observed_model

        few = observed_model(10, 1, 2, 5.0, 0.5)
        many = observed_model(10, 1, 20, 5.0, 0.5)
        assert few.mttf == pytest.approx(10 * many.mttf)


class TestMeanField:
    """Mean-field replication ODE: conservation, fixed points, repair."""

    def test_step_conserves_mass(self):
        from repro.analysis import mean_field_step

        dist = (0.0, 0.1, 0.3, 0.6)
        for repair in (0.0, 0.05, 1.0):
            stepped = mean_field_step(dist, 0.01, repair)
            assert sum(stepped) == pytest.approx(1.0)
            assert all(x >= 0 for x in stepped)

    def test_no_failure_no_repair_is_fixed_point(self):
        from repro.analysis import mean_field_step

        dist = (0.2, 0.3, 0.5)
        assert mean_field_step(dist, 0.0, 0.0) == pytest.approx(dist)

    def test_class_zero_is_absorbing(self):
        from repro.analysis import mean_field_trajectory

        final = mean_field_trajectory(2, 400, 0.05, 0.0)[-1]
        assert final[0] > 0.9  # no repair: everything dies eventually

    def test_repair_moves_mass_up(self):
        from repro.analysis import mean_field_step

        dist = (0.0, 0.5, 0.5)
        repaired = mean_field_step(dist, 0.0, 0.3)
        assert repaired[2] > dist[2]
        assert repaired[1] < dist[1]

    def test_priority_repairs_lowest_class_first(self):
        # Budget smaller than class-1 mass: class 2 gets nothing.
        from repro.analysis import mean_field_step

        dist = (0.0, 0.4, 0.4, 0.2)
        repaired = mean_field_step(dist, 0.0, 0.25)
        assert repaired[2] == pytest.approx(0.4 + 0.25)
        assert repaired[1] == pytest.approx(0.4 - 0.25)

    def test_distribution_averages_marks(self):
        from repro.analysis import (
            mean_field_distribution,
            mean_field_trajectory,
        )

        marks = [5, 10]
        averaged = mean_field_distribution(
            3, 0.02, 0.5, sample_epochs=marks
        )
        per_mark = [
            mean_field_trajectory(3, mark, 0.02, 0.5)[mark] for mark in marks
        ]
        for cls in range(4):
            expected = sum(traj[cls] for traj in per_mark) / len(per_mark)
            assert averaged[cls] == pytest.approx(expected)

    def test_validation_rejects_bad_inputs(self):
        from repro.analysis import mean_field_step

        with pytest.raises(ValueError):
            mean_field_step((1.0,), 1.5, 0.0)
        with pytest.raises(ValueError):
            mean_field_step((1.0,), -0.1, 0.0)
        with pytest.raises(ValueError):
            mean_field_step((1.0,), 0.1, -0.5)

    def test_total_variation_bounds(self):
        from repro.analysis import total_variation

        assert total_variation((0.25, 0.75), (0.75, 0.25)) == pytest.approx(
            0.5
        )
