"""TrivialReplication's vectorized batch engine must actually be faster.

Regression pin for the 0.91x slowdown the throughput table once showed:
``place_many`` used to fall through to the generic per-address loop even
with NumPy importable, paying batch-assembly overhead for zero vector
work.  Now the masked-rendezvous engine must beat the scalar loop on a
100k-address batch — the scalar side is rated on a subsample so the test
stays cheap.

Also pins the near-tie guard: addresses whose winning margin is below
``_TIE_GUARD`` are re-derived by the scalar loop, keeping the batch
bit-identical even where NumPy's SIMD ``log`` differs from ``math.log``
by an ulp.
"""

import time

import pytest

from repro._compat import HAVE_NUMPY
from repro.placement import TrivialReplication
from repro.types import bins_from_capacities

BINS = bins_from_capacities(
    [100, 137, 174, 211, 248, 285, 322, 359, 396, 433, 470, 507]
)


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector engine needs NumPy")
def test_batch_beats_scalar_loop_at_100k():
    strategy = TrivialReplication(BINS, copies=3)
    population = list(range(100_000))
    sample = population[:10_000]

    strategy.place_many(population[:64])  # warm lazy state
    start = time.perf_counter()
    batch = strategy.place_many(population)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar = [strategy.place(address) for address in sample]
    scalar_seconds = time.perf_counter() - start

    assert batch.tuples()[: len(sample)] == scalar

    batch_rate = len(population) / batch_seconds
    scalar_rate = len(sample) / scalar_seconds
    speedup = batch_rate / scalar_rate
    assert speedup > 1.0, (
        f"vectorized trivial engine is not faster than the scalar loop "
        f"({speedup:.2f}x; batch {batch_rate:,.0f}/s vs scalar "
        f"{scalar_rate:,.0f}/s)"
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector engine needs NumPy")
def test_vector_engine_is_used_not_generic_loop(monkeypatch):
    # If the vector engine runs, the scalar place() is never consulted for
    # clear-margin addresses; only near-ties fall back to it.  A batch
    # where place() is called for every address means the engine
    # regressed to the generic loop.
    strategy = TrivialReplication(BINS, copies=3)
    calls = []
    original = TrivialReplication.place

    def counting_place(self, address):
        calls.append(address)
        return original(self, address)

    monkeypatch.setattr(TrivialReplication, "place", counting_place)
    count = 5_000
    strategy.place_many(range(count))
    assert len(calls) < count, (
        "place_many consulted the scalar loop for every address — the "
        "vectorized engine is not running"
    )
