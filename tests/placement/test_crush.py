"""Tests for the CRUSH baseline (buckets + firstn selection)."""

import collections

import pytest

from repro.exceptions import ConfigurationError
from repro.placement import (
    CrushStrategy,
    ListBucket,
    Straw2Bucket,
    UniformBucket,
    make_bucket,
    two_level_map,
)
from repro.types import BinSpec, bins_from_capacities


class TestBucketValidation:
    def test_empty_bucket_rejected(self):
        with pytest.raises(ConfigurationError):
            Straw2Bucket("b", [], [])

    def test_misaligned_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            Straw2Bucket("b", ["a"], [1.0, 2.0])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            ListBucket("b", ["a", "b"], [1.0, 0.0])

    def test_uniform_requires_equal_weights(self):
        with pytest.raises(ConfigurationError):
            UniformBucket("b", ["a", "b"], [1.0, 2.0])

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bucket("pyramid", "b", ["a"], [1.0])


@pytest.mark.parametrize("kind", ["uniform", "list", "straw2", "tree"])
class TestBucketSelection:
    def test_deterministic(self, kind):
        weights = [1.0, 1.0, 1.0] if kind == "uniform" else [3.0, 2.0, 1.0]
        bucket = make_bucket(kind, "b", ["x", "y", "z"], weights)
        assert bucket.choose(5, 0, 0) == bucket.choose(5, 0, 0)

    def test_attempts_decorrelate(self, kind):
        weights = [1.0] * 4
        bucket = make_bucket(kind, "b", ["a", "b", "c", "d"], weights)
        outcomes = {bucket.choose(5, 0, attempt) for attempt in range(32)}
        assert len(outcomes) > 1


class TestWeightedBucketsAreFair:
    BALLS = 30_000

    @pytest.mark.parametrize("kind", ["list", "straw2", "tree"])
    def test_shares_track_weights(self, kind):
        bucket = make_bucket(kind, "b", ["x", "y", "z"], [1.0, 3.0, 6.0])
        counts = collections.Counter(
            bucket.choose(address, 0, 0) for address in range(self.BALLS)
        )
        assert counts["z"] / self.BALLS == pytest.approx(0.6, abs=0.012)
        assert counts["y"] / self.BALLS == pytest.approx(0.3, abs=0.012)
        assert counts["x"] / self.BALLS == pytest.approx(0.1, abs=0.012)


class TestCrushStrategy:
    def test_redundancy(self):
        strategy = CrushStrategy(bins_from_capacities([5, 4, 3, 2]), copies=3)
        for address in range(2000):
            placement = strategy.place(address)
            assert len(set(placement)) == 3

    def test_deterministic(self):
        strategy = CrushStrategy(bins_from_capacities([5, 4, 3]), copies=2)
        assert strategy.place(9) == strategy.place(9)

    def test_straw2_adaptivity(self):
        """Adding a device only pulls data onto it (straw property)."""
        before = CrushStrategy(bins_from_capacities([10, 10, 10]), copies=1)
        after = CrushStrategy(bins_from_capacities([10, 10, 10, 10]), copies=1)
        for address in range(3000):
            old = before.place(address)[0]
            new = after.place(address)[0]
            if old != new:
                assert new == "bin-3"

    def test_collision_retry_fairness_cost(self):
        """On a tiny skewed pool CRUSH's retry loop distorts shares —
        the gap to Redundant Share the baseline bench reports."""
        capacities = [4, 1, 1]
        strategy = CrushStrategy(bins_from_capacities(capacities), copies=2)
        counts = collections.Counter()
        balls = 20_000
        for address in range(balls):
            for device in strategy.place(address):
                counts[device] += 1
        big_share = counts["bin-0"] / (2 * balls)
        # Fair would be min(1, k*c_0)/k = 0.5; retries push it below.
        assert big_share < 0.5

    def test_hierarchy_map(self):
        racks = {
            "r1": bins_from_capacities([4, 4], prefix="r1"),
            "r2": bins_from_capacities([4, 4], prefix="r2"),
        }
        root, bins = two_level_map(racks)
        strategy = CrushStrategy(bins, copies=2, root=root)
        for address in range(500):
            placement = strategy.place(address)
            assert len(set(placement)) == 2

    def test_map_leaf_mismatch_rejected(self):
        root = Straw2Bucket("root", ["other-1", "other-2"], [1.0, 1.0])
        with pytest.raises(ConfigurationError):
            CrushStrategy(bins_from_capacities([5, 4]), copies=2, root=root)
