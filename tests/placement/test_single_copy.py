"""Shared behavioural tests for all single-copy placers."""

import collections

import pytest

from repro.placement import (
    AliasPlacer,
    ConsistentHashingPlacer,
    LinearDistancePlacer,
    LogDistancePlacer,
    RendezvousPlacer,
    SharePlacer,
    SievePlacer,
)
from repro.types import bins_from_capacities

EXACT_PLACERS = [RendezvousPlacer, AliasPlacer, SievePlacer]
APPROXIMATE_PLACERS = [
    ConsistentHashingPlacer,
    SharePlacer,
    LogDistancePlacer,
    LinearDistancePlacer,
]
ALL_PLACERS = EXACT_PLACERS + APPROXIMATE_PLACERS


def empirical_shares(placer, balls):
    counts = collections.Counter(placer.place(address) for address in range(balls))
    return {bin_id: count / balls for bin_id, count in counts.items()}


@pytest.mark.parametrize("placer_cls", ALL_PLACERS)
class TestCommonBehaviour:
    def test_deterministic(self, placer_cls):
        placer = placer_cls(bins_from_capacities([5, 3, 2]))
        assert placer.place(17) == placer.place(17)

    def test_returns_known_bin(self, placer_cls):
        placer = placer_cls(bins_from_capacities([5, 3, 2]))
        ids = {spec.bin_id for spec in placer.bins}
        for address in range(200):
            assert placer.place(address) in ids

    def test_single_bin(self, placer_cls):
        placer = placer_cls(bins_from_capacities([7]))
        assert placer.place(0) == "bin-0"

    def test_rejects_empty(self, placer_cls):
        with pytest.raises(ValueError):
            placer_cls([])

    def test_describe_mentions_bins(self, placer_cls):
        placer = placer_cls(bins_from_capacities([5, 3]))
        assert "2 bins" in placer.describe()


@pytest.mark.parametrize("placer_cls", EXACT_PLACERS)
class TestExactFairness:
    def test_heterogeneous_shares(self, placer_cls):
        capacities = [100, 300, 600]
        placer = placer_cls(bins_from_capacities(capacities))
        observed = empirical_shares(placer, 30_000)
        assert observed.get("bin-0", 0.0) == pytest.approx(0.1, abs=0.01)
        assert observed.get("bin-1", 0.0) == pytest.approx(0.3, abs=0.012)
        assert observed.get("bin-2", 0.0) == pytest.approx(0.6, abs=0.012)


@pytest.mark.parametrize("placer_cls", APPROXIMATE_PLACERS)
class TestApproximateFairness:
    def test_heterogeneous_shares_loose(self, placer_cls):
        capacities = [100, 300, 600]
        placer = placer_cls(bins_from_capacities(capacities))
        observed = empirical_shares(placer, 20_000)
        # Approximate schemes: right ordering and rough magnitudes.
        assert observed.get("bin-2", 0.0) > observed.get("bin-1", 0.0)
        assert observed.get("bin-1", 0.0) > observed.get("bin-0", 0.0)
        assert observed.get("bin-2", 0.0) == pytest.approx(0.6, abs=0.15)


class TestRendezvousSpecifics:
    def test_place_top_distinct(self):
        placer = RendezvousPlacer(bins_from_capacities([5, 4, 3, 2]))
        top = placer.place_top(11, 3)
        assert len(set(top)) == 3
        assert top[0] == placer.place(11)

    def test_place_top_too_many(self):
        placer = RendezvousPlacer(bins_from_capacities([5, 4]))
        with pytest.raises(ValueError):
            placer.place_top(0, 3)

    def test_one_competitive_adaptivity(self):
        """Only balls won by the new bin move (rendezvous's key property)."""
        before = RendezvousPlacer(bins_from_capacities([100, 100, 100]))
        after = RendezvousPlacer(bins_from_capacities([100, 100, 100, 100]))
        balls = 5000
        moved = 0
        for address in range(balls):
            first, second = before.place(address), after.place(address)
            if first != second:
                moved += 1
                assert second == "bin-3"  # moves only onto the new bin
        assert moved / balls == pytest.approx(0.25, abs=0.03)


class TestConsistentHashingSpecifics:
    def test_successor_chain_distinct(self):
        placer = ConsistentHashingPlacer(bins_from_capacities([5, 4, 3, 2]))
        chain = placer.place_successors(3, 3)
        assert len(set(chain)) == 3
        assert chain[0] == placer.place(3)

    def test_expected_shares_are_arcs(self):
        placer = ConsistentHashingPlacer(bins_from_capacities([5, 5]))
        shares = placer.expected_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_unweighted_mode(self):
        placer = ConsistentHashingPlacer(
            bins_from_capacities([10, 1]), weight_points=False
        )
        assert placer.ring.points_of("bin-0") == placer.ring.points_of("bin-1")

    def test_bad_points_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashingPlacer(bins_from_capacities([5]), points_per_bin=0)

    def test_removal_only_moves_victims(self):
        before = ConsistentHashingPlacer(bins_from_capacities([5, 5, 5]))
        survivors = bins_from_capacities([5, 5, 5])[:2]
        after = ConsistentHashingPlacer(survivors)
        for address in range(2000):
            owner = before.place(address)
            if owner != "bin-2":
                assert after.place(address) == owner


class TestShareSpecifics:
    def test_expected_shares_sum_to_one(self):
        placer = SharePlacer(bins_from_capacities([7, 5, 3, 1]))
        assert sum(placer.expected_shares().values()) == pytest.approx(1.0)

    def test_expected_shares_match_empirical(self):
        placer = SharePlacer(bins_from_capacities([7, 5, 3, 1]))
        analytic = placer.expected_shares()
        observed = empirical_shares(placer, 20_000)
        for bin_id, share in analytic.items():
            assert observed.get(bin_id, 0.0) == pytest.approx(share, abs=0.015)

    def test_stretch_default_grows_with_bins(self):
        small = SharePlacer(bins_from_capacities([1] * 4))
        large = SharePlacer(bins_from_capacities([1] * 64))
        assert large.stretch > small.stretch

    def test_coverage_gap_small_with_default_stretch(self):
        placer = SharePlacer(bins_from_capacities([10] * 16))
        assert placer.coverage_gap() < 0.2

    def test_custom_stretch_respected(self):
        placer = SharePlacer(bins_from_capacities([5, 5]), stretch=4.0)
        assert placer.stretch == 4.0

    def test_giant_bin_covers_everything(self):
        # One bin with >= 1/stretch of the capacity gets a full-circle
        # interval; lookups must still work.
        placer = SharePlacer(bins_from_capacities([1000, 1, 1]), stretch=3.0)
        for address in range(200):
            assert placer.place(address) in {"bin-0", "bin-1", "bin-2"}


class TestSieveSpecifics:
    def test_expected_rounds(self):
        placer = SievePlacer(bins_from_capacities([10, 10]))
        assert placer.expected_rounds() == pytest.approx(1.0)
        skewed = SievePlacer(bins_from_capacities([30, 10, 10, 10]))
        assert skewed.expected_rounds() == pytest.approx(2.0)


class TestDistanceSpecifics:
    def test_points_per_bin_validated(self):
        with pytest.raises(ValueError):
            LinearDistancePlacer(bins_from_capacities([5]), points_per_bin=0)

    def test_log_method_close_to_proportional(self):
        placer = LogDistancePlacer(
            bins_from_capacities([100, 300, 600]), points_per_bin=32
        )
        observed = empirical_shares(placer, 20_000)
        assert observed.get("bin-2", 0.0) == pytest.approx(0.6, abs=0.08)
