"""RPDP: rate resolution, analytic load flattening, batch equivalence.

The strategy is the trivial masked-rendezvous engine with the weight
vector swapped for service-rate shares, so most of the engine contract
is inherited; what this file pins is the part that is new — how rates
are resolved and validated, that the analytic utilisation really is
flatter than a capacity-only placement on a skewed-rate fleet (the
bench gate's substance), and that the salts differ from the parent so
the two strategies do not shadow each other.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro._compat import HAVE_NUMPY
from repro.exceptions import ConfigurationError
from repro.placement import (
    ResidualPerformancePlacement,
    TrivialReplication,
    utilization,
)
from repro.types import bins_from_capacities

BINS = bins_from_capacities([400, 300, 200, 100])
#: Inverse of the capacities: the biggest device is the slowest.
SKEWED = (1.0, 2.0, 4.0, 8.0)

address_lists = st.lists(
    st.integers(min_value=0, max_value=2**70), min_size=1, max_size=48
)


class TestRateResolution:
    def test_defaults_to_capacities(self):
        strategy = ResidualPerformancePlacement(BINS, copies=2)
        assert strategy.service_rates == {
            "bin-0": 400.0, "bin-1": 300.0, "bin-2": 200.0, "bin-3": 100.0,
        }

    def test_positional_rates_align_with_bins(self):
        strategy = ResidualPerformancePlacement(
            BINS, copies=2, service_rates=SKEWED
        )
        assert strategy.service_rates["bin-3"] == 8.0

    def test_mapping_rates_must_cover_exactly(self):
        with pytest.raises(ConfigurationError, match="missing \\['bin-3'\\]"):
            ResidualPerformancePlacement(
                BINS, copies=2,
                service_rates={"bin-0": 1, "bin-1": 1, "bin-2": 1},
            )
        with pytest.raises(ConfigurationError, match="unknown \\['dX'\\]"):
            ResidualPerformancePlacement(
                BINS, copies=2,
                service_rates={"bin-0": 1, "bin-1": 1, "bin-2": 1, "bin-3": 1, "dX": 1},
            )

    def test_positional_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="3 service rates"):
            ResidualPerformancePlacement(
                BINS, copies=2, service_rates=(1, 2, 3)
            )

    def test_rates_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            ResidualPerformancePlacement(
                BINS, copies=2, service_rates=(1, 2, 3, 0)
            )


class TestLoadFlattening:
    def test_expected_shares_track_rates_not_capacities(self):
        strategy = ResidualPerformancePlacement(
            BINS, copies=2, service_rates=SKEWED
        )
        shares = strategy.expected_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-12
        # d3 is the fastest device despite the smallest capacity.
        assert shares["bin-3"] == max(shares.values())
        assert shares["bin-0"] == min(shares.values())

    def test_peak_load_beats_capacity_only_placement(self):
        rates = dict(zip(("bin-0", "bin-1", "bin-2", "bin-3"), SKEWED))
        rpdp = ResidualPerformancePlacement(
            BINS, copies=3, service_rates=SKEWED
        )
        trivial = TrivialReplication(BINS, copies=3)
        rpdp_peak = max(rpdp.expected_load().values())
        trivial_peak = max(
            utilization(trivial.expected_shares(), rates).values()
        )
        assert rpdp_peak < trivial_peak

    def test_homogeneous_rates_degenerate_to_trivial_weights(self):
        flat = ResidualPerformancePlacement(
            BINS, copies=2, service_rates=(5, 5, 5, 5)
        )
        load = flat.expected_load()
        spread = max(load.values()) - min(load.values())
        assert spread < 1e-9

    def test_clip_rates_false_uses_raw_shares(self):
        raw = ResidualPerformancePlacement(
            BINS, copies=2, service_rates=SKEWED, clip_rates=False
        )
        clipped = ResidualPerformancePlacement(
            BINS, copies=2, service_rates=SKEWED, clip_rates=True
        )
        assert raw._weights != clipped._weights

    def test_large_fleet_has_no_closed_form(self):
        wide = ResidualPerformancePlacement(
            bins_from_capacities([10] * 13), copies=2
        )
        assert wide.expected_shares() is None
        assert wide.expected_load() is None


class TestUtilizationMetric:
    def test_accepts_counts_and_shares_alike(self):
        rates = {"a": 2.0, "b": 2.0}
        from_counts = utilization({"a": 30, "b": 10}, rates)
        from_shares = utilization({"a": 0.75, "b": 0.25}, rates)
        assert from_counts == pytest.approx(from_shares)
        assert from_counts["a"] == pytest.approx(1.5)

    def test_rejects_non_positive_totals(self):
        with pytest.raises(ValueError, match="positive totals"):
            utilization({"a": 0.0}, {"a": 1.0})
        with pytest.raises(ValueError, match="positive totals"):
            utilization({"a": 1.0}, {"a": 0.0})


class TestEngineContract:
    def test_draws_differ_from_the_trivial_baseline(self):
        # Distinct namespace → distinct salts, even with equal weights.
        rpdp = ResidualPerformancePlacement(BINS, copies=2)
        trivial = TrivialReplication(BINS, copies=2)
        rows_rpdp = rpdp.place_many(range(256)).tuples()
        rows_trivial = trivial.place_many(range(256)).tuples()
        assert rows_rpdp != rows_trivial

    @given(addresses=address_lists)
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar(self, addresses):
        strategy = ResidualPerformancePlacement(
            BINS, copies=3, service_rates=SKEWED
        )
        batch = strategy.place_many(addresses)
        assert batch.tuples() == [strategy.place(a) for a in addresses]

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both legs")
    def test_pure_python_leg_is_bit_identical(self, monkeypatch):
        strategy = ResidualPerformancePlacement(
            BINS, copies=3, service_rates=SKEWED
        )
        addresses = list(range(0, 4096, 17))
        vectorized = strategy.place_many(addresses).tuples()
        monkeypatch.setattr(compat, "np", None)
        fallback = strategy.place_many(addresses).tuples()
        assert fallback == vectorized

    def test_placements_are_k_distinct_devices(self):
        strategy = ResidualPerformancePlacement(
            BINS, copies=3, service_rates=SKEWED
        )
        for address in range(64):
            placement = strategy.place(address)
            assert len(placement) == 3
            assert len(set(placement)) == 3
