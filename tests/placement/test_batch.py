"""Batch placement equivalence: ``place_many`` vs the scalar loop.

The vectorized pipeline (and its pure-Python fallback) must agree
element-wise with ``[place(a) for a in addresses]`` for every strategy,
across random capacity vectors, replication degrees and namespaces.
"""

import collections

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro.core import FastRedundantShare, LinMirror, RedundantShare
from repro.exceptions import PlacementError
from repro.placement import (
    BatchPlacement,
    ConsistentHashingPlacer,
    CrushStrategy,
    RendezvousPlacer,
    TrivialReplication,
)
from repro.types import bins_from_capacities

REPLICATED_FACTORIES = {
    "redundant-share": lambda bins, copies, ns: RedundantShare(
        bins, copies=copies, namespace=ns
    ),
    "lin-mirror": lambda bins, copies, ns: LinMirror(bins, namespace=ns),
    "fast-redundant-share": lambda bins, copies, ns: FastRedundantShare(
        bins, copies=copies, namespace=ns
    ),
    "trivial": lambda bins, copies, ns: TrivialReplication(
        bins, copies=copies, namespace=ns
    ),
    "crush": lambda bins, copies, ns: CrushStrategy(
        bins, copies=copies, namespace=ns
    ),
}

SINGLE_COPY_FACTORIES = {
    "rendezvous": lambda bins, ns: RendezvousPlacer(bins, namespace=ns),
    "consistent-hashing": lambda bins, ns: ConsistentHashingPlacer(
        bins, namespace=ns
    ),
}

capacities_vectors = st.lists(
    st.integers(min_value=1, max_value=2_000), min_size=5, max_size=12
)
replication_degrees = st.integers(min_value=2, max_value=4)
namespaces = st.sampled_from(["", "ns-a", "tenant/7"])
address_lists = st.lists(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    min_size=1,
    max_size=64,
)


def scalar_rows(strategy, addresses):
    return [tuple(strategy.place(address)) for address in addresses]


@pytest.mark.parametrize("name", sorted(REPLICATED_FACTORIES))
@settings(max_examples=25, deadline=None)
@given(
    capacities=capacities_vectors,
    copies=replication_degrees,
    namespace=namespaces,
    addresses=address_lists,
)
def test_place_many_matches_scalar_loop(
    name, capacities, copies, namespace, addresses
):
    strategy = REPLICATED_FACTORIES[name](
        bins_from_capacities(capacities), copies, namespace
    )
    try:
        expected = scalar_rows(strategy, addresses)
    except PlacementError:
        # CRUSH's bounded retry can fail on pathological weight vectors;
        # that is a property of the strategy, not of the batch engine.
        assume(False)
    batch = strategy.place_many(addresses)
    assert len(batch) == len(addresses)
    assert [tuple(row) for row in batch.tuples()] == expected


@pytest.mark.parametrize("name", sorted(SINGLE_COPY_FACTORIES))
@settings(max_examples=25, deadline=None)
@given(
    capacities=capacities_vectors,
    namespace=namespaces,
    addresses=address_lists,
)
def test_single_copy_place_many_matches_scalar_loop(
    name, capacities, namespace, addresses
):
    placer = SINGLE_COPY_FACTORIES[name](
        bins_from_capacities(capacities), namespace
    )
    assert placer.place_many(addresses) == [
        placer.place(address) for address in addresses
    ]


@settings(max_examples=25, deadline=None)
@given(
    capacities=capacities_vectors,
    copies=replication_degrees,
    addresses=address_lists,
)
def test_batch_counts_match_scalar_histogram(capacities, copies, addresses):
    strategy = RedundantShare(bins_from_capacities(capacities), copies=copies)
    expected = collections.Counter(
        bin_id
        for address in addresses
        for bin_id in strategy.place(address)
    )
    assert strategy.place_many(addresses).counts() == dict(expected)


class TestPurePythonFallback:
    """The fallback path must agree exactly with the NumPy pipeline."""

    ADDRESSES = list(range(-7, 400)) + [2**63, 2**64 - 1]

    def fixed_strategies(self):
        bins = bins_from_capacities([100, 250, 60, 400, 90, 130, 310, 55])
        return [
            RedundantShare(bins, copies=3),
            LinMirror(bins),
            TrivialReplication(bins, copies=3),
        ]

    def test_fallback_matches_numpy_pipeline(self, monkeypatch):
        baseline = [
            [tuple(row) for row in s.place_many(self.ADDRESSES).tuples()]
            for s in self.fixed_strategies()
        ]
        monkeypatch.setattr(compat, "np", None)
        fallback = [
            [tuple(row) for row in s.place_many(self.ADDRESSES).tuples()]
            for s in self.fixed_strategies()
        ]
        assert fallback == baseline

    def test_fallback_matches_scalar_loop(self, monkeypatch):
        monkeypatch.setattr(compat, "np", None)
        for strategy in self.fixed_strategies():
            batch = strategy.place_many(self.ADDRESSES)
            assert isinstance(batch, BatchPlacement)
            assert [tuple(row) for row in batch.tuples()] == scalar_rows(
                strategy, self.ADDRESSES
            )

    def test_fallback_counts(self, monkeypatch):
        monkeypatch.setattr(compat, "np", None)
        strategy = RedundantShare(
            bins_from_capacities([10, 20, 30, 40]), copies=2
        )
        batch = strategy.place_many(range(200))
        expected = collections.Counter(
            bin_id for row in batch.tuples() for bin_id in row
        )
        assert batch.counts() == dict(expected)


class TestBatchPlacementApi:
    def strategy(self):
        return RedundantShare(
            bins_from_capacities([120, 80, 200, 40, 160]), copies=3
        )

    def test_len_copies_and_iteration(self):
        batch = self.strategy().place_many(range(50))
        assert len(batch) == 50
        assert batch.copies == 3
        assert list(batch) == batch.tuples()

    def test_ids_at_position(self):
        strategy = self.strategy()
        batch = strategy.place_many(range(50))
        assert list(batch.ids_at(0)) == [
            strategy.place(address)[0] for address in range(50)
        ]
        assert list(batch.ids_at(2)) == [
            strategy.place(address)[2] for address in range(50)
        ]

    def test_empty_batch(self):
        batch = self.strategy().place_many([])
        assert len(batch) == 0
        assert batch.tuples() == []
        assert batch.counts() == {}
