"""The shared vectorized kernel library, pinned against the scalar pipeline.

Every kernel in :mod:`repro.placement.kernels` promises element-wise
equality with a scalar reference (the ``u64_from_base`` hash chain, the
``-w / ln(u)`` and ``ln(u) / w`` score expressions, the strict-``>``
races, :meth:`CumulativeTable.select`) and agreement between its NumPy
and pure-Python legs.  These tests pin both promises directly, plus the
edge cases every porting strategy leans on: empty batches, single-column
matrices, full-width (k == n) top-k races, and the guard's behaviour on
exact and sub-ulp ties.  The hash pipeline is bit-exact on both legs;
the *score* matrices are only pinned exactly on the pure leg — NumPy's
SIMD ``log`` may differ from ``math.log`` by 1 ulp, which is precisely
what :data:`~repro.placement.kernels.TIE_GUARD` exists to absorb.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro.hashing.alias import CumulativeTable
from repro.hashing.primitives import unit_from_base, unit_from_base_open
from repro.placement import kernels

addresses_lists = st.lists(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    min_size=0,
    max_size=40,
)
bases_lists = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=8
)
salts = st.integers(min_value=0, max_value=2**32)


def both_legs(call):
    """Run ``call()`` on the current leg and again with NumPy nulled."""
    reference = call()
    saved = compat.np
    compat.np = None
    try:
        pure = call()
    finally:
        compat.np = saved
    return reference, pure


def as_rows(matrix):
    """Normalise an (m × n) kernel result to nested Python lists."""
    if isinstance(matrix, list):
        return [list(row) for row in matrix]
    return [list(row) for row in matrix.tolist()]


def leg_matrix(rows):
    """Rows as the current leg's matrix type."""
    np = compat.get_numpy()
    if np is None:
        return [list(row) for row in rows]
    return np.asarray(rows, dtype=np.float64)


class TestHashPipeline:
    @given(addresses=addresses_lists, bases=bases_lists)
    @settings(max_examples=50, deadline=None)
    def test_open_draw_matrix_matches_scalar(self, addresses, bases):
        mixed = kernels.premix(addresses)
        matrix = kernels.open_draw_matrix(bases, mixed)
        assert as_rows(matrix) == [
            [unit_from_base_open(base, address) for base in bases]
            for address in addresses
        ]

    @given(addresses=addresses_lists, base=st.integers(0, 2**64 - 1))
    @settings(max_examples=50, deadline=None)
    def test_closed_draws_match_scalar(self, addresses, base):
        mixed = kernels.premix(addresses)
        draws = kernels.draws_from_premixed(base, mixed)
        assert list(draws) == [
            unit_from_base(base, address) for address in addresses
        ]

    @given(
        addresses=addresses_lists,
        bases=bases_lists,
        replica=salts,
        attempt=salts,
    )
    @settings(max_examples=50, deadline=None)
    def test_fold_chain_matches_multivalue_u64(
        self, addresses, bases, replica, attempt
    ):
        # state_matrix → fold_salt ×2 → open_draws_from_state is exactly
        # unit_from_base_open(base, address, replica, attempt) — the
        # CRUSH straw pipeline.
        mixed = kernels.premix(addresses)
        states = kernels.fold_salt(
            kernels.fold_salt(kernels.state_matrix(bases, mixed), replica),
            attempt,
        )
        draws = kernels.open_draws_from_state(states)
        assert as_rows(draws) == [
            [
                unit_from_base_open(base, address, replica, attempt)
                for base in bases
            ]
            for address in addresses
        ]

    @given(addresses=addresses_lists, bases=bases_lists)
    @settings(max_examples=25, deadline=None)
    def test_draw_legs_agree(self, addresses, bases):
        def run():
            mixed = kernels.premix(addresses)
            return as_rows(kernels.open_draw_matrix(bases, mixed))

        reference, pure = both_legs(run)
        assert reference == pure


class TestScoreMatrices:
    WEIGHTS = [3.0, 1.0, 0.25]
    UNIFORMS = [[0.5, 0.9, 0.1], [0.999, 0.001, 0.42]]

    def test_hrw_scores_match_scalar_expression(self):
        scores = kernels.hrw_score_matrix(
            self.WEIGHTS, leg_matrix(self.UNIFORMS)
        )
        for row, uniforms in zip(as_rows(scores), self.UNIFORMS):
            assert row == pytest.approx(
                [
                    -weight / math.log(uniform)
                    for weight, uniform in zip(self.WEIGHTS, uniforms)
                ],
                rel=1e-12,
            )

    def test_straw2_scores_match_scalar_expression(self):
        scores = kernels.straw2_score_matrix(
            self.WEIGHTS, leg_matrix(self.UNIFORMS)
        )
        for row, uniforms in zip(as_rows(scores), self.UNIFORMS):
            assert row == pytest.approx(
                [
                    math.log(uniform) / weight
                    for weight, uniform in zip(self.WEIGHTS, uniforms)
                ],
                rel=1e-12,
            )

    def test_pure_leg_scores_are_bit_exact(self):
        # The pure leg *is* the scalar expression — no ulp slack there.
        saved = compat.np
        compat.np = None
        try:
            hrw = kernels.hrw_score_matrix(self.WEIGHTS, self.UNIFORMS)
            straw = kernels.straw2_score_matrix(self.WEIGHTS, self.UNIFORMS)
        finally:
            compat.np = saved
        assert hrw == [
            [
                -weight / math.log(uniform)
                for weight, uniform in zip(self.WEIGHTS, uniforms)
            ]
            for uniforms in self.UNIFORMS
        ]
        assert straw == [
            [
                math.log(uniform) / weight
                for weight, uniform in zip(self.WEIGHTS, uniforms)
            ]
            for uniforms in self.UNIFORMS
        ]


class TestGuardedSelection:
    def test_argmax_first_index_and_consumption(self):
        scores = leg_matrix([[1.0, 5.0, 3.0], [9.0, 2.0, 8.0]])
        winners, unsafe = kernels.argmax_with_guard(scores)
        assert list(winners) == [1, 0]
        assert list(unsafe) == [False, False]
        # Winning entries were consumed: the next race yields runners-up.
        winners2, _ = kernels.argmax_with_guard(scores)
        assert list(winners2) == [2, 2]

    def test_exact_tie_is_unsafe(self):
        scores = leg_matrix([[2.0, 2.0, 1.0], [3.0, 1.0, 0.5]])
        winners, unsafe = kernels.argmax_with_guard(scores)
        assert list(winners) == [0, 0]  # first index on ties
        assert list(unsafe) == [True, False]

    def test_sub_guard_margin_is_unsafe(self):
        scores = leg_matrix([[2.0, 2.0 * (1.0 - 1e-12)]])
        _, unsafe = kernels.argmax_with_guard(scores)
        assert list(unsafe) == [True]
        scores = leg_matrix([[2.0, 2.0 * (1.0 - 1e-6)]])
        _, unsafe = kernels.argmax_with_guard(scores)
        assert list(unsafe) == [False]

    def test_negative_scores_use_absolute_margin(self):
        # straw2 scores are negative; the guard must still scale by |best|.
        scores = leg_matrix([[-2.0, -2.0 * (1.0 + 1e-12)]])
        winners, unsafe = kernels.argmax_with_guard(scores)
        assert list(winners) == [0]
        assert list(unsafe) == [True]

    def test_single_column_race_is_safe(self):
        # A single device can never tie with a runner-up.
        scores = leg_matrix([[0.5], [0.25]])
        winners, unsafe = kernels.argmax_with_guard(scores)
        assert list(winners) == [0, 0]
        assert list(unsafe) == [False, False]

    def test_empty_batch(self):
        np = compat.get_numpy()
        scores = [] if np is None else np.empty((0, 3), dtype=np.float64)
        winners, unsafe = kernels.argmax_with_guard(scores)
        assert list(winners) == []
        assert list(unsafe) == []

    def test_topk_full_width_orders_by_descending_score(self):
        # k == n: every column is drawn, in descending score order.
        scores = leg_matrix([[1.0, 3.0, 2.0]])
        winners, unsafe = kernels.topk_with_guard(scores, 3)
        assert [list(draw) for draw in winners] == [[1], [2], [0]]
        assert list(unsafe) == [False]

    def test_topk_legs_agree(self):
        rows = [[1.0, 3.0, 2.0, 0.5], [4.0, 4.0, 1.0, 2.0]]

        def run():
            winners, unsafe = kernels.topk_with_guard(leg_matrix(rows), 2)
            return [list(draw) for draw in winners], list(unsafe)

        reference, pure = both_legs(run)
        assert reference == pure


class TestCdfGather:
    @given(
        masses=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=9
        ),
        draws=st.lists(
            st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
            min_size=0,
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_table_select(self, masses, draws):
        table = CumulativeTable(masses)
        gathered = kernels.cdf_gather(table.boundaries(), draws)
        assert [int(value) for value in gathered] == [
            table.select(draw) for draw in draws
        ]

    def test_empty_batch(self):
        table = CumulativeTable([1.0, 2.0])
        assert list(kernels.cdf_gather(table.boundaries(), [])) == []


class TestBlocks:
    def test_cover_range_without_overlap(self):
        spans = list(kernels.blocks(20_001, block=8192))
        assert spans == [(0, 8192), (8192, 16384), (16384, 20001)]

    def test_empty_count_yields_nothing(self):
        assert list(kernels.blocks(0)) == []
