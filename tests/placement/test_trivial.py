"""Tests for the trivial replication baseline and Lemma 2.4 / Figure 1."""

import collections

import pytest

from repro.placement import (
    TrivialReplication,
    trivial_miss_probability,
    trivial_wasted_fraction,
)
from repro.types import bins_from_capacities


class TestMissProbability:
    def test_figure1_example(self):
        # [2, 1, 1], k=2: the big bin is missed with probability exactly 1/6.
        assert trivial_miss_probability([2, 1, 1], 2, 0) == pytest.approx(1 / 6)

    def test_small_bins_symmetric(self):
        first = trivial_miss_probability([2, 1, 1], 2, 1)
        second = trivial_miss_probability([2, 1, 1], 2, 2)
        assert first == pytest.approx(second)

    def test_k_equals_n_never_misses(self):
        assert trivial_miss_probability([2, 1, 1], 3, 0) == pytest.approx(0.0)

    def test_rejects_too_many_copies(self):
        with pytest.raises(ValueError):
            trivial_miss_probability([1, 1], 3, 0)


class TestWastedFraction:
    def test_figure1_waste_is_one_twelfth(self):
        assert trivial_wasted_fraction([2, 1, 1], 2) == pytest.approx(1 / 12)

    def test_homogeneous_wastes_nothing(self):
        assert trivial_wasted_fraction([5, 5, 5, 5], 2) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_waste_grows_with_skew(self):
        mild = trivial_wasted_fraction([3, 2, 2, 2], 2)
        strong = trivial_wasted_fraction([6, 2, 2, 2], 2)
        assert strong > mild


class TestTrivialStrategy:
    def test_redundancy_holds(self):
        strategy = TrivialReplication(bins_from_capacities([5, 4, 3, 2]), copies=3)
        for address in range(2000):
            placement = strategy.place(address)
            assert len(set(placement)) == 3

    def test_deterministic(self):
        strategy = TrivialReplication(bins_from_capacities([5, 4, 3]), copies=2)
        assert strategy.place(4) == strategy.place(4)

    def test_empirical_miss_matches_analytic(self):
        strategy = TrivialReplication(bins_from_capacities([2, 1, 1]), copies=2)
        balls = 30_000
        missed = sum(
            1 for address in range(balls) if "bin-0" not in strategy.place(address)
        )
        assert missed / balls == pytest.approx(1 / 6, abs=0.01)

    def test_expected_shares_match_empirical(self):
        strategy = TrivialReplication(bins_from_capacities([4, 2, 1, 1]), copies=2)
        shares = strategy.expected_shares()
        counts = collections.Counter()
        balls = 30_000
        for address in range(balls):
            for bin_id in strategy.place(address):
                counts[bin_id] += 1
        for bin_id, share in shares.items():
            assert counts[bin_id] / (2 * balls) == pytest.approx(share, abs=0.01)

    def test_big_bin_underloaded_vs_fair_target(self):
        """Lemma 2.4: the trivial strategy under-loads the biggest bin."""
        capacities = [4, 2, 1, 1]
        strategy = TrivialReplication(bins_from_capacities(capacities), copies=2)
        shares = strategy.expected_shares()
        fair = capacities[0] / sum(capacities)  # 0.5 == k*c/k with k=2
        assert shares["bin-0"] < fair

    def test_expected_shares_none_for_large_systems(self):
        strategy = TrivialReplication(bins_from_capacities([1] * 20), copies=2)
        assert strategy.expected_shares() is None
