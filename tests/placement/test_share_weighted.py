"""Tests for the (ids, weights) Share selector and its fast-variant role."""

import collections

import pytest

from repro.core import FastRedundantShare
from repro.placement import ShareWeightedPlacer, make_share
from repro.types import BinSpec, bins_from_capacities


class TestShareWeightedPlacer:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShareWeightedPlacer([], [], "ns")
        with pytest.raises(ValueError):
            ShareWeightedPlacer(["a"], [1.0, 2.0], "ns")
        with pytest.raises(ValueError):
            ShareWeightedPlacer(["a", "b"], [-1.0, 2.0], "ns")
        with pytest.raises(ValueError):
            ShareWeightedPlacer(["a", "b"], [0.0, 0.0], "ns")

    def test_deterministic(self):
        placer = make_share(["a", "b", "c"], [3.0, 2.0, 1.0], "ns")
        assert placer.place(5) == placer.place(5)

    def test_zero_weight_outcomes_never_win(self):
        placer = ShareWeightedPlacer(["a", "b", "c"], [1.0, 0.0, 1.0], "ns")
        for address in range(2000):
            assert placer.place(address) != "b"

    def test_roughly_weight_proportional(self):
        placer = ShareWeightedPlacer(
            ["a", "b", "c"], [0.1, 0.3, 0.6], "ns", stretch=24.0
        )
        counts = collections.Counter(placer.place(a) for a in range(30_000))
        assert counts["c"] / 30_000 == pytest.approx(0.6, abs=0.08)
        assert counts["b"] / 30_000 == pytest.approx(0.3, abs=0.06)

    def test_fairness_error_shrinks_with_stretch(self):
        """Share's (1+eps) guarantee: eps decays as the stretch grows."""
        weights = [0.5, 0.3, 0.2]

        def error(stretch):
            placer = ShareWeightedPlacer(
                ["a", "b", "c"], weights, "ns-e", stretch=stretch
            )
            counts = collections.Counter(
                placer.place(address) for address in range(20_000)
            )
            return max(
                abs(counts[owner] / 20_000 - weight)
                for owner, weight in zip(["a", "b", "c"], weights)
            )

        assert error(32.0) < error(3.0) + 0.01

    def test_dominant_weight_covers_circle(self):
        placer = ShareWeightedPlacer(["big", "tiny"], [100.0, 1.0], "ns")
        counts = collections.Counter(placer.place(a) for a in range(5000))
        assert counts["big"] > 4000

    def test_adaptivity_small_perturbation(self):
        before = ShareWeightedPlacer(["a", "b", "c"], [1.0, 1.0, 1.0], "ns")
        after = ShareWeightedPlacer(["a", "b", "c"], [1.0, 1.0, 1.2], "ns")
        moved = sum(
            1 for address in range(4000) if before.place(address) != after.place(address)
        )
        assert moved / 4000 < 0.35  # a small weight change moves little


class TestShareStateSelector:
    def test_fairness(self):
        capacities = [900, 700, 500, 300]
        strategy = FastRedundantShare(
            bins_from_capacities(capacities), copies=2, state_selector="share"
        )
        counts = collections.Counter()
        balls = 30_000
        for address in range(balls):
            counts.update(strategy.place(address))
        for bin_id, share in strategy.expected_shares().items():
            # Share is (1+eps)-fair, not exact; allow the eps of the
            # stretch used by the state selector.
            assert counts[bin_id] / (2 * balls) == pytest.approx(
                share, abs=0.05
            )

    def test_redundancy(self):
        strategy = FastRedundantShare(
            bins_from_capacities([9, 7, 5, 3, 1]),
            copies=3,
            state_selector="share",
        )
        for address in range(1000):
            assert len(set(strategy.place(address))) == 3

    def test_adaptivity_between_cdf_and_rendezvous(self):
        def movement(selector):
            before = FastRedundantShare(
                bins_from_capacities([1000] * 8),
                copies=2,
                state_selector=selector,
            )
            grown = bins_from_capacities([1000] * 8) + [
                BinSpec("bin-new", 1000)
            ]
            after = FastRedundantShare(
                grown, copies=2, state_selector=selector
            )
            balls = 3000
            return (
                sum(
                    1
                    for address in range(balls)
                    if before.place(address) != after.place(address)
                )
                / balls
            )

        share_movement = movement("share")
        cdf_movement = movement("cdf")
        # Share's interval structure adapts better than the cascading CDF.
        assert share_movement < cdf_movement
