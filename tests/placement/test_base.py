"""Tests for the placement-layer interfaces."""

import pytest

from repro.exceptions import ConfigurationError
from repro.placement.base import (
    ReplicationStrategy,
    SingleCopyPlacer,
    check_placement,
)
from repro.types import bins_from_capacities


class RoundRobin(ReplicationStrategy):
    """Minimal concrete strategy for interface testing."""

    name = "round-robin"

    def place(self, address):
        count = len(self._bins)
        return tuple(
            self._bins[(address + offset) % count].bin_id
            for offset in range(self._copies)
        )


class FirstBin(SingleCopyPlacer):
    name = "first"

    def place(self, address):
        return self._bins[0].bin_id


class TestReplicationStrategyBase:
    def test_copies_bounds(self):
        with pytest.raises(ConfigurationError):
            RoundRobin(bins_from_capacities([1, 1]), copies=0)
        with pytest.raises(ConfigurationError):
            RoundRobin(bins_from_capacities([1, 1]), copies=3)

    def test_duplicate_bins_rejected(self):
        bins = bins_from_capacities([1, 1])
        with pytest.raises(ValueError):
            RoundRobin(bins + [bins[0]], copies=2)

    def test_place_copy_default_delegates(self):
        strategy = RoundRobin(bins_from_capacities([1, 1, 1]), copies=2)
        assert strategy.place_copy(4, 1) == strategy.place(4)[1]

    def test_place_copy_bad_position(self):
        strategy = RoundRobin(bins_from_capacities([1, 1]), copies=2)
        with pytest.raises(IndexError):
            strategy.place_copy(0, 5)

    def test_bins_returns_copy(self):
        strategy = RoundRobin(bins_from_capacities([1, 1]), copies=2)
        strategy.bins.clear()
        assert len(strategy.bins) == 2

    def test_default_expected_shares_is_none(self):
        strategy = RoundRobin(bins_from_capacities([1, 1]), copies=2)
        assert strategy.expected_shares() is None

    def test_describe(self):
        strategy = RoundRobin(bins_from_capacities([1, 1]), copies=2)
        assert "k=2" in strategy.describe()

    def test_namespace_default_is_name(self):
        strategy = RoundRobin(bins_from_capacities([1, 1]), copies=2)
        assert strategy.namespace == "round-robin"


class TestSingleCopyPlacerBase:
    def test_default_shares_proportional(self):
        placer = FirstBin(bins_from_capacities([3, 1]))
        assert placer.expected_shares() == {"bin-0": 0.75, "bin-1": 0.25}

    def test_namespace_override(self):
        placer = FirstBin(bins_from_capacities([1]), namespace="custom")
        assert placer.namespace == "custom"


class TestCheckPlacement:
    def test_valid(self):
        check_placement(("a", "b"), 2)

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            check_placement(("a",), 2)

    def test_duplicate(self):
        with pytest.raises(ValueError):
            check_placement(("a", "a"), 2)
