"""Tests for the RUSH_P-style baseline."""

import collections

import pytest

from repro.exceptions import ConfigurationError
from repro.placement import RushStrategy, SubCluster, rush_from_capacities


class TestSubCluster:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SubCluster("c", 0, 1.0)
        with pytest.raises(ConfigurationError):
            SubCluster("c", 2, 0.0)

    def test_weight_and_ids(self):
        cluster = SubCluster("c", 3, 2.0)
        assert cluster.weight == 6.0
        assert cluster.disk_id(1) == "c/disk-1"


class TestChunkRestriction:
    def test_rejects_chunk_smaller_than_k(self):
        """The RUSH restriction the paper criticises: chunks must hold a
        complete redundancy group."""
        clusters = [SubCluster("base", 4, 1.0), SubCluster("tiny", 1, 1.0)]
        with pytest.raises(ConfigurationError):
            RushStrategy(clusters, copies=2)

    def test_rejects_small_base(self):
        with pytest.raises(ConfigurationError):
            RushStrategy([SubCluster("base", 1, 1.0)], copies=2)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            RushStrategy([], copies=2)


class TestPlacement:
    def make(self, copies=2):
        clusters = [
            SubCluster("gen0", 4, 1.0),
            SubCluster("gen1", 4, 2.0),
        ]
        return RushStrategy(clusters, copies=copies)

    def test_redundancy(self):
        strategy = self.make(copies=3)
        for address in range(2000):
            placement = strategy.place(address)
            assert len(placement) == 3
            assert len(set(placement)) == 3

    def test_deterministic(self):
        strategy = self.make()
        assert strategy.place(77) == strategy.place(77)

    def test_rough_weight_proportionality(self):
        strategy = self.make()
        counts = collections.Counter()
        balls = 20_000
        for address in range(balls):
            for disk in strategy.place(address):
                counts[disk] += 1
        gen1 = sum(count for disk, count in counts.items() if disk.startswith("gen1"))
        share = gen1 / (2 * balls)
        # gen1 carries 2/3 of the weight; RUSH approximates that.
        assert share == pytest.approx(2 / 3, abs=0.08)

    def test_adaptivity_adding_chunk(self):
        """Adding a half-weight chunk moves ~one copy per ball (the optimum
        — the chunk deserves k/2 copies of every ball) and keeps the
        surviving copy on its old disk."""
        base = [SubCluster("gen0", 6, 1.0)]
        before = RushStrategy(base, copies=2)
        after = RushStrategy(base + [SubCluster("gen1", 6, 1.0)], copies=2)
        balls = 4000
        moved_copies = 0
        orphaned = 0
        for address in range(balls):
            old = set(before.place(address))
            new = set(after.place(address))
            moved_copies += len(old - new)
            if not old & new:
                orphaned += 1
        assert moved_copies / balls == pytest.approx(1.0, abs=0.2)
        assert orphaned / balls < 0.1


class TestFromCapacities:
    def test_groups_runs(self):
        strategy = rush_from_capacities([4, 4, 4, 8, 8, 8], copies=2)
        assert len(strategy.clusters) == 2
        assert strategy.clusters[0].disks == 3

    def test_fixed_chunks(self):
        strategy = rush_from_capacities([4] * 6, copies=2, chunk=3)
        assert len(strategy.clusters) == 2
        assert all(cluster.disks == 3 for cluster in strategy.clusters)


class TestRushTree:
    def test_redundancy_and_determinism(self):
        from repro.placement import rush_tree

        clusters = [
            SubCluster("gen0", 4, 1.0),
            SubCluster("gen1", 4, 2.0),
            SubCluster("gen2", 4, 2.0),
        ]
        strategy = rush_tree(clusters, copies=3)
        assert strategy.place(5) == strategy.place(5)
        for address in range(1000):
            placement = strategy.place(address)
            assert len(set(placement)) == 3

    def test_chunk_restriction_enforced(self):
        from repro.placement import rush_tree

        with pytest.raises(ConfigurationError):
            rush_tree([SubCluster("gen0", 4, 1.0), SubCluster("t", 1, 1.0)], 2)
        with pytest.raises(ConfigurationError):
            rush_tree([], copies=2)

    def test_weight_proportionality(self):
        import collections

        from repro.placement import rush_tree

        clusters = [SubCluster("a", 4, 1.0), SubCluster("b", 4, 3.0)]
        strategy = rush_tree(clusters, copies=2)
        counts = collections.Counter()
        balls = 15_000
        for address in range(balls):
            for disk in strategy.place(address):
                counts[disk] += 1
        heavy = sum(v for k, v in counts.items() if k.startswith("b/"))
        assert heavy / (2 * balls) == pytest.approx(0.75, abs=0.06)
