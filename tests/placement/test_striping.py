"""Tests for RAID pattern striping (plain and weighted)."""

import collections

import pytest

from repro.exceptions import ConfigurationError
from repro.placement import StripingStrategy, WeightedStripingStrategy
from repro.types import bins_from_capacities


class TestStriping:
    def test_redundancy(self):
        strategy = StripingStrategy(bins_from_capacities([5] * 5), copies=3)
        for address in range(500):
            assert len(set(strategy.place(address))) == 3

    def test_homogeneous_perfectly_balanced(self):
        strategy = StripingStrategy(bins_from_capacities([5] * 4), copies=2)
        counts = collections.Counter()
        balls = 4000  # multiple of the pattern period
        for address in range(balls):
            for bin_id in strategy.place(address):
                counts[bin_id] += 1
        shares = {bin_id: count / (2 * balls) for bin_id, count in counts.items()}
        for share in shares.values():
            assert share == pytest.approx(0.25, abs=1e-9)

    def test_ignores_capacities(self):
        strategy = StripingStrategy(bins_from_capacities([100, 1, 1, 1]), copies=2)
        shares = strategy.expected_shares()
        assert all(share == pytest.approx(0.25) for share in shares.values())

    def test_full_reshuffle_on_growth(self):
        """The paper's adaptivity criticism: adding a disk moves ~everything."""
        before = StripingStrategy(bins_from_capacities([5] * 6), copies=2)
        after = StripingStrategy(bins_from_capacities([5] * 7), copies=2)
        balls = 2000
        moved = sum(
            1 for address in range(balls) if before.place(address) != after.place(address)
        )
        assert moved / balls > 0.8


class TestWeightedStriping:
    def test_redundancy(self):
        strategy = WeightedStripingStrategy(
            bins_from_capacities([8, 4, 2, 2]), copies=2
        )
        for address in range(1000):
            placement = strategy.place(address)
            assert len(set(placement)) == 2

    def test_shares_track_capacity(self):
        strategy = WeightedStripingStrategy(
            bins_from_capacities([8, 4, 2, 2]), copies=2, resolution=128
        )
        shares = strategy.expected_shares()
        assert shares["bin-0"] == pytest.approx(0.5, abs=0.02)
        assert shares["bin-1"] == pytest.approx(0.25, abs=0.02)

    def test_empirical_matches_pattern_shares(self):
        strategy = WeightedStripingStrategy(
            bins_from_capacities([6, 3, 3]), copies=2, resolution=64
        )
        counts = collections.Counter()
        balls = 20_000
        for address in range(balls):
            for bin_id in strategy.place(address):
                counts[bin_id] += 1
        # With k=2 the big disk deserves min(1, 2*0.5)/2 = 0.5 of copies.
        assert counts["bin-0"] / (2 * balls) == pytest.approx(0.5, abs=0.05)

    def test_resolution_validated(self):
        with pytest.raises(ConfigurationError):
            WeightedStripingStrategy(
                bins_from_capacities([5, 5]), copies=2, resolution=0
            )

    def test_pattern_length(self):
        strategy = WeightedStripingStrategy(
            bins_from_capacities([5, 5]), copies=2, resolution=16
        )
        assert strategy.pattern_length == 32
