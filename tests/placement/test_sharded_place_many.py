"""Sharded parallel ``place_many``: determinism, env knob, instrumentation.

Placement is a pure function of (configuration, address), so splitting an
address vector across worker processes and stitching the shards back in
offset order must be indistinguishable from the serial engine.  These
tests pin that invariant for the paper's strategies, the
``REPRO_PLACE_WORKERS`` environment knob and its small-batch floor, and
the per-shard observability events.
"""

import pytest

import repro._compat as compat
from repro import obs
from repro.core import FastRedundantShare, RedundantShare
from repro.placement import TrivialReplication
from repro.placement.base import SHARD_MIN_ADDRESSES, _shard_bounds
from repro.types import bins_from_capacities

BINS = bins_from_capacities([120, 80, 200, 40, 160, 90, 310, 55])
ADDRESSES = list(range(-50, 2_000)) + [2**63, 2**64 - 1]


def factories():
    return [
        lambda: RedundantShare(BINS, copies=3),
        lambda: FastRedundantShare(BINS, copies=3),
        lambda: TrivialReplication(BINS, copies=3),
    ]


class TestShardedEqualsSerial:
    def test_workers_match_serial(self):
        for factory in factories():
            strategy = factory()
            serial = strategy.place_many(ADDRESSES)
            sharded = strategy.place_many(ADDRESSES, workers=3)
            assert sharded.tuples() == serial.tuples()
            assert sharded.rank_ids == serial.rank_ids

    def test_more_workers_than_addresses(self):
        strategy = RedundantShare(BINS, copies=2)
        few = ADDRESSES[:5]
        assert (
            strategy.place_many(few, workers=16).tuples()
            == strategy.place_many(few).tuples()
        )

    def test_workers_without_numpy(self, monkeypatch):
        # The shard merge has a list-based leg; forcing it must still
        # reproduce the serial fallback result.
        monkeypatch.setattr(compat, "np", None)
        strategy = RedundantShare(BINS, copies=2)
        addresses = ADDRESSES[:300]
        serial = strategy.place_many(addresses)
        sharded = strategy.place_many(addresses, workers=2)
        assert sharded.tuples() == serial.tuples()


class TestWorkerResolution:
    def test_env_knob_requires_large_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLACE_WORKERS", "4")
        strategy = RedundantShare(BINS, copies=2)
        small = list(range(SHARD_MIN_ADDRESSES - 1))
        assert strategy._effective_workers(None, len(small)) == 0
        assert strategy._effective_workers(None, SHARD_MIN_ADDRESSES) == 4

    def test_env_knob_ignored_when_unset_or_invalid(self, monkeypatch):
        strategy = RedundantShare(BINS, copies=2)
        monkeypatch.delenv("REPRO_PLACE_WORKERS", raising=False)
        assert strategy._effective_workers(None, 10**6) == 0
        monkeypatch.setenv("REPRO_PLACE_WORKERS", "not-a-number")
        assert strategy._effective_workers(None, 10**6) == 0
        monkeypatch.setenv("REPRO_PLACE_WORKERS", "-3")
        assert strategy._effective_workers(None, 10**6) == 0

    def test_explicit_workers_bypass_floor_and_clamp(self):
        strategy = RedundantShare(BINS, copies=2)
        assert strategy._effective_workers(2, 10) == 2
        assert strategy._effective_workers(8, 3) == 3  # never > addresses
        assert strategy._effective_workers(1, 10**6) == 0
        assert strategy._effective_workers(0, 10**6) == 0

    def test_env_knob_end_to_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLACE_WORKERS", "2")
        strategy = FastRedundantShare(BINS, copies=3)
        population = list(range(SHARD_MIN_ADDRESSES + 100))
        via_env = strategy.place_many(population)
        serial = strategy.place_many(population, workers=0)
        assert via_env.tuples() == serial.tuples()


class TestShardBounds:
    def test_bounds_cover_range_contiguously(self):
        for count, workers in [(10, 3), (7, 7), (100, 4), (5, 2)]:
            bounds = _shard_bounds(count, workers)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == count
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            sizes = [stop - start for start, stop in bounds]
            assert max(sizes) - min(sizes) <= 1


class TestShardObservability:
    def test_per_shard_events_and_metrics(self):
        strategy = RedundantShare(BINS, copies=3)
        workers = 2
        with obs.capture() as trace:
            strategy.place_many(ADDRESSES, workers=workers)
            snapshot = obs.metrics().snapshot()
        shard_events = [
            event for event in trace.events if event.kind == "placement.shard"
        ]
        assert len(shard_events) == workers
        assert [e.fields["shard"] for e in shard_events] == list(
            range(workers)
        )
        assert sum(e.fields["addresses"] for e in shard_events) == len(
            ADDRESSES
        )
        for event in shard_events:
            assert event.fields["strategy"] == strategy.name
            assert event.fields["seconds"] >= 0
        batch_events = [
            event for event in trace.events if event.kind == "placement.batch"
        ]
        assert len(batch_events) == 1
        assert batch_events[0].fields["addresses"] == len(ADDRESSES)
        assert snapshot["counters"]["placement.shards"] == workers

    def test_serial_path_emits_no_shard_events(self):
        strategy = RedundantShare(BINS, copies=3)
        with obs.capture() as trace:
            strategy.place_many(ADDRESSES)
        assert not [
            event for event in trace.events if event.kind == "placement.shard"
        ]
