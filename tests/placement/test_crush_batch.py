"""CrushStrategy batch engine: NumPy vs scalar vs pure-Python.

The straw2-descent engine batches the per-replica straw races and
re-draws only the collision tail per retry attempt; it must reproduce
the scalar ``choose firstn`` walk exactly — including the
:class:`PlacementError` when an address exhausts its retries, which
heavily skewed small pools genuinely hit.  Hierarchical maps and
non-straw2 roots stay on the generic loop but must agree with
:meth:`place` all the same.  Also covers the epoch-keyed straw bundle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro._compat import HAVE_NUMPY
from repro.exceptions import PlacementError
from repro.placement import precompute
from repro.placement.crush import CrushStrategy, two_level_map
from repro.types import bins_from_capacities

capacities_vectors = st.lists(
    st.integers(min_value=1, max_value=2_000), min_size=4, max_size=12
)
replication_degrees = st.integers(min_value=2, max_value=4)
namespaces = st.sampled_from(["", "ns-a", "tenant/7"])
address_lists = st.lists(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    min_size=0,
    max_size=64,
)


def scalar_rows(strategy, addresses):
    return [strategy.place(address) for address in addresses]


def assert_batch_matches_scalar(strategy, addresses):
    """Batch equals the scalar loop — results and exhaustion errors."""
    try:
        expected = scalar_rows(strategy, addresses)
    except PlacementError:
        with pytest.raises(PlacementError):
            strategy.place_many(addresses)
        return
    batch = strategy.place_many(addresses)
    assert [tuple(row) for row in batch.tuples()] == expected


class TestBatchEquivalence:
    @given(
        capacities=capacities_vectors,
        copies=replication_degrees,
        namespace=namespaces,
        addresses=address_lists,
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_scalar(
        self, capacities, copies, namespace, addresses
    ):
        strategy = CrushStrategy(
            bins_from_capacities(capacities), copies=copies,
            namespace=namespace,
        )
        assert_batch_matches_scalar(strategy, addresses)

    @given(
        capacities=capacities_vectors,
        copies=replication_degrees,
        addresses=address_lists,
    )
    @settings(max_examples=25, deadline=None)
    def test_numpy_leg_matches_pure_python_leg(
        self, capacities, copies, addresses
    ):
        bins = bins_from_capacities(capacities)

        def run_leg():
            precompute.clear_shared_cache()
            strategy = CrushStrategy(bins, copies=copies)
            try:
                rows = strategy.place_many(addresses).tuples()
            except PlacementError:
                return "exhausted"
            return [tuple(row) for row in rows]

        numpy_rows = run_leg()
        saved = compat.np
        compat.np = None
        try:
            pure_rows = run_leg()
        finally:
            compat.np = saved
        assert numpy_rows == pure_rows

    def test_collision_tail_with_copies_equal_device_count(self):
        # k == n forces retries on nearly every address; a skewed pool
        # also makes genuine exhaustion reachable, which must surface as
        # the scalar loop's PlacementError for exactly those addresses.
        strategy = CrushStrategy(bins_from_capacities([9, 7, 5, 3]), copies=4)
        placeable = []
        for address in range(2_000):
            try:
                strategy.place(address)
                placeable.append(address)
            except PlacementError:
                pass
        batch = strategy.place_many(placeable)
        assert [tuple(row) for row in batch.tuples()] == scalar_rows(
            strategy, placeable
        )

    def test_exhaustion_raises_like_scalar(self):
        strategy = CrushStrategy(
            bins_from_capacities([10_000, 1, 1, 1]), copies=4
        )
        exhausted = None
        for address in range(5_000):
            try:
                strategy.place(address)
            except PlacementError:
                exhausted = address
                break
        assert exhausted is not None, "expected an exhausting address"
        with pytest.raises(PlacementError, match=f"ball {exhausted} "):
            strategy.place_many([exhausted])

    def test_single_device_cluster(self):
        strategy = CrushStrategy(bins_from_capacities([7]), copies=1)
        addresses = [0, 1, -3, 2**63]
        assert [tuple(row) for row in strategy.place_many(addresses)] == (
            scalar_rows(strategy, addresses)
        )

    def test_empty_batch(self):
        strategy = CrushStrategy(bins_from_capacities([5, 3, 2]), copies=2)
        assert list(strategy.place_many([])) == []

    def test_hierarchical_map_falls_back_to_generic_loop(self):
        bins = bins_from_capacities([90, 70, 50, 30, 20, 10])
        root, flat = two_level_map({"r1": bins[:3], "r2": bins[3:]})
        strategy = CrushStrategy(flat, copies=2, root=root)
        assert not strategy._flat_straw2
        addresses = list(range(300))
        assert [tuple(row) for row in strategy.place_many(addresses)] == (
            scalar_rows(strategy, addresses)
        )

    def test_non_straw2_root_falls_back_to_generic_loop(self):
        for bucket_type in ("list", "tree"):
            strategy = CrushStrategy(
                bins_from_capacities([9, 7, 5, 3]), copies=2,
                bucket_type=bucket_type,
            )
            assert not strategy._flat_straw2
            addresses = list(range(200))
            assert [
                tuple(row) for row in strategy.place_many(addresses)
            ] == scalar_rows(strategy, addresses)


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector engine needs NumPy")
def test_vector_engine_is_used_not_generic_loop(monkeypatch):
    strategy = CrushStrategy(
        bins_from_capacities([90, 70, 50, 30, 20]), copies=3
    )
    calls = []
    original = CrushStrategy.place

    def counting_place(self, address):
        calls.append(address)
        return original(self, address)

    monkeypatch.setattr(CrushStrategy, "place", counting_place)
    count = 5_000
    strategy.place_many(range(count))
    assert len(calls) < count, (
        "place_many consulted the scalar loop for every address — the "
        "vectorized engine is not running"
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="bundle cache needs NumPy")
class TestStrawBundle:
    BINS = bins_from_capacities([120, 80, 200, 40, 160, 90])

    def build(self, **overrides):
        options = dict(copies=3)
        options.update(overrides)
        return CrushStrategy(self.BINS, **options)

    def test_lazy_until_first_batch(self):
        strategy = self.build()
        assert strategy._vector is None
        strategy.place_many(range(32))
        assert strategy._vector is not None

    def test_same_epoch_instances_share_state(self):
        precompute.clear_shared_cache()
        first = self.build()
        first.place_many(range(64))
        before = precompute.shared_cache().info()
        second = self.build()
        second.place_many(range(64))
        after = precompute.shared_cache().info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        assert second._vector is first._vector

    def test_fingerprint_separates_configurations(self):
        precompute.clear_shared_cache()
        base = self.build()
        base.place_many(range(16))
        before = precompute.shared_cache().info()
        for other in (
            self.build(copies=2),
            self.build(namespace="other"),
            CrushStrategy(
                bins_from_capacities([120, 80, 200, 40, 160, 91]), copies=3
            ),
        ):
            other.place_many(range(16))
            assert other._vector is not base._vector
        after = precompute.shared_cache().info()
        assert after["misses"] == before["misses"] + 3

    def test_bumped_epoch_starts_cold(self):
        precompute.clear_shared_cache()
        warm = self.build()
        warm.place_many(range(64))
        precompute.bump_epoch()
        cold = self.build()
        assert cold._epoch > warm._epoch
        cold.place_many(range(64))
        assert cold._vector is not warm._vector
        assert cold.place_many(range(64)).tuples() == warm.place_many(
            range(64)
        ).tuples()
