"""WeightedStripingStrategy batch engine: NumPy vs scalar vs pure-Python.

The stripe-table engine reduces every address to its start slot
``(a · k) mod L`` and gathers a precomputed start → ranks table, so the
equivalence here is *exact integer arithmetic* — no tie guard involved.
The delicate part is the modular reduction: it must match Python's
big-int semantics for negative addresses and for magnitudes beyond
int64, which the hypothesis ranges below force.  Also covers the
epoch-keyed table bundle and the degenerate-pattern error path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro._compat import HAVE_NUMPY
from repro.exceptions import ConfigurationError
from repro.placement import precompute
from repro.placement.striping import WeightedStripingStrategy
from repro.types import bins_from_capacities

capacities_vectors = st.lists(
    st.integers(min_value=1, max_value=2_000), min_size=4, max_size=12
)
replication_degrees = st.integers(min_value=2, max_value=4)
resolutions = st.integers(min_value=1, max_value=16)
address_lists = st.lists(
    st.integers(min_value=-(2**127), max_value=2**127),
    min_size=0,
    max_size=64,
)


def scalar_rows(strategy, addresses):
    return [strategy.place(address) for address in addresses]


class TestBatchEquivalence:
    @given(
        capacities=capacities_vectors,
        copies=replication_degrees,
        resolution=resolutions,
        addresses=address_lists,
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_scalar(
        self, capacities, copies, resolution, addresses
    ):
        strategy = WeightedStripingStrategy(
            bins_from_capacities(capacities), copies=copies,
            resolution=resolution,
        )
        # A coarse pattern may lack k distinct disks; then the scalar
        # loop raises for every address and the batch must do the same.
        try:
            expected = scalar_rows(strategy, addresses)
        except ConfigurationError:
            with pytest.raises(ConfigurationError):
                strategy.place_many(addresses)
            return
        batch = strategy.place_many(addresses)
        assert [tuple(row) for row in batch.tuples()] == expected

    @given(
        capacities=capacities_vectors,
        copies=replication_degrees,
        addresses=address_lists,
    )
    @settings(max_examples=25, deadline=None)
    def test_numpy_leg_matches_pure_python_leg(
        self, capacities, copies, addresses
    ):
        bins = bins_from_capacities(capacities)

        def run_leg():
            precompute.clear_shared_cache()
            strategy = WeightedStripingStrategy(bins, copies=copies)
            # Extreme skew can starve small disks out of the pattern so
            # placement legitimately raises (see the degenerate-pattern
            # tests below); the legs must agree on that outcome too.
            try:
                return [
                    tuple(row)
                    for row in strategy.place_many(addresses).tuples()
                ]
            except ConfigurationError:
                return "pattern lacks k distinct disks"

        numpy_rows = run_leg()
        saved = compat.np
        compat.np = None
        try:
            pure_rows = run_leg()
        finally:
            compat.np = saved
        assert numpy_rows == pure_rows

    @pytest.mark.skipif(not HAVE_NUMPY, reason="array inputs need NumPy")
    def test_numpy_array_addresses_match_scalar(self):
        np = compat.get_numpy()
        strategy = WeightedStripingStrategy(
            bins_from_capacities([9, 7, 5, 3]), copies=3
        )
        unsigned = np.array([0, 1, 2**64 - 1, 2**63], dtype=np.uint64)
        assert [tuple(row) for row in strategy.place_many(unsigned)] == [
            strategy.place(int(value)) for value in unsigned
        ]
        signed = np.array([-1, -(2**63), 5, 2**62], dtype=np.int64)
        assert [tuple(row) for row in strategy.place_many(signed)] == [
            strategy.place(int(value)) for value in signed
        ]

    def test_single_device_cluster(self):
        strategy = WeightedStripingStrategy(bins_from_capacities([7]), copies=1)
        addresses = [0, 1, -3, 2**63]
        assert [tuple(row) for row in strategy.place_many(addresses)] == (
            scalar_rows(strategy, addresses)
        )

    def test_copies_equal_device_count(self):
        strategy = WeightedStripingStrategy(
            bins_from_capacities([5, 4, 3, 2]), copies=4
        )
        addresses = list(range(-20, 300))
        assert [tuple(row) for row in strategy.place_many(addresses)] == (
            scalar_rows(strategy, addresses)
        )

    def test_empty_batch(self):
        strategy = WeightedStripingStrategy(
            bins_from_capacities([5, 3, 2]), copies=2
        )
        assert list(strategy.place_many([])) == []

    def test_empty_batch_skips_degenerate_pattern_error(self):
        # Extreme skew at resolution 1: the tiny disks never win a slot,
        # so any *placement* raises — but an empty batch places nothing,
        # exactly like the scalar loop.
        strategy = WeightedStripingStrategy(
            bins_from_capacities([10_000, 1, 1, 1]), copies=3, resolution=1
        )
        assert list(strategy.place_many([])) == []
        with pytest.raises(ConfigurationError):
            strategy.place(0)
        with pytest.raises(ConfigurationError):
            strategy.place_many([0])


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector engine needs NumPy")
def test_vector_engine_is_used_not_generic_loop(monkeypatch):
    strategy = WeightedStripingStrategy(
        bins_from_capacities([90, 70, 50, 30, 20]), copies=3
    )
    calls = []
    original = WeightedStripingStrategy.place

    def counting_place(self, address):
        calls.append(address)
        return original(self, address)

    monkeypatch.setattr(WeightedStripingStrategy, "place", counting_place)
    count = 5_000
    strategy.place_many(range(count))
    assert len(calls) < count, (
        "place_many consulted the scalar loop for every address — the "
        "vectorized engine is not running"
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="bundle cache needs NumPy")
class TestStartTableBundle:
    BINS = bins_from_capacities([120, 80, 200, 40, 160, 90])

    def build(self, **overrides):
        options = dict(copies=3)
        options.update(overrides)
        return WeightedStripingStrategy(self.BINS, **options)

    def test_lazy_until_first_batch(self):
        strategy = self.build()
        assert strategy._table is None
        strategy.place_many(range(32))
        assert strategy._table is not None

    def test_same_epoch_instances_share_state(self):
        precompute.clear_shared_cache()
        first = self.build()
        first.place_many(range(64))
        before = precompute.shared_cache().info()
        second = self.build()
        second.place_many(range(64))
        after = precompute.shared_cache().info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        assert second._table is first._table

    def test_fingerprint_separates_configurations(self):
        precompute.clear_shared_cache()
        base = self.build()
        base.place_many(range(16))
        before = precompute.shared_cache().info()
        for other in (
            self.build(copies=2),
            self.build(resolution=32),
            WeightedStripingStrategy(
                bins_from_capacities([120, 80, 200, 40, 160, 91]), copies=3
            ),
        ):
            other.place_many(range(16))
            assert other._table is not base._table
        after = precompute.shared_cache().info()
        assert after["misses"] == before["misses"] + 3

    def test_bumped_epoch_starts_cold(self):
        precompute.clear_shared_cache()
        warm = self.build()
        warm.place_many(range(64))
        precompute.bump_epoch()
        cold = self.build()
        assert cold._epoch > warm._epoch
        cold.place_many(range(64))
        assert cold._table is not warm._table
        assert cold.place_many(range(64)).tuples() == warm.place_many(
            range(64)
        ).tuples()
