"""Regression pin of the trade-off bench's output schema and coverage.

``BENCH_tradeoff.json`` / ``BENCH_history.jsonl`` records are consumed
downstream, so the key sets are pinned here as literals — changing the
bench payload shape must break this test first.  Also pins the sweep
contract: the bench covers *every* registered strategy and gates the two
new contenders on their headline claims.
"""

import importlib
import pathlib
import sys

import pytest

from repro.placement import registered_strategies, strategy_names

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def bench():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        return importlib.import_module("bench_table_strategy_tradeoff")
    finally:
        sys.path.remove(str(BENCH_DIR))


def test_payload_schema_is_pinned(bench):
    assert bench.PAYLOAD_KEYS == (
        "benchmark",
        "copies",
        "fleet",
        "gates",
        "numpy",
        "population",
        "strategies",
    )
    assert bench.ROW_KEYS == (
        "batch_per_sec",
        "chi_square",
        "kernel",
        "max_share_deviation",
        "moved_fraction",
        "moved_set",
        "movement_class",
        "supports_scale_out",
        "vectorized",
    )
    assert bench.GATE_KEYS == (
        "rpdp_peak_load",
        "sequential_checking_zero_move",
    )


def test_gate_fleets_are_the_documented_ones(bench):
    # The RPDP gate anti-correlates capacity and serving power.
    assert bench.SKEWED_CAPACITIES == (4000, 3000, 2000, 1000)
    assert bench.SKEWED_RATES == (1.0, 2.0, 4.0, 8.0)


def test_reduced_rows_match_schema_for_every_strategy(bench, monkeypatch):
    monkeypatch.setattr(bench, "ADDRESSES", 600)
    from repro.simulation import heterogeneous_bins

    before = heterogeneous_bins(bench.FLEET_SIZE)
    after = heterogeneous_bins(bench.FLEET_SIZE + 1)
    rows = {
        entry.name: bench.measure(entry, before, after)
        for entry in registered_strategies()
    }
    assert set(rows) == set(strategy_names())
    for name, row in rows.items():
        assert tuple(sorted(row)) == bench.ROW_KEYS, name
        assert row["batch_per_sec"] > 0, name
        assert 0.0 <= row["moved_fraction"] <= 1.0, name
    assert rows["sequential-checking"]["moved_set"] == 0


def test_reduced_gates_hold(bench, monkeypatch):
    monkeypatch.setattr(bench, "ADDRESSES", 600)
    gates = bench.run_gates()
    assert tuple(sorted(gates)) == bench.GATE_KEYS
    zero = gates["sequential_checking_zero_move"]
    assert zero["moved_set"] == 0 and zero["moved_positional"] == 0
    load = gates["rpdp_peak_load"]
    assert load["rpdp"] <= load["capacity_only"]
