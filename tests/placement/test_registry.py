"""The strategy registry: one table the CLI and benches both trust."""

import pytest

from repro.core import FastRedundantShare, LinMirror, RedundantShare
from repro.placement import (
    TrivialReplication,
    build_strategy,
    registered_strategies,
    strategy_names,
)
from repro.placement.registry import lookup
from repro.types import bins_from_capacities

BINS = bins_from_capacities([120, 80, 200, 40, 160])


def test_canonical_names_are_unique_and_stable():
    names = strategy_names()
    assert len(names) == len(set(names))
    for expected in (
        "redundant-share",
        "lin-mirror",
        "fast-redundant-share",
        "trivial",
        "classic-lin-mirror",
        "crush",
        "weighted-striping",
        "balanced-rendezvous",
    ):
        assert expected in names


def test_aliases_resolve_to_canonical_entries():
    assert lookup("fast").name == "fast-redundant-share"
    assert lookup("striping").name == "weighted-striping"
    assert "fast" in strategy_names(include_aliases=True)


def test_unknown_name_raises_with_choices():
    with pytest.raises(KeyError, match="unknown strategy"):
        lookup("definitely-not-a-strategy")


def test_build_honours_copies_and_fixed_copies():
    assert build_strategy("redundant-share", BINS, 3).copies == 3
    assert isinstance(build_strategy("fast", BINS, 3), FastRedundantShare)
    assert isinstance(build_strategy("trivial", BINS, 3), TrivialReplication)
    # LinMirror is k = 2 by definition, whatever was requested.
    mirror = build_strategy("lin-mirror", BINS, 5)
    assert isinstance(mirror, LinMirror)
    assert mirror.copies == 2


def test_every_entry_builds_and_places():
    for entry in registered_strategies():
        strategy = entry.build(BINS, 3)
        placement = strategy.place(42)
        assert len(placement) == entry.effective_copies(3)
        assert len(set(placement)) == len(placement)
        batch = strategy.place_many(range(16))
        assert batch.tuples() == [
            strategy.place(address) for address in range(16)
        ]


def test_vectorized_flags_match_reality():
    # Entries flagged vectorized must override the serial engine rather
    # than inherit the generic loop (the bench's speedup gate keys on it).
    from repro.placement.base import ReplicationStrategy

    generic = ReplicationStrategy._place_many_serial
    for entry in registered_strategies():
        strategy = entry.build(BINS, 3)
        overrides = (
            type(strategy)._place_many_serial is not generic
        )
        assert overrides == entry.vectorized, entry.name
