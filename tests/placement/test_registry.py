"""The strategy registry: one table the CLI and benches both trust."""

import pytest

from repro.core import FastRedundantShare, LinMirror, SequentialChecking
from repro.exceptions import ConfigurationError
from repro.placement import (
    ResidualPerformancePlacement,
    TrivialReplication,
    create,
    registered_strategies,
    strategy_names,
)
from repro.placement.registry import MOVEMENT_CLASSES, lookup
from repro.types import bins_from_capacities

BINS = bins_from_capacities([120, 80, 200, 40, 160])


def test_canonical_names_are_unique_and_stable():
    names = strategy_names()
    assert len(names) == len(set(names))
    for expected in (
        "redundant-share",
        "lin-mirror",
        "fast-redundant-share",
        "trivial",
        "classic-lin-mirror",
        "crush",
        "weighted-striping",
        "balanced-rendezvous",
        "sequential-checking",
        "rpdp",
    ):
        assert expected in names


def test_aliases_resolve_to_canonical_entries():
    assert lookup("fast").name == "fast-redundant-share"
    assert lookup("striping").name == "weighted-striping"
    assert lookup("seq-check").name == "sequential-checking"
    assert lookup("residual-performance").name == "rpdp"
    assert "fast" in strategy_names(include_aliases=True)


def test_unknown_name_raises_with_canonical_choices():
    with pytest.raises(ConfigurationError, match="unknown strategy") as info:
        lookup("definitely-not-a-strategy")
    message = str(info.value)
    # The choices list names each strategy exactly once — canonical
    # names only, no aliases doubling entries up.
    assert "'rpdp'" in message
    assert "residual-performance" not in message
    assert "seq-check" not in message


def test_create_honours_copies_and_fixed_copies():
    assert create("redundant-share", BINS, copies=3).copies == 3
    assert isinstance(create("fast", BINS, copies=3), FastRedundantShare)
    assert isinstance(create("trivial", BINS, copies=3), TrivialReplication)
    # LinMirror is k = 2 by definition, whatever was requested.
    mirror = create("lin-mirror", BINS, copies=5)
    assert isinstance(mirror, LinMirror)
    assert mirror.copies == 2


def test_create_defaults_to_mirroring():
    assert create("redundant-share", BINS).copies == 2


def test_create_threads_typed_options_through():
    sc = create("sequential-checking", BINS, copies=2)
    assert isinstance(sc, SequentialChecking)
    rpdp = create(
        "rpdp", BINS, copies=3, service_rates=(1.0, 2.0, 4.0, 8.0, 16.0)
    )
    assert isinstance(rpdp, ResidualPerformancePlacement)
    assert rpdp.copies == 3
    striping = create("weighted-striping", BINS, copies=2, resolution=128)
    assert striping._resolution == 128


def test_unknown_option_key_is_rejected_with_declared_names():
    with pytest.raises(ConfigurationError, match="unknown option"):
        create("rpdp", BINS, copies=2, service_rate=(1, 2, 3, 4, 5))
    with pytest.raises(ConfigurationError, match="'service_rates'"):
        create("rpdp", BINS, copies=2, bogus=1)


def test_wrong_option_type_is_rejected():
    with pytest.raises(ConfigurationError, match="resolution"):
        create("weighted-striping", BINS, copies=2, resolution="wide")
    with pytest.raises(ConfigurationError, match="clip_rates"):
        create("rpdp", BINS, copies=2, clip_rates="maybe")
    with pytest.raises(ConfigurationError, match="overflow"):
        create("sequential-checking", BINS, copies=2, overflow="explode")


def test_options_to_none_declaring_strategy_are_rejected():
    with pytest.raises(ConfigurationError, match="declares no options"):
        create("trivial", BINS, copies=2, resolution=64)


def test_fixed_copies_entry_still_validates_options():
    # lin-mirror pins k = 2 *and* declares no options; option validation
    # must fire even on fixed-copies entries.
    with pytest.raises(ConfigurationError, match="declares no options"):
        create("lin-mirror", BINS, copies=5, resolution=64)


def test_capability_flags_are_declared_and_legal():
    by_name = {entry.name: entry for entry in registered_strategies()}
    for entry in by_name.values():
        assert entry.movement_class in MOVEMENT_CLASSES, entry.name
    assert by_name["sequential-checking"].movement_class == "zero"
    assert by_name["sequential-checking"].supports_scale_out
    assert by_name["weighted-striping"].movement_class == "full"
    assert not by_name["weighted-striping"].supports_scale_out
    assert by_name["redundant-share"].movement_class == "bounded"
    assert by_name["trivial"].movement_class == "proportional"
    # Lemma 2.4: trivial ignores capacities; everyone else adapts.
    assert not by_name["trivial"].heterogeneity_aware
    assert by_name["rpdp"].heterogeneity_aware


def test_option_schemas_expose_defaults_and_docs():
    entry = lookup("sequential-checking")
    specs = {spec.name: spec for spec in entry.options}
    assert set(specs) == {"generations", "overflow"}
    assert specs["overflow"].default == "wrap"
    assert all(spec.doc for spec in entry.options)
    assert lookup("trivial").options == ()


def test_single_copy_and_replication_share_the_batch_signature():
    # Every registered strategy accepts the unified keyword signature;
    # single-copy placers expose the same shape (serial fallback).
    from repro.placement import RendezvousPlacer

    for entry in registered_strategies():
        strategy = entry.build(BINS, 3)
        batch = strategy.place_many(range(8), workers=None)
        assert batch.tuples() == [strategy.place(a) for a in range(8)]
    placer = RendezvousPlacer(BINS)
    assert placer.place_many(range(8), workers=None) == [
        placer.place(a) for a in range(8)
    ]
    assert placer.place_many(range(8), workers=4) == placer.place_many(range(8))


def test_every_entry_builds_and_places():
    for entry in registered_strategies():
        strategy = entry.build(BINS, 3)
        placement = strategy.place(42)
        assert len(placement) == entry.effective_copies(3)
        assert len(set(placement)) == len(placement)
        batch = strategy.place_many(range(16))
        assert batch.tuples() == [
            strategy.place(address) for address in range(16)
        ]


def test_vectorized_flags_match_reality():
    # Entries flagged vectorized must override the serial engine rather
    # than inherit the generic loop (the bench's speedup gate keys on it).
    from repro.placement.base import ReplicationStrategy

    generic = ReplicationStrategy._place_many_serial
    for entry in registered_strategies():
        strategy = entry.build(BINS, 3)
        overrides = (
            type(strategy)._place_many_serial is not generic
        )
        assert overrides == entry.vectorized, entry.name


def test_build_strategy_shim_is_gone():
    import repro.placement as placement
    import repro.placement.registry as registry

    assert not hasattr(registry, "build_strategy")
    assert not hasattr(placement, "build_strategy")
    assert "build_strategy" not in placement.__all__
