"""The strategy registry: one table the CLI and benches both trust."""

import pytest

from repro.core import FastRedundantShare, LinMirror, RedundantShare
from repro.placement import (
    TrivialReplication,
    build_strategy,
    create,
    registered_strategies,
    strategy_names,
)
from repro.placement.registry import lookup
from repro.types import bins_from_capacities

BINS = bins_from_capacities([120, 80, 200, 40, 160])


def test_canonical_names_are_unique_and_stable():
    names = strategy_names()
    assert len(names) == len(set(names))
    for expected in (
        "redundant-share",
        "lin-mirror",
        "fast-redundant-share",
        "trivial",
        "classic-lin-mirror",
        "crush",
        "weighted-striping",
        "balanced-rendezvous",
    ):
        assert expected in names


def test_aliases_resolve_to_canonical_entries():
    assert lookup("fast").name == "fast-redundant-share"
    assert lookup("striping").name == "weighted-striping"
    assert "fast" in strategy_names(include_aliases=True)


def test_unknown_name_raises_with_choices():
    with pytest.raises(KeyError, match="unknown strategy"):
        lookup("definitely-not-a-strategy")


def test_create_honours_copies_and_fixed_copies():
    assert create("redundant-share", BINS, copies=3).copies == 3
    assert isinstance(create("fast", BINS, copies=3), FastRedundantShare)
    assert isinstance(create("trivial", BINS, copies=3), TrivialReplication)
    # LinMirror is k = 2 by definition, whatever was requested.
    mirror = create("lin-mirror", BINS, copies=5)
    assert isinstance(mirror, LinMirror)
    assert mirror.copies == 2


def test_create_defaults_to_mirroring():
    assert create("redundant-share", BINS).copies == 2


def test_build_strategy_is_a_deprecated_alias():
    with pytest.warns(DeprecationWarning, match="create"):
        strategy = build_strategy("redundant-share", BINS, 3)
    assert strategy.copies == 3


def test_single_copy_and_replication_share_the_batch_signature():
    # Every registered strategy accepts the unified keyword signature;
    # single-copy placers expose the same shape (serial fallback).
    from repro.placement import RendezvousPlacer

    for entry in registered_strategies():
        strategy = entry.build(BINS, 3)
        batch = strategy.place_many(range(8), workers=None)
        assert batch.tuples() == [strategy.place(a) for a in range(8)]
    placer = RendezvousPlacer(BINS)
    assert placer.place_many(range(8), workers=None) == [
        placer.place(a) for a in range(8)
    ]
    assert placer.place_many(range(8), workers=4) == placer.place_many(range(8))


def test_every_entry_builds_and_places():
    for entry in registered_strategies():
        strategy = entry.build(BINS, 3)
        placement = strategy.place(42)
        assert len(placement) == entry.effective_copies(3)
        assert len(set(placement)) == len(placement)
        batch = strategy.place_many(range(16))
        assert batch.tuples() == [
            strategy.place(address) for address in range(16)
        ]


def test_vectorized_flags_match_reality():
    # Entries flagged vectorized must override the serial engine rather
    # than inherit the generic loop (the bench's speedup gate keys on it).
    from repro.placement.base import ReplicationStrategy

    generic = ReplicationStrategy._place_many_serial
    for entry in registered_strategies():
        strategy = entry.build(BINS, 3)
        overrides = (
            type(strategy)._place_many_serial is not generic
        )
        assert overrides == entry.vectorized, entry.name
