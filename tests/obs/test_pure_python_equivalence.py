"""Trace/metric equivalence of the pure-Python and NumPy legs.

Every instrumented hot path must produce *identical* trace events and
counter/histogram snapshots whichever engine runs underneath — the
observability layer may never leak which leg executed.  The pure leg here
is forced the same way ``REPRO_PURE_PYTHON=1`` does (by nulling
``repro._compat.np``); CI additionally runs this whole file under the
real environment variable, where both legs collapse to pure Python and
the assertions still hold.
"""

import pytest

import repro._compat as compat
from repro import obs
from repro.cluster import Cluster, FailureInjector, Rebalancer
from repro.core import LinMirror, RedundantShare
from repro.placement import TrivialReplication
from repro.simulation import Simulator
from repro.types import BinSpec, bins_from_capacities


def run_observed_scenario():
    """Exercise every instrumented hot path; return (events, snapshot).

    Events are reduced to (kind, fields) pairs — sequence numbers are
    positional and asserted implicitly by list order.
    """
    with obs.capture() as trace:
        # Placement batch engines (vectorized scan vs scalar walk).
        scan = RedundantShare(
            bins_from_capacities([90, 70, 50, 30, 20]), copies=3
        )
        scan.place_many(range(400))
        mirror = LinMirror(bins_from_capacities([60, 40, 30]))
        mirror.place_many(range(100, 250))
        mirror.place_copy(7, 0)
        mirror.place_copy(7, 1)
        TrivialReplication(
            bins_from_capacities([3, 2, 1]), copies=2
        ).place_many(range(40))

        # Cluster lifecycle: lazy add + throttled drain, eager remove,
        # failure and repair.
        cluster = Cluster(
            bins_from_capacities([50, 40, 30, 20], prefix="dev"),
            lambda bins: RedundantShare(bins, copies=2),
        )
        for address in range(30):
            cluster.write(address, bytes([address % 251]))
        cluster.add_device(BinSpec("dev-new", 45), rebalance=False)
        Rebalancer(cluster).run_to_completion(step_size=7)
        cluster.remove_device("dev-3")
        FailureInjector(seed=5).crash(cluster, 1)

        # Simulator ticks.
        simulator = Simulator()
        simulator.schedule_many((float(i), lambda: None) for i in range(6))
        simulator.run()

        events = [(event.kind, event.fields) for event in trace.events]
        snapshot = obs.metrics().snapshot()
    obs.reset_metrics()
    return events, snapshot


class TestLegEquivalence:
    def test_trace_and_metrics_identical_across_legs(self, monkeypatch):
        reference_events, reference_snapshot = run_observed_scenario()
        monkeypatch.setattr(compat, "np", None)
        fallback_events, fallback_snapshot = run_observed_scenario()
        assert fallback_events == reference_events
        assert fallback_snapshot == reference_snapshot

    def test_reference_scenario_covers_every_instrumented_path(self):
        events, snapshot = run_observed_scenario()
        kinds = {kind for kind, _ in events}
        assert {
            "placement.batch",
            "placement.scan",
            "cluster.created",
            "device.added",
            "device.removed",
            "device.failed",
            "device.repaired",
            "cluster.migration",
            "rebalance.start",
            "rebalance.step",
            "rebalance.done",
            "failure.round",
            "sim.run",
        } <= kinds
        counters = snapshot["counters"]
        for name in (
            "placement.batches",
            "placement.walk_cache.misses",
            "rebalance.moved_shares",
            "cluster.moved_shares",
            "failure.rounds",
            "sim.events",
        ):
            assert name in counters, name
        for name in (
            "placement.batch_size",
            "placement.scan_depth",
            "rebalance.step_blocks",
            "sim.queue_depth",
        ):
            assert name in snapshot["histograms"], name

    def test_event_fields_are_json_scalars(self):
        """NumPy scalar types must never leak into trace fields."""
        events, _ = run_observed_scenario()
        allowed = (str, int, float, bool, type(None))
        for kind, fields in events:
            for key, value in fields.items():
                if isinstance(value, list):
                    assert all(isinstance(item, allowed) for item in value), (
                        kind, key, value
                    )
                else:
                    assert isinstance(value, allowed), (kind, key, value)
                    assert type(value).__module__ == "builtins", (kind, key)
