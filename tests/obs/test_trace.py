"""The event bus: sink backends, global installation, capture helper."""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
    TraceEvent,
    read_jsonl,
)


class TestSinkBackends:
    def test_null_sink_is_disabled_and_drops(self):
        sink = NullSink()
        assert sink.enabled is False
        sink.emit("anything", value=1)  # must not raise

    def test_memory_sink_captures_in_order(self):
        sink = MemorySink()
        sink.emit("a", x=1)
        sink.emit("b", y=2)
        sink.emit("a", x=3)
        assert [event.kind for event in sink.events] == ["a", "b", "a"]
        assert [event.sequence for event in sink.events] == [0, 1, 2]
        assert sink.of_kind("a")[1].fields == {"x": 3}
        assert sink.kinds() == {"a": 2, "b": 1}
        assert len(sink) == 3
        sink.clear()
        assert len(sink) == 0

    def test_trace_event_as_dict_flattens_fields(self):
        event = TraceEvent(sequence=7, kind="k", fields={"a": 1})
        assert event.as_dict() == {"seq": 7, "kind": "k", "a": 1}

    def test_jsonl_sink_writes_one_object_per_line(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit("placement.batch", strategy="s", addresses=10)
        sink.emit("device.failed", device="d-1")
        sink.close()  # flushes; does not close foreign handles
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines == [
            {"seq": 0, "kind": "placement.batch", "strategy": "s", "addresses": 10},
            {"seq": 1, "kind": "device.failed", "device": "d-1"},
        ]

    def test_jsonl_sink_roundtrips_through_a_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            sink.emit("a", n=1)
            sink.emit("b", n=2)
        records = read_jsonl(path)
        assert [record["kind"] for record in records] == ["a", "b"]

    def test_tee_sink_fans_out(self):
        first, second = MemorySink(), MemorySink()
        tee = TeeSink([first, second])
        tee.emit("x", v=1)
        assert first.kinds() == second.kinds() == {"x": 1}


class TestGlobalSink:
    def test_default_sink_is_null(self):
        assert obs.sink().enabled is False
        assert obs.enabled() is False

    def test_set_sink_returns_previous_and_none_restores_null(self):
        memory = MemorySink()
        previous = obs.set_sink(memory)
        try:
            assert obs.sink() is memory
            assert obs.enabled() is True
        finally:
            assert obs.set_sink(None) is memory
        assert obs.sink() is obs.NULL_SINK

    def test_use_sink_restores_on_exit_even_on_error(self):
        memory = MemorySink()
        with pytest.raises(RuntimeError):
            with obs.use_sink(memory):
                assert obs.sink() is memory
                raise RuntimeError("boom")
        assert obs.sink().enabled is False

    def test_capture_resets_metrics_and_installs_memory_sink(self):
        obs.metrics().counter("leftover").add(5)
        with obs.capture() as trace:
            assert obs.sink() is trace
            assert obs.metrics().counters() == {}
            obs.sink().emit("k")
        assert trace.kinds() == {"k": 1}
        assert obs.sink().enabled is False

    def test_capture_without_reset_keeps_metrics(self):
        obs.reset_metrics()
        obs.metrics().counter("kept").add(1)
        with obs.capture(reset=False):
            assert obs.metrics().counters() == {"kept": 1}
        obs.reset_metrics()
