"""Counters, histograms and the registry."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.add()
        counter.add(41)
        assert counter.value == 42

    def test_rejects_negative_amounts(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)


class TestHistogram:
    def test_buckets_values_by_upper_bound(self):
        histogram = Histogram("h", bounds=[1, 2, 4])
        for value in (1, 2, 2, 3, 100):
            histogram.observe(value)
        # <=1: one, <=2: two, <=4: one (the 3), overflow: the 100.
        assert histogram.bucket_counts == [1, 2, 1, 1]
        assert histogram.count == 5
        assert histogram.total == 108
        assert histogram.minimum == 1
        assert histogram.maximum == 100

    def test_bulk_observe_equals_repeated_observe(self):
        bulk = Histogram("bulk", bounds=[2, 8])
        loop = Histogram("loop", bounds=[2, 8])
        bulk.observe(5, count=1000)
        for _ in range(1000):
            loop.observe(5)
        assert bulk.snapshot() == loop.snapshot()

    def test_observe_zero_count_is_a_noop(self):
        histogram = Histogram("h")
        histogram.observe(3, count=0)
        assert histogram.count == 0
        assert histogram.minimum is None

    def test_rejects_negative_count_and_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h").observe(1, count=-1)
        with pytest.raises(ValueError):
            Histogram("h", bounds=[4, 2])

    def test_mean_and_quantiles(self):
        histogram = Histogram("h", bounds=[1, 2, 4, 8])
        histogram.observe_many([1, 1, 2, 4, 8])
        assert histogram.mean == pytest.approx(16 / 5)
        assert histogram.quantile(0.5) == 2
        assert histogram.quantile(1.0) == 8
        assert Histogram("empty").quantile(0.5) is None
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_overflow_quantile_reports_observed_max(self):
        histogram = Histogram("h", bounds=[1])
        histogram.observe(500)
        assert histogram.quantile(0.99) == 500

    def test_default_buckets_cover_typical_scales(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert DEFAULT_BUCKETS[-1] == 65536

    def test_snapshot_shape(self):
        histogram = Histogram("h", bounds=[2])
        histogram.observe(1)
        histogram.observe(9)
        assert histogram.snapshot() == {
            "count": 2,
            "sum": 10.0,
            "min": 1,
            "max": 9,
            "mean": 5.0,
            "buckets": {"2": 1},
            "overflow": 1,
        }


class TestRegistry:
    def test_create_on_first_use_and_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").add(3)
        registry.histogram("h", bounds=[10]).observe(4)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 3}
        assert snapshot["histograms"]["h"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_listings_are_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z").add(1)
        registry.counter("a").add(1)
        assert list(registry.counters()) == ["a", "z"]

    def test_filtered_view_scopes_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("chaos.fleet.epochs").add(5)
        registry.counter("placement.batches").add(2)
        registry.histogram("chaos.fleet.damaged").observe(3)
        registry.histogram("placement.batch_size").observe(100)
        view = registry.filtered("chaos.fleet.")
        assert list(view.counters()) == ["chaos.fleet.epochs"]
        assert list(view.histograms()) == ["chaos.fleet.damaged"]
        # Live references, not copies: later increments show through.
        registry.counter("chaos.fleet.epochs").add(1)
        assert view.counters()["chaos.fleet.epochs"] == 6
