"""Instrumented hot paths: events flow when enabled, nothing when not.

Covers the tentpole's instrumentation points: batch placement and the
hazard-scan depth, rebalancer drains, cluster device transitions, failure
rounds and the simulator's per-tick queue depth.
"""

import pytest

from repro import obs
from repro.cluster import Cluster, FailureInjector, Rebalancer
from repro.core import LinMirror, RedundantShare
from repro.placement import TrivialReplication
from repro.simulation import Simulator
from repro.types import BinSpec, bins_from_capacities


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


def small_cluster(copies=2, capacities=(120, 100, 80, 60)):
    bins = bins_from_capacities(list(capacities), prefix="dev")
    return Cluster(bins, lambda b: RedundantShare(b, copies=copies))


class TestZeroWhenDisabled:
    def test_null_sink_records_no_metrics_or_events(self):
        strategy = RedundantShare(
            bins_from_capacities([5, 4, 3, 2]), copies=2
        )
        strategy.place_many(range(256))
        cluster = small_cluster()
        for address in range(16):
            cluster.write(address, b"p")
        cluster.add_device(BinSpec("dev-new", 90))
        cluster.fail_device("dev-new")
        cluster.repair_device("dev-new")
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert obs.metrics().snapshot() == {"counters": {}, "histograms": {}}


class TestPlacementInstrumentation:
    def test_batch_event_and_counters(self):
        strategy = RedundantShare(
            bins_from_capacities([5, 4, 3, 2]), copies=3
        )
        with obs.capture() as trace:
            strategy.place_many(range(500))
            strategy.place_many(range(500, 700))
        batches = trace.of_kind("placement.batch")
        assert [event.fields["addresses"] for event in batches] == [500, 200]
        assert batches[0].fields["strategy"] == "redundant-share"
        assert batches[0].fields["copies"] == 3
        counters = obs.metrics().counters()
        assert counters["placement.batches"] == 2
        assert counters["placement.addresses"] == 700
        histogram = obs.metrics().histogram("placement.batch_size")
        assert histogram.count == 2

    def test_scan_depth_histogram_matches_scalar_walks(self):
        strategy = RedundantShare(
            bins_from_capacities([5, 4, 3, 2, 1]), copies=2
        )
        population = range(300)
        expected_depths = [
            strategy._walk_ranks(address, 2)[-1] + 1 for address in population
        ]
        with obs.capture() as trace:
            strategy.place_many(population)
        scan = trace.of_kind("placement.scan")[0]
        assert scan.fields["addresses"] == 300
        assert scan.fields["depth_sum"] == sum(expected_depths)
        assert scan.fields["depth_max"] == max(expected_depths)
        histogram = obs.metrics().histogram("placement.scan_depth")
        assert histogram.count == 300
        assert histogram.total == sum(expected_depths)

    def test_default_loop_strategies_emit_batch_events_too(self):
        strategy = TrivialReplication(
            bins_from_capacities([3, 2, 1]), copies=2
        )
        with obs.capture() as trace:
            strategy.place_many(range(50))
        assert trace.of_kind("placement.batch")[0].fields == {
            "strategy": "trivial",
            "copies": 2,
            "addresses": 50,
        }

    def test_empty_batch_emits_no_scan_event(self):
        strategy = LinMirror(bins_from_capacities([3, 2, 1]))
        with obs.capture() as trace:
            strategy.place_many([])
        assert trace.of_kind("placement.scan") == []
        assert trace.of_kind("placement.batch")[0].fields["addresses"] == 0

    def test_walk_cache_hit_and_miss_counters(self):
        strategy = LinMirror(bins_from_capacities([4, 3, 2]))
        with obs.capture():
            strategy.place_copy(1, 0)
            strategy.place_copy(1, 1)  # same walk, cached
            strategy.place_copy(2, 0)
        counters = obs.metrics().counters()
        assert counters["placement.walk_cache.misses"] == 2
        assert counters["placement.walk_cache.hits"] == 1


class TestClusterInstrumentation:
    def test_device_lifecycle_events(self):
        with obs.capture() as trace:
            cluster = small_cluster()
            for address in range(20):
                cluster.write(address, bytes([address]))
            cluster.add_device(BinSpec("dev-9", 110))
            cluster.fail_device("dev-9")
            cluster.repair_device("dev-9")
            cluster.remove_device("dev-0")
        kinds = trace.kinds()
        assert kinds["cluster.created"] == 1
        assert kinds["device.added"] == 1
        assert kinds["device.failed"] == 1
        assert kinds["device.repaired"] == 1
        assert kinds["device.removed"] == 1
        assert kinds["cluster.migration"] == 2  # the add and the remove
        added = trace.of_kind("device.added")[0].fields
        assert added["device"] == "dev-9"
        assert added["rebalance"] is True
        migration = trace.of_kind("cluster.migration")[0].fields
        assert migration["trigger"] == "add"
        assert migration["moved"] == added["moved"]
        counters = obs.metrics().counters()
        assert counters["cluster.devices_added"] == 1
        assert counters["cluster.devices_removed"] == 1
        assert counters["cluster.devices_failed"] == 1
        assert counters["cluster.devices_repaired"] == 1

    def test_failure_round_event(self):
        cluster = small_cluster()
        for address in range(12):
            cluster.write(address, b"zz")
        with obs.capture() as trace:
            report = FailureInjector(seed=3).crash(cluster, 1)
        event = trace.of_kind("failure.round")[0].fields
        assert event["victims"] == report.failed
        assert event["readable"] == report.readable_blocks
        assert event["lost"] == report.lost_blocks
        assert event["rebuilt"] == report.rebuilt_shares
        assert obs.metrics().counters()["failure.rounds"] == 1


class TestRebalancerInstrumentation:
    def test_start_step_done_events_and_counters(self):
        cluster = small_cluster()
        for address in range(40):
            cluster.write(address, b"b")
        cluster.add_device(BinSpec("dev-9", 150), rebalance=False)
        with obs.capture() as trace:
            rebalancer = Rebalancer(cluster)
            progress = rebalancer.run_to_completion(step_size=8)
        start = trace.of_kind("rebalance.start")[0].fields
        assert start["backlog"] == progress.total_blocks
        steps = trace.of_kind("rebalance.step")
        assert sum(event.fields["migrated"] for event in steps) <= progress.total_blocks
        assert steps[-1].fields["remaining"] == 0
        done = trace.of_kind("rebalance.done")[0].fields
        assert done["moved_shares"] == progress.moved_shares
        counters = obs.metrics().counters()
        assert counters["rebalance.moved_shares"] == progress.moved_shares
        assert counters["rebalance.migrated_blocks"] == progress.migrated_blocks
        # Each migrate_block feeds the cluster-level counter too.
        assert counters["cluster.moved_shares"] == progress.moved_shares


class TestSimulatorInstrumentation:
    def test_queue_depth_histogram_and_run_event(self):
        simulator = Simulator()
        with obs.capture() as trace:
            simulator.schedule_many((float(i), lambda: None) for i in range(5))
            simulator.run()
        histogram = obs.metrics().histogram("sim.queue_depth")
        assert histogram.count == 5
        assert histogram.maximum == 5  # first tick sees the full queue
        assert histogram.minimum == 1
        run = trace.of_kind("sim.run")[0].fields
        assert run["processed"] == 5
        assert run["pending"] == 0
        assert obs.metrics().counters()["sim.events"] == 5
