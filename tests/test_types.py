"""Tests for the shared value types."""

import pytest

from repro.types import (
    BinSpec,
    bins_from_capacities,
    relative_capacities,
    sort_bins_by_capacity,
    total_capacity,
    validate_bins,
)


class TestBinSpec:
    def test_valid(self):
        spec = BinSpec("a", 5)
        assert spec.bin_id == "a"
        assert spec.capacity == 5

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            BinSpec("", 5)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            BinSpec("a", 0)
        with pytest.raises(ValueError):
            BinSpec("a", -3)

    def test_frozen(self):
        spec = BinSpec("a", 5)
        with pytest.raises(AttributeError):
            spec.capacity = 10  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert BinSpec("a", 5) == BinSpec("a", 5)
        assert len({BinSpec("a", 5), BinSpec("a", 5)}) == 1


class TestValidateBins:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_bins([])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            validate_bins([BinSpec("a", 1), BinSpec("a", 2)])

    def test_valid_passes(self):
        validate_bins([BinSpec("a", 1), BinSpec("b", 2)])


class TestHelpers:
    def test_sort_descending_with_tiebreak(self):
        bins = [BinSpec("b", 5), BinSpec("a", 5), BinSpec("c", 9)]
        ordered = sort_bins_by_capacity(bins)
        assert [spec.bin_id for spec in ordered] == ["c", "a", "b"]

    def test_total_capacity(self):
        assert total_capacity([BinSpec("a", 3), BinSpec("b", 4)]) == 7

    def test_relative_capacities(self):
        shares = relative_capacities([BinSpec("a", 1), BinSpec("b", 3)])
        assert shares == {"a": 0.25, "b": 0.75}

    def test_bins_from_capacities(self):
        bins = bins_from_capacities([3, 1], prefix="disk")
        assert bins[0] == BinSpec("disk-0", 3)
        assert bins[1] == BinSpec("disk-1", 1)
