"""Documentation quality gate: every public item carries a docstring.

Walks the whole package, importing every module, and asserts that modules,
public classes, public functions and public methods are documented — the
deliverable contract for the library's API surface.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def is_local(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def test_every_module_has_docstring():
    missing = [
        module.__name__ for module in iter_modules() if not module.__doc__
    ]
    assert not missing, f"undocumented modules: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not is_local(obj, module):
                continue
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_every_public_method_documented():
    missing = []
    for module in iter_modules():
        for class_name, cls in vars(module).items():
            if class_name.startswith("_") or not inspect.isclass(cls):
                continue
            if not is_local(cls, module):
                continue
            for method_name, method in vars(cls).items():
                if method_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(method)
                    or isinstance(method, (property, classmethod, staticmethod))
                ):
                    continue
                target = method.fget if isinstance(method, property) else method
                if isinstance(method, (classmethod, staticmethod)):
                    target = method.__func__
                if not inspect.getdoc(target):
                    missing.append(
                        f"{module.__name__}.{class_name}.{method_name}"
                    )
    assert not missing, f"undocumented public methods: {missing}"
