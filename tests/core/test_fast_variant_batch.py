"""FastRedundantShare batch engine: NumPy vs scalar vs pure-Python.

The Section 3.3 variant's vectorized ``place_many`` must be bit-identical
to the scalar O(k) lookup *and* to the pure-Python fallback leg, for any
configuration — both paths draw through the very same
:class:`~repro.hashing.alias.CumulativeTable` boundaries, so this pins
that the ``searchsorted`` gather reproduces the table's binary search
exactly.  Also covers the epoch-keyed precompute bundle: instances over
the same configuration and epoch share state tables; a bumped epoch
starts cold.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro.core import FastRedundantShare
from repro.placement import precompute
from repro.types import bins_from_capacities

capacities_vectors = st.lists(
    st.integers(min_value=1, max_value=2_000), min_size=5, max_size=12
)
replication_degrees = st.integers(min_value=2, max_value=4)
namespaces = st.sampled_from(["", "ns-a", "tenant/7"])
address_lists = st.lists(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    min_size=1,
    max_size=64,
)


def scalar_rows(strategy, addresses):
    return [strategy.place(address) for address in addresses]


class TestBatchEquivalence:
    @given(
        capacities=capacities_vectors,
        copies=replication_degrees,
        namespace=namespaces,
        addresses=address_lists,
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_scalar(
        self, capacities, copies, namespace, addresses
    ):
        strategy = FastRedundantShare(
            bins_from_capacities(capacities), copies=copies,
            namespace=namespace,
        )
        batch = strategy.place_many(addresses)
        assert [tuple(row) for row in batch.tuples()] == scalar_rows(
            strategy, addresses
        )

    @given(
        capacities=capacities_vectors,
        copies=replication_degrees,
        namespace=namespaces,
        addresses=address_lists,
    )
    @settings(max_examples=40, deadline=None)
    def test_numpy_leg_matches_pure_python_leg(
        self, capacities, copies, namespace, addresses
    ):
        bins = bins_from_capacities(capacities)

        def run_leg():
            # Each leg starts from a cold shared cache so neither can feed
            # the other through the process-global precompute bundle.
            precompute.clear_shared_cache()
            strategy = FastRedundantShare(
                bins, copies=copies, namespace=namespace
            )
            return [
                tuple(row)
                for row in strategy.place_many(addresses).tuples()
            ]

        numpy_rows = run_leg()
        saved = compat.np
        compat.np = None
        try:
            pure_rows = run_leg()
        finally:
            compat.np = saved
        assert numpy_rows == pure_rows

    def test_non_cdf_selectors_still_match_scalar(self):
        # "rendezvous"/"share" selectors keep the generic loop; the batch
        # result must still agree with place().
        bins = bins_from_capacities([100, 250, 60, 400, 90])
        addresses = list(range(-7, 150))
        for selector in ("rendezvous", "share"):
            strategy = FastRedundantShare(
                bins, copies=3, state_selector=selector
            )
            batch = strategy.place_many(addresses)
            assert [tuple(row) for row in batch.tuples()] == scalar_rows(
                strategy, addresses
            )


class TestPrecomputeBundle:
    BINS = bins_from_capacities([120, 80, 200, 40, 160, 90])

    def test_lazy_until_first_batch(self):
        strategy = FastRedundantShare(self.BINS, copies=3)
        assert strategy.cache_info()["precomputed"] == 0
        strategy.place_many(range(32))
        info = strategy.cache_info()
        assert info["precomputed"] == 1
        if compat.np is not None:
            assert info["vector_states"] > 0

    def test_same_epoch_instances_share_state(self):
        precompute.clear_shared_cache()
        first = FastRedundantShare(self.BINS, copies=3)
        first.place_many(range(64))
        warm_states = first.cache_info()["vector_states"]
        if compat.np is not None:
            assert warm_states > 0

        before = precompute.shared_cache().info()
        second = FastRedundantShare(self.BINS, copies=3)
        second.place_many(range(64))
        after = precompute.shared_cache().info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        # The second instance gathered from the first's arrays.
        assert second.cache_info()["vector_states"] == warm_states
        assert second._precompute is first._precompute

    def test_fingerprint_separates_configurations(self):
        precompute.clear_shared_cache()
        base = FastRedundantShare(self.BINS, copies=3)
        base.place_many(range(16))
        before = precompute.shared_cache().info()
        for other in (
            FastRedundantShare(self.BINS, copies=2),
            FastRedundantShare(self.BINS, copies=3, namespace="other"),
            FastRedundantShare(
                bins_from_capacities([120, 80, 200, 40, 160, 91]), copies=3
            ),
        ):
            other.place_many(range(16))
            assert other._precompute is not base._precompute
        after = precompute.shared_cache().info()
        assert after["misses"] == before["misses"] + 3

    def test_bumped_epoch_starts_cold(self):
        precompute.clear_shared_cache()
        warm = FastRedundantShare(self.BINS, copies=3)
        warm.place_many(range(64))
        precompute.bump_epoch()
        cold = FastRedundantShare(self.BINS, copies=3)
        assert cold._epoch > warm._epoch
        cold.place_many(range(64))
        assert cold._precompute is not warm._precompute
        # Same configuration, so the placements themselves agree.
        assert cold.place_many(range(64)).tuples() == warm.place_many(
            range(64)
        ).tuples()
