"""Tests for the literal Algorithm 2 (ClassicLinMirror) and the b̃ boost."""

import collections

import pytest

from repro.capacity import clip_capacities
from repro.capacity.weights import (
    first_saturated_index,
    reach_probabilities,
    round_probabilities,
    suffix_sums,
)
from repro.core import ClassicLinMirror, boundary_boost
from repro.placement import make_alias, make_ring_placer
from repro.types import bins_from_capacities


def analytic_marginals(capacities, boost):
    """Exact expected shares of ClassicLinMirror with rendezvous backend."""
    n = len(capacities)
    sums = suffix_sums(capacities)
    rounds = [min(1.0, value) for value in round_probabilities(capacities, 2)]
    saturated = first_saturated_index(rounds)
    reach = reach_probabilities(rounds)
    primaries = [rounds[i] * reach[i] for i in range(n)]
    shares = [0.0] * n
    for l in range(saturated + 1):
        if primaries[l] == 0.0:
            continue
        shares[l] += primaries[l]
        # Secondary distribution for primaries at l.
        weights = list(capacities[l + 1 :])
        if boost is not None and l == saturated - 1 and weights:
            weights[0] = boost if boost != float("inf") else 1.0
            if boost == float("inf"):
                weights = [1.0] + [0.0] * (len(weights) - 1)
        total = sum(weights)
        for offset, weight in enumerate(weights):
            shares[l + 1 + offset] += primaries[l] * weight / total
    return [value / 2.0 for value in shares]


class TestBoundaryBoost:
    def test_known_example(self):
        # [4, 4, 3]: natural weight 4 must be boosted to 5 (share 5/8).
        assert boundary_boost([4.0, 4.0, 3.0]) == pytest.approx(5.0)

    def test_second_example(self):
        # [5, 4, 4, 2]: boundary at rank 2, boost solves share 3/4 -> b̃ = 6.
        assert boundary_boost([5.0, 4.0, 4.0, 2.0]) == pytest.approx(6.0)

    def test_no_boost_when_boundary_first(self):
        # [2, 1, 1]: č_0 = 1, no predecessor to adjust.
        assert boundary_boost([2.0, 1.0, 1.0]) is None

    def test_no_boost_for_smooth_vectors(self):
        # Homogeneous: natural weights are exact, boost must vanish or be
        # numerically tiny relative to the capacities.
        boost = boundary_boost([1.0, 1.0, 1.0, 1.0])
        assert boost is None or boost == pytest.approx(1.0, abs=1e-6)

    def test_analytic_marginals_are_fair(self):
        for raw in ([4, 4, 3], [5, 4, 4, 2], [9, 7, 5, 3, 1], [6, 6, 6, 1]):
            capacities = clip_capacities(sorted(raw, reverse=True), 2)
            boost = boundary_boost(capacities)
            shares = analytic_marginals(capacities, boost)
            total = sum(capacities)
            for capacity, share in zip(capacities, shares):
                assert share == pytest.approx(capacity / total, abs=1e-9)


class TestClassicLinMirror:
    BALLS = 40_000

    def test_redundancy(self):
        strategy = ClassicLinMirror(bins_from_capacities([5, 4, 3, 2]))
        for address in range(2000):
            placement = strategy.place(address)
            assert len(placement) == 2
            assert placement[0] != placement[1]

    def test_deterministic(self):
        strategy = ClassicLinMirror(bins_from_capacities([5, 4, 3]))
        assert strategy.place(5) == strategy.place(5)

    def test_fairness_with_boost(self):
        strategy = ClassicLinMirror(bins_from_capacities([4, 4, 3]))
        counts = collections.Counter()
        for address in range(self.BALLS):
            for bin_id in strategy.place(address):
                counts[bin_id] += 1
        shares = strategy.expected_shares()
        for bin_id, share in shares.items():
            assert counts[bin_id] / (2 * self.BALLS) == pytest.approx(
                share / 1.0, abs=0.012
            )

    def test_unfairness_without_boost(self):
        """Disabling the b̃ adjustment must visibly starve the boundary bin
        on a vector with a strong inhomogeneity."""
        capacities = [10, 10, 1]
        with_boost = ClassicLinMirror(
            bins_from_capacities(capacities), apply_boost=True
        )
        without = ClassicLinMirror(
            bins_from_capacities(capacities), apply_boost=False
        )
        balls = 30_000

        def share_of(strategy, bin_id):
            hits = sum(
                1
                for address in range(balls)
                for placed in strategy.place(address)
                if placed == bin_id
            )
            return hits / (2 * balls)

        target = with_boost.expected_shares()["bin-1"]
        assert share_of(with_boost, "bin-1") == pytest.approx(target, abs=0.012)
        assert share_of(without, "bin-1") < target - 0.01

    def test_alternative_backends_work(self):
        bins = bins_from_capacities([5, 4, 3, 2])
        for factory in (make_ring_placer, make_alias):
            strategy = ClassicLinMirror(bins, placer_factory=factory)
            for address in range(500):
                placement = strategy.place(address)
                assert placement[0] != placement[1]

    def test_boundary_index_exposed(self):
        strategy = ClassicLinMirror(bins_from_capacities([4, 4, 3]))
        assert strategy.boundary_index == 1
        assert strategy.boost == pytest.approx(5.0)
