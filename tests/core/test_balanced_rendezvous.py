"""Tests for the open-problem exploration: balanced top-k rendezvous."""

import collections

import pytest

from repro.core import BalancedRendezvous
from repro.types import BinSpec, bins_from_capacities


class TestConstruction:
    def test_rate_validated(self):
        with pytest.raises(ValueError):
            BalancedRendezvous(
                bins_from_capacities([5, 4]), copies=2, calibration_rate=0.0
            )

    def test_pinning_of_saturated_bins(self):
        # [2, 1, 1], k=2: the big bin's clipped demand is exactly 1.
        strategy = BalancedRendezvous(bins_from_capacities([2, 1, 1]), copies=2)
        assert strategy.pinned_bins == ["bin-0"]
        for address in range(1000):
            assert "bin-0" in strategy.place(address)

    def test_no_pinning_for_balanced_pools(self):
        strategy = BalancedRendezvous(bins_from_capacities([5, 5, 5]), copies=2)
        assert strategy.pinned_bins == []

    def test_all_pinned_when_n_equals_k(self):
        strategy = BalancedRendezvous(bins_from_capacities([5, 3]), copies=2)
        assert len(strategy.pinned_bins) == 2
        assert strategy.place(0) == ("bin-0", "bin-1")


class TestBehaviour:
    def test_redundancy_and_determinism(self):
        strategy = BalancedRendezvous(
            bins_from_capacities([9, 7, 5, 3, 1]), copies=3
        )
        assert strategy.place(3) == strategy.place(3)
        for address in range(1500):
            assert len(set(strategy.place(address))) == 3

    def test_calibrated_fairness(self):
        capacities = [1000, 400, 300, 200, 100]
        strategy = BalancedRendezvous(bins_from_capacities(capacities), copies=2)
        counts = collections.Counter()
        balls = 25_000
        for address in range(balls):
            counts.update(strategy.place(address))
        for bin_id, share in strategy.expected_shares().items():
            assert counts[bin_id] / (2 * balls) == pytest.approx(
                share, abs=0.02
            ), bin_id

    def test_uncalibrated_is_unfair(self):
        """Ablation: without calibration this is the trivial strategy and
        under-loads the big bin (Lemma 2.4)."""
        capacities = [1000, 400, 300, 200, 100]
        raw = BalancedRendezvous(
            bins_from_capacities(capacities), copies=2, calibration_samples=0
        )
        balls = 15_000
        hits = sum(
            1 for address in range(balls) if "bin-0" in raw.place(address)
        )
        # bin-0 is pinned only via t=1; here t_0 = 1.0 exactly -> pinned!
        # Use a slightly smaller big bin so nothing is pinned.
        capacities = [900, 400, 300, 200, 200]
        raw = BalancedRendezvous(
            bins_from_capacities(capacities), copies=2, calibration_samples=0
        )
        target = raw.expected_shares()["bin-0"]
        counts = collections.Counter()
        for address in range(balls):
            counts.update(raw.place(address))
        assert counts["bin-0"] / (2 * balls) < target - 0.015

    def test_near_optimal_set_adaptivity(self):
        """The headline property: adding a device moves (in set terms)
        little more than the copies the device must receive."""
        bins = bins_from_capacities([800, 700, 600, 500, 400])
        before = BalancedRendezvous(bins, copies=2)
        after = BalancedRendezvous(bins + [BinSpec("bin-new", 600)], copies=2)
        moved_set = 0
        used = 0
        for address in range(6000):
            old = set(before.place(address))
            new = set(after.place(address))
            moved_set += len(old - new)
            used += 1 if "bin-new" in new else 0
        factor = moved_set / used
        assert factor < 1.6  # near the optimum of 1.0; RS sits ~1.4-2.7

    def test_removal_moves_only_victims_sets(self):
        bins = bins_from_capacities([600, 600, 600, 600, 600])
        before = BalancedRendezvous(bins, copies=2)
        after = BalancedRendezvous(bins[:4], copies=2)
        moved_set = 0
        used = 0
        for address in range(5000):
            old = set(before.place(address))
            new = set(after.place(address))
            moved_set += len(old - new)
            used += 1 if "bin-4" in old else 0
        # Calibration re-fitting adds some churn beyond the pure-rendezvous
        # optimum; it must stay a small multiple.
        assert moved_set / used < 2.0
