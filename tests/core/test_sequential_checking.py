"""SequentialChecking: epochs, exact zero movement, batch equivalence.

The method's whole value proposition is the *exact* guarantee: adding a
device generation appends epochs without touching any earlier one, so
every address below the old capacity limit keeps its placement bit for
bit.  The tests here assert that as set equality over full address
populations — no tolerance — plus the watermark table construction, the
overflow policies, and the scalar/vectorized/pure-Python equivalence the
rest of the zoo already pins.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro._compat import HAVE_NUMPY
from repro.capacity import max_balls
from repro.core import SequentialChecking
from repro.exceptions import CapacityExceededError, ConfigurationError
from repro.metrics import compare_scale_out, compare_strategies
from repro.types import BinSpec, bins_from_capacities

BINS = bins_from_capacities([400, 300, 200, 100])

capacity_vectors = st.lists(
    st.integers(min_value=20, max_value=900), min_size=3, max_size=8
)
address_lists = st.lists(
    st.integers(min_value=0, max_value=2**70), min_size=1, max_size=48
)


class TestEpochTable:
    def test_watermarks_follow_the_addition_history(self):
        strategy = SequentialChecking(BINS, copies=2)
        spans = [
            (epoch.prefix, epoch.start, epoch.stop)
            for epoch in strategy.epochs
        ]
        # Prefix 1 cannot hold two distinct copies; each later prefix's
        # stop is the Lemma 2.2 watermark of its first p capacities.
        assert spans == [(2, 0, 300), (3, 300, 450), (4, 450, 500)]
        assert strategy.capacity_limit == 500

    def test_epoch_weights_favour_the_new_device(self):
        strategy = SequentialChecking(BINS, copies=2)
        second = strategy.epochs[1]  # d2 (cap 200) just arrived
        weights = dict(zip(("bin-0", "bin-1", "bin-2"), second.weights))
        assert weights["bin-2"] == max(weights.values())

    def test_generations_group_the_history(self):
        grouped = SequentialChecking(BINS, copies=2, generations=[2, 2])
        assert [epoch.prefix for epoch in grouped.epochs] == [2, 4]
        assert grouped.capacity_limit == 500

    def test_generations_must_sum_to_the_fleet(self):
        with pytest.raises(ConfigurationError, match="sum to"):
            SequentialChecking(BINS, copies=2, generations=[2, 3])
        with pytest.raises(ConfigurationError, match="positive"):
            SequentialChecking(BINS, copies=2, generations=[0, 4])

    def test_too_small_fleet_is_rejected(self):
        with pytest.raises(ConfigurationError, match="distinct copies"):
            SequentialChecking(bins_from_capacities([5, 5]), copies=3)

    def test_target_shares_sum_to_one(self):
        shares = SequentialChecking(BINS, copies=2).target_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-12
        assert set(shares) == {spec.bin_id for spec in BINS}


class TestPlacementContract:
    def test_k_distinct_devices_within_the_owning_prefix(self):
        strategy = SequentialChecking(BINS, copies=2)
        for epoch in strategy.epochs:
            for address in (epoch.start, epoch.stop - 1):
                placement = strategy.place(address)
                assert len(placement) == 2
                assert len(set(placement)) == 2
                owners = {spec.bin_id for spec in BINS[: epoch.prefix]}
                assert set(placement) <= owners

    def test_wrap_folds_overflow_addresses_back(self):
        strategy = SequentialChecking(BINS, copies=2)
        limit = strategy.capacity_limit
        # Folding shares the epoch, not the draw: the full address still
        # salts the hash, so wrapped placements need not repeat.
        epoch_of = lambda a: strategy._epoch_for(a).prefix
        assert epoch_of(limit + 10) == epoch_of(10)

    def test_error_overflow_raises_scalar_and_batch(self):
        strategy = SequentialChecking(BINS, copies=2, overflow="error")
        limit = strategy.capacity_limit
        assert strategy.place(limit - 1)
        with pytest.raises(CapacityExceededError, match=str(limit)):
            strategy.place(limit)
        with pytest.raises(CapacityExceededError):
            strategy.place_many([0, 1, limit + 3])


class TestZeroMovement:
    def test_adding_a_device_moves_exactly_nothing(self):
        before = SequentialChecking(BINS, copies=2)
        after = SequentialChecking(
            list(BINS) + [BinSpec("bin-4", 250)], copies=2
        )
        population = range(before.capacity_limit)
        report = compare_strategies(before, after, population, ["bin-4"])
        assert report.moved_positional == 0
        assert report.moved_set == 0

    def test_registry_path_preserves_the_guarantee(self):
        before_bins = bins_from_capacities([400, 300, 200])
        after_bins = before_bins + [BinSpec("bin-3", 100), BinSpec("bin-4", 250)]
        report = compare_scale_out(
            "sequential-checking", before_bins, after_bins, range(400)
        )
        assert report.moved_set == 0

    @given(capacities=capacity_vectors, extra=st.integers(50, 900))
    @settings(max_examples=25, deadline=None)
    def test_zero_movement_holds_for_any_history(self, capacities, extra):
        bins = bins_from_capacities(capacities)
        before = SequentialChecking(bins, copies=2)
        after = SequentialChecking(
            list(bins) + [BinSpec("late", extra)], copies=2
        )
        population = range(min(before.capacity_limit, 400))
        assert compare_strategies(
            before, after, population, ["late"]
        ).moved_set == 0

    def test_epochs_are_append_only_under_scale_out(self):
        before = SequentialChecking(BINS, copies=2)
        after = SequentialChecking(
            list(BINS) + [BinSpec("bin-4", 250)], copies=2
        )
        assert after.epochs[: len(before.epochs)] == before.epochs


class TestBatchEquivalence:
    @given(capacities=capacity_vectors, addresses=address_lists)
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar(self, capacities, addresses):
        strategy = SequentialChecking(
            bins_from_capacities(capacities), copies=2
        )
        batch = strategy.place_many(addresses)
        assert batch.tuples() == [strategy.place(a) for a in addresses]

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both legs")
    def test_pure_python_leg_is_bit_identical(self, monkeypatch):
        strategy = SequentialChecking(BINS, copies=3)
        addresses = list(range(0, 700, 7))
        vectorized = strategy.place_many(addresses).tuples()
        monkeypatch.setattr(compat, "np", None)
        fallback = strategy.place_many(addresses).tuples()
        assert fallback == vectorized

    def test_batch_covers_every_epoch(self):
        strategy = SequentialChecking(BINS, copies=2)
        addresses = list(range(strategy.capacity_limit))
        rows = strategy.place_many(addresses).tuples()
        assert len(rows) == len(addresses)
        # Last-epoch addresses may land on the newest device.
        tail = {bin_id for row in rows[450:] for bin_id in row}
        assert "bin-3" in tail


def test_capacity_limit_matches_lemma_2_2():
    strategy = SequentialChecking(BINS, copies=2)
    descending = sorted((spec.capacity for spec in BINS), reverse=True)
    assert strategy.capacity_limit == max_balls(descending, 2)
