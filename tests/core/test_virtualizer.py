"""Tests for the byte-addressable VirtualVolume."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import RedundantShare, VirtualVolume
from repro.types import bins_from_capacities


def make_volume(block_size=64):
    cluster = Cluster(
        bins_from_capacities([4000, 3000, 2000, 1000]),
        lambda bins: RedundantShare(bins, copies=2),
    )
    return VirtualVolume(cluster, block_size=block_size)


class TestBasics:
    def test_block_size_validated(self):
        cluster = make_volume().cluster
        with pytest.raises(ValueError):
            VirtualVolume(cluster, block_size=0)

    def test_unwritten_reads_zero(self):
        volume = make_volume()
        assert volume.read(0, 16) == bytes(16)
        assert volume.read(1000, 3) == bytes(3)

    def test_empty_ops(self):
        volume = make_volume()
        assert volume.read(0, 0) == b""
        volume.write(0, b"")  # no-op

    def test_negative_rejected(self):
        volume = make_volume()
        with pytest.raises(ValueError):
            volume.read(-1, 1)
        with pytest.raises(ValueError):
            volume.read(0, -1)
        with pytest.raises(ValueError):
            volume.write(-1, b"x")


class TestReadWrite:
    def test_aligned_round_trip(self):
        volume = make_volume(block_size=32)
        payload = bytes(range(64))
        volume.write(0, payload)
        assert volume.read(0, 64) == payload

    def test_unaligned_write_spanning_blocks(self):
        volume = make_volume(block_size=16)
        volume.write(10, b"A" * 20)  # spans blocks 0, 1
        assert volume.read(10, 20) == b"A" * 20
        assert volume.read(0, 10) == bytes(10)  # untouched prefix
        assert volume.read(30, 4) == bytes(4)  # untouched suffix

    def test_overwrite_middle(self):
        volume = make_volume(block_size=16)
        volume.write(0, b"x" * 48)
        volume.write(20, b"YY")
        data = volume.read(0, 48)
        assert data[:20] == b"x" * 20
        assert data[20:22] == b"YY"
        assert data[22:] == b"x" * 26

    def test_truncate_block(self):
        volume = make_volume(block_size=8)
        volume.write(0, b"z" * 8)
        volume.truncate_block(0)
        volume.truncate_block(0)  # idempotent
        assert volume.read(0, 8) == bytes(8)

    def test_written_bytes(self):
        volume = make_volume(block_size=8)
        volume.write(0, b"abc")
        assert volume.written_bytes() == 8

    def test_survives_device_failure(self):
        volume = make_volume(block_size=32)
        volume.write(5, b"critical-data" * 3)
        volume.cluster.fail_device("bin-0")
        assert volume.read(5, 39) == b"critical-data" * 3

    @given(
        st.integers(min_value=0, max_value=300),
        st.binary(min_size=1, max_size=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip(self, offset, data):
        volume = make_volume(block_size=32)
        volume.write(offset, data)
        assert volume.read(offset, len(data)) == data
