"""Tests for hierarchical placement and the object store."""

import collections

import pytest

from repro.cluster import Cluster
from repro.core import (
    HierarchicalRedundantShare,
    ObjectNotFoundError,
    ObjectStore,
    RedundantShare,
    VirtualVolume,
)
from repro.exceptions import ConfigurationError
from repro.placement import ChooseleafCrush
from repro.types import bins_from_capacities


def make_racks():
    return {
        "rack-a": bins_from_capacities([800, 600], prefix="a"),
        "rack-b": bins_from_capacities([700, 700], prefix="b"),
        "rack-c": bins_from_capacities([500, 400, 300], prefix="c"),
    }


class TestHierarchicalRedundantShare:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HierarchicalRedundantShare(
                {"only": bins_from_capacities([5, 5])}, copies=2
            )
        with pytest.raises(ConfigurationError):
            HierarchicalRedundantShare(
                {"a": [], "b": bins_from_capacities([5])}, copies=2
            )

    def test_copies_land_in_distinct_racks(self):
        strategy = HierarchicalRedundantShare(make_racks(), copies=2)
        for address in range(3000):
            placement = strategy.place(address)
            racks = {strategy.rack_of(device) for device in placement}
            assert len(racks) == 2
            assert len(set(placement)) == 2

    def test_rack_failure_loses_at_most_one_copy(self):
        strategy = HierarchicalRedundantShare(make_racks(), copies=3)
        rack_a_devices = {spec.bin_id for spec in make_racks()["rack-a"]}
        for address in range(1500):
            placement = strategy.place(address)
            assert sum(1 for d in placement if d in rack_a_devices) <= 1

    def test_deterministic(self):
        strategy = HierarchicalRedundantShare(make_racks(), copies=2)
        assert strategy.place(9) == strategy.place(9)

    def test_device_fairness(self):
        strategy = HierarchicalRedundantShare(make_racks(), copies=2)
        expected = strategy.expected_shares()
        assert sum(expected.values()) == pytest.approx(1.0)
        counts = collections.Counter()
        balls = 40_000
        for address in range(balls):
            counts.update(strategy.place(address))
        for device, share in expected.items():
            assert counts[device] / (2 * balls) == pytest.approx(
                share, abs=0.012
            ), device

    def test_composed_shares_match_flat_targets_when_unclipped(self):
        # Balanced racks: hierarchical shares equal flat k*b_d/B scaled
        # to sum 1, i.e. b_d / B.
        racks = {
            "r1": bins_from_capacities([600, 400], prefix="r1"),
            "r2": bins_from_capacities([500, 500], prefix="r2"),
            "r3": bins_from_capacities([700, 300], prefix="r3"),
        }
        strategy = HierarchicalRedundantShare(racks, copies=2)
        total = 3000
        for device, share in strategy.expected_shares().items():
            capacity = next(
                spec.capacity
                for devices in racks.values()
                for spec in devices
                if spec.bin_id == device
            )
            assert share == pytest.approx(capacity / total, abs=1e-9)


class TestChooseleafCrush:
    def test_distinct_racks(self):
        strategy = ChooseleafCrush(make_racks(), copies=3)
        for address in range(2000):
            placement = strategy.place(address)
            racks = {strategy.rack_of(device) for device in placement}
            assert len(racks) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChooseleafCrush({"only": bins_from_capacities([5, 5])}, copies=2)
        with pytest.raises(ConfigurationError):
            ChooseleafCrush({"a": [], "b": bins_from_capacities([5])}, copies=2)

    def test_deterministic(self):
        strategy = ChooseleafCrush(make_racks(), copies=2)
        assert strategy.place(4) == strategy.place(4)


class TestObjectStore:
    def make_store(self, block_size=64):
        cluster = Cluster(
            bins_from_capacities([4000, 3000, 2000]),
            lambda bins: RedundantShare(bins, copies=2),
        )
        return ObjectStore(VirtualVolume(cluster, block_size=block_size))

    def test_put_get_round_trip(self):
        store = self.make_store()
        payload = bytes(range(256)) * 3
        store.put("docs/readme", payload)
        assert store.get("docs/readme") == payload
        assert store.size("docs/readme") == len(payload)
        assert store.exists("docs/readme")

    def test_get_unknown_raises(self):
        with pytest.raises(ObjectNotFoundError):
            self.make_store().get("ghost")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            self.make_store().put("", b"x")

    def test_replace_object(self):
        store = self.make_store()
        store.put("key", b"old-value")
        store.put("key", b"new" * 100)
        assert store.get("key") == b"new" * 100
        assert store.list_objects() == ["key"]

    def test_delete(self):
        store = self.make_store()
        store.put("a", b"1")
        store.delete("a")
        assert not store.exists("a")
        with pytest.raises(ObjectNotFoundError):
            store.delete("a")

    def test_empty_object(self):
        store = self.make_store()
        store.put("empty", b"")
        assert store.get("empty") == b""

    def test_many_objects_independent(self):
        store = self.make_store(block_size=32)
        blobs = {f"obj-{i}": bytes([i]) * (10 + i * 7) for i in range(40)}
        for name, blob in blobs.items():
            store.put(name, blob)
        store.delete("obj-7")
        del blobs["obj-7"]
        for name, blob in blobs.items():
            assert store.get(name) == blob
        assert store.list_objects() == sorted(blobs)

    def test_survives_device_failure(self):
        store = self.make_store()
        store.put("precious", b"do-not-lose" * 10)
        store.volume.cluster.fail_device("bin-0")
        assert store.get("precious") == b"do-not-lose" * 10

    def test_manifest(self):
        store = self.make_store()
        store.put("a", b"xyz")
        manifest = store.manifest()
        assert manifest["a"].size == 3
