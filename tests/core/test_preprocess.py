"""Tests for the hazard-table solver (the mathematical core of the paper)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity import clip_capacities
from repro.core.preprocess import compute_hazards, natural_hazard
from repro.exceptions import ConfigurationError


def clipped(vector, k):
    return clip_capacities(sorted(vector, reverse=True), k)


CAPACITIES = st.lists(
    st.integers(min_value=1, max_value=5000), min_size=2, max_size=14
).map(lambda values: sorted(values, reverse=True))


class TestValidation:
    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            compute_hazards([1.0, 2.0], 2)

    def test_rejects_too_few_bins(self):
        with pytest.raises(ConfigurationError):
            compute_hazards([5.0], 2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            compute_hazards([2.0, 0.0], 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            compute_hazards([2.0, 1.0], 0)

    def test_rejects_unclipped_oversized_bin(self):
        with pytest.raises(ConfigurationError):
            compute_hazards([100.0, 1.0, 1.0], 2)


class TestKnownInstances:
    def test_paper_boundary_example(self):
        # [4, 4, 3], k=2: the boundary sits at rank 1; the exact secondary
        # hazard there is 5/8 (the paper's b̃ = 5 boost over natural 4).
        table = compute_hazards([4.0, 4.0, 3.0], 2)
        assert table.hazards[0][0] == pytest.approx(8 / 11)
        assert table.hazards[0][1] == pytest.approx(1.0)
        assert table.hazards[1][1] == pytest.approx(5 / 8)
        assert table.hazards[1][2] == pytest.approx(1.0)

    def test_marginal_sums_match_targets(self):
        table = compute_hazards([5.0, 4.0, 4.0, 2.0], 2)
        for i in range(4):
            total = sum(table.marginals[c][i] for c in range(2))
            assert total == pytest.approx(table.targets[i])

    def test_figure1_capacities(self):
        # [2, 1, 1], k=2: the big bin must be hit by EVERY ball (č_0 = 1) —
        # the property the trivial strategy misses.
        table = compute_hazards([2.0, 1.0, 1.0], 2)
        assert table.hazards[0][0] == pytest.approx(1.0)
        assert table.marginals[0][0] == pytest.approx(1.0)
        assert table.marginals[1][1] == pytest.approx(0.5)
        assert table.marginals[1][2] == pytest.approx(0.5)

    def test_n_equals_k_all_deterministic(self):
        table = compute_hazards([3.0, 3.0, 3.0], 3)
        for c in range(3):
            assert table.marginals[c][c] == pytest.approx(1.0)

    def test_k1_is_proportional(self):
        table = compute_hazards([6.0, 3.0, 1.0], 1)
        assert table.marginals[0] == pytest.approx([0.6, 0.3, 0.1])


class TestNaturalHazard:
    def test_matches_paper_formula(self):
        assert natural_hazard(2, 4.0, 11.0) == pytest.approx(8 / 11)

    def test_caps_at_one(self):
        assert natural_hazard(3, 5.0, 6.0) == 1.0


class TestInvariants:
    @given(CAPACITIES, st.integers(min_value=1, max_value=5))
    @settings(max_examples=300, deadline=None)
    def test_fairness_and_conservation(self, capacities, k):
        """For any clipped vector: marginals hit targets, copies place w.p. 1,
        hazards stay in [0, 1]."""
        if len(capacities) < k:
            return
        table = compute_hazards(clipped(capacities, k), k)
        n = table.bin_count
        for i in range(n):
            total = sum(table.marginals[c][i] for c in range(k))
            assert total == pytest.approx(table.targets[i], abs=1e-7)
        for c in range(k):
            assert sum(table.marginals[c]) == pytest.approx(1.0, abs=1e-7)
            for i in range(n):
                assert -1e-12 <= table.hazards[c][i] <= 1.0 + 1e-12

    @given(CAPACITIES, st.integers(min_value=2, max_value=4))
    @settings(max_examples=150, deadline=None)
    def test_termination_deadlines(self, capacities, k):
        """Copy c is always placed early enough for the remaining copies."""
        if len(capacities) < k:
            return
        table = compute_hazards(clipped(capacities, k), k)
        n = table.bin_count
        for c in range(k):
            deadline = n - k + c
            placed_by_deadline = sum(table.marginals[c][: deadline + 1])
            assert placed_by_deadline == pytest.approx(1.0, abs=1e-7)

    @given(CAPACITIES)
    @settings(max_examples=150, deadline=None)
    def test_primary_hazards_match_the_papers_formula(self, capacities):
        """Level-1 hazards are exactly min(1, k*b_i/B_i) wherever reachable
        and un-corrected — i.e. up to the first saturation."""
        k = 2
        if len(capacities) < k:
            return
        vector = clipped(capacities, k)
        table = compute_hazards(vector, k)
        suffix = sum(vector)
        for i, capacity in enumerate(vector):
            natural = min(1.0, k * capacity / suffix)
            assert table.hazards[0][i] == pytest.approx(natural, abs=1e-9)
            if natural >= 1.0:
                break
            suffix -= capacity


class TestConditionalDistribution:
    def test_rows_are_distributions(self):
        table = compute_hazards([5.0, 4.0, 3.0, 2.0, 1.0], 3)
        for previous in range(-1, 2):
            row = table.conditional_distribution(1 if previous < 0 else 2, previous)
            assert sum(row) == pytest.approx(1.0, abs=1e-9)
            assert all(value >= 0 for value in row)

    def test_support_is_after_previous(self):
        table = compute_hazards([5.0, 4.0, 3.0, 2.0], 2)
        row = table.conditional_distribution(2, 1)
        assert row[0] == 0.0
        assert row[1] == 0.0

    def test_out_of_range_raises(self):
        table = compute_hazards([1.0, 1.0], 2)
        with pytest.raises(IndexError):
            table.conditional_distribution(3, 0)
        with pytest.raises(IndexError):
            table.conditional_distribution(1, 5)

    def test_chain_reproduces_marginals(self):
        """Sum over previous ranks of P(prev) * P(next | prev) = marginal."""
        table = compute_hazards([6.0, 5.0, 4.0, 3.0, 2.0], 2)
        n = table.bin_count
        reconstructed = [0.0] * n
        for previous in range(n):
            weight = table.marginals[0][previous]
            if weight == 0.0:
                continue
            row = table.conditional_distribution(2, previous)
            for i in range(n):
                reconstructed[i] += weight * row[i]
        for i in range(n):
            assert reconstructed[i] == pytest.approx(table.marginals[1][i], abs=1e-9)


class TestChainReconstructionAllK:
    @given(CAPACITIES, st.integers(min_value=2, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_chain_reproduces_marginals_any_k(self, capacities, k):
        """Propagating conditional chains from copy 1 reproduces every
        deeper copy's marginal — the identity the O(k) variant relies on."""
        if len(capacities) < k:
            return
        table = compute_hazards(clipped(capacities, k), k)
        n = table.bin_count
        previous = list(table.marginals[0])
        for copy in range(2, k + 1):
            reconstructed = [0.0] * n
            for prev_rank in range(n):
                weight = previous[prev_rank]
                if weight <= 0.0:
                    continue
                row = table.conditional_distribution(copy, prev_rank)
                for rank in range(n):
                    if row[rank]:
                        reconstructed[rank] += weight * row[rank]
            for rank in range(n):
                assert reconstructed[rank] == pytest.approx(
                    table.marginals[copy - 1][rank], abs=1e-7
                )
            previous = reconstructed
