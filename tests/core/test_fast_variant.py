"""Tests for the O(k) precomputed variant (Section 3.3)."""

import collections

import pytest

from repro.core import FastRedundantShare, RedundantShare
from repro.types import BinSpec, bins_from_capacities


def empirical_shares(strategy, balls):
    counts = collections.Counter()
    for address in range(balls):
        for bin_id in strategy.place(address):
            counts[bin_id] += 1
    total = sum(counts.values())
    return {bin_id: count / total for bin_id, count in counts.items()}


class TestBasics:
    def test_deterministic(self):
        strategy = FastRedundantShare(bins_from_capacities([5, 4, 3, 2]), copies=2)
        assert strategy.place(99) == strategy.place(99)

    def test_redundancy(self):
        strategy = FastRedundantShare(
            bins_from_capacities([9, 7, 5, 3, 1]), copies=3
        )
        for address in range(2000):
            placement = strategy.place(address)
            assert len(set(placement)) == 3

    def test_copy_ranks_increase(self):
        strategy = FastRedundantShare(
            bins_from_capacities([9, 7, 5, 3, 1]), copies=3
        )
        ranks = {
            spec.bin_id: i
            for i, spec in enumerate(strategy.scan_equivalent.ordered_bins)
        }
        for address in range(500):
            positions = [ranks[b] for b in strategy.place(address)]
            assert positions == sorted(positions)

    def test_expected_shares_match_scan(self):
        bins = bins_from_capacities([8, 6, 4, 2])
        fast = FastRedundantShare(bins, copies=2)
        scan = RedundantShare(bins, copies=2)
        assert fast.expected_shares() == scan.expected_shares()

    def test_eager_precomputes_states(self):
        lazy = FastRedundantShare(bins_from_capacities([5, 4, 3, 2]), copies=2)
        eager = FastRedundantShare(
            bins_from_capacities([5, 4, 3, 2]), copies=2, eager=True
        )
        assert lazy.state_count() == 0
        assert eager.state_count() > 0


class TestDistributionEquivalence:
    BALLS = 40_000

    def test_fairness_matches_targets(self):
        capacities = [500, 600, 700, 800, 900, 1000, 1100, 1200]
        strategy = FastRedundantShare(bins_from_capacities(capacities), copies=2)
        expected = strategy.expected_shares()
        observed = empirical_shares(strategy, self.BALLS)
        for bin_id, share in expected.items():
            assert observed.get(bin_id, 0.0) == pytest.approx(share, abs=0.012)

    def test_fairness_k4(self):
        capacities = [900, 800, 700, 600, 500, 400]
        strategy = FastRedundantShare(bins_from_capacities(capacities), copies=4)
        expected = strategy.expected_shares()
        observed = empirical_shares(strategy, self.BALLS // 2)
        for bin_id, share in expected.items():
            assert observed.get(bin_id, 0.0) == pytest.approx(share, abs=0.015)

    def test_joint_distribution_matches_scan_variant(self):
        """Pair frequencies of (primary, secondary) agree between variants."""
        bins = bins_from_capacities([5, 4, 3, 2])
        fast = FastRedundantShare(bins, copies=2, namespace="f")
        scan = RedundantShare(bins, copies=2, namespace="s")
        balls = 30_000
        fast_pairs = collections.Counter(fast.place(a) for a in range(balls))
        scan_pairs = collections.Counter(scan.place(a) for a in range(balls))
        pairs = set(fast_pairs) | set(scan_pairs)
        for pair in pairs:
            assert fast_pairs[pair] / balls == pytest.approx(
                scan_pairs[pair] / balls, abs=0.012
            )


class TestAdaptivity:
    def _movement(self, selector):
        before = FastRedundantShare(
            bins_from_capacities([1000] * 8), copies=2, state_selector=selector
        )
        grown = bins_from_capacities([1000] * 8) + [BinSpec("bin-new", 1000)]
        after = FastRedundantShare(grown, copies=2, state_selector=selector)
        balls = 5000
        return (
            sum(1 for a in range(balls) if before.place(a) != after.place(a))
            / balls
        )

    def test_rendezvous_selector_limits_movement(self):
        """The adaptive backend keeps reconfiguration movement modest."""
        assert self._movement("rendezvous") < 0.55

    def test_cdf_selector_cascades_more(self):
        """Documented trade-off: inverse-CDF boundary shifts cascade, so the
        fast-but-less-adaptive backend moves strictly more data."""
        assert self._movement("cdf") > self._movement("rendezvous")

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValueError):
            FastRedundantShare(
                bins_from_capacities([2, 2]), copies=2, state_selector="bogus"
            )

    def test_rendezvous_selector_is_fair(self):
        capacities = [500, 800, 1100]
        strategy = FastRedundantShare(
            bins_from_capacities(capacities),
            copies=2,
            state_selector="rendezvous",
        )
        observed = empirical_shares(strategy, 30_000)
        for bin_id, share in strategy.expected_shares().items():
            assert observed.get(bin_id, 0.0) == pytest.approx(share, abs=0.012)
