"""Behavioural tests for RedundantShare / LinMirror (Algorithms 2 and 4)."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinMirror, RedundantShare
from repro.exceptions import ConfigurationError, InfeasibleReplicationError
from repro.types import BinSpec, bins_from_capacities


def empirical_shares(strategy, balls):
    counts = collections.Counter()
    for address in range(balls):
        for bin_id in strategy.place(address):
            counts[bin_id] += 1
    total = sum(counts.values())
    return {bin_id: count / total for bin_id, count in counts.items()}


class TestConstruction:
    def test_rejects_more_copies_than_bins(self):
        with pytest.raises(ConfigurationError):
            RedundantShare(bins_from_capacities([5, 5]), copies=3)

    def test_rejects_zero_copies(self):
        with pytest.raises(ConfigurationError):
            RedundantShare(bins_from_capacities([5, 5]), copies=0)

    def test_unclipped_infeasible_raises(self):
        with pytest.raises(InfeasibleReplicationError):
            RedundantShare(
                bins_from_capacities([100, 1, 1]), copies=2, clip=False
            )

    def test_clipping_enabled_by_default(self):
        strategy = RedundantShare(bins_from_capacities([100, 1, 1]), copies=2)
        effective = strategy.effective_capacities()
        assert effective["bin-0"] == pytest.approx(2.0)

    def test_ordered_bins_descending(self):
        strategy = RedundantShare(bins_from_capacities([3, 9, 6]), copies=2)
        capacities = [spec.capacity for spec in strategy.ordered_bins]
        assert capacities == [9, 6, 3]


class TestPlacementBasics:
    def test_deterministic(self):
        strategy = RedundantShare(bins_from_capacities([5, 4, 3, 2]), copies=2)
        assert strategy.place(123) == strategy.place(123)

    def test_redundancy_all_distinct(self):
        strategy = RedundantShare(bins_from_capacities([9, 7, 5, 3, 1]), copies=3)
        for address in range(2000):
            placement = strategy.place(address)
            assert len(placement) == 3
            assert len(set(placement)) == 3

    def test_copies_land_in_descending_rank_order(self):
        # The scan guarantees copy i+1 sits on a strictly later rank.
        strategy = RedundantShare(bins_from_capacities([9, 7, 5, 3, 1]), copies=3)
        ranks = {spec.bin_id: i for i, spec in enumerate(strategy.ordered_bins)}
        for address in range(500):
            placement = strategy.place(address)
            positions = [ranks[bin_id] for bin_id in placement]
            assert positions == sorted(positions)
            assert len(set(positions)) == len(positions)

    def test_place_copy_matches_place(self):
        strategy = RedundantShare(bins_from_capacities([8, 6, 4, 2]), copies=3)
        for address in range(300):
            placement = strategy.place(address)
            for position in range(3):
                assert strategy.place_copy(address, position) == placement[position]

    def test_place_copy_rejects_bad_position(self):
        strategy = RedundantShare(bins_from_capacities([2, 2]), copies=2)
        with pytest.raises(IndexError):
            strategy.place_copy(1, 2)

    def test_primary_accessor(self):
        strategy = RedundantShare(bins_from_capacities([4, 3, 2]), copies=2)
        assert strategy.primary(7) == strategy.place(7)[0]

    def test_n_equals_k_uses_all_bins(self):
        strategy = RedundantShare(bins_from_capacities([5, 4, 3]), copies=3)
        assert set(strategy.place(0)) == {"bin-0", "bin-1", "bin-2"}

    def test_k1_single_copy(self):
        strategy = RedundantShare(bins_from_capacities([6, 3, 1]), copies=1)
        placement = strategy.place(0)
        assert len(placement) == 1


class TestWalkCache:
    """``place_copy`` reuses one shared walk per address (regression)."""

    def strategy(self):
        return RedundantShare(
            bins_from_capacities([9, 7, 5, 3, 2, 1]), copies=3
        )

    def test_primary_and_secondary_match_place(self):
        strategy = self.strategy()
        for address in range(500):
            placement = strategy.place(address)
            assert strategy.primary(address) == placement[0]
            assert strategy.place_copy(address, 1) == placement[1]
        mirror = LinMirror(bins_from_capacities([9, 7, 5, 3, 2, 1]))
        for address in range(500):
            placement = mirror.place(address)
            assert mirror.primary(address) == placement[0]
            assert mirror.secondary(address) == placement[1]

    def test_accessors_before_place_agree(self):
        # Query the cache-backed accessors first, then the full scan: a
        # stale or mis-keyed cache entry would surface as a mismatch.
        cold = self.strategy()
        primaries = [cold.place_copy(address, 0) for address in range(300)]
        seconds = [cold.place_copy(address, 1) for address in range(300)]
        for address in range(300):
            placement = cold.place(address)
            assert primaries[address] == placement[0]
            assert seconds[address] == placement[1]

    def test_one_walk_serves_all_positions(self):
        strategy = self.strategy()
        walks = []
        original = strategy._walk_ranks

        def counting_walk(address, copies):
            walks.append(address)
            return original(address, copies)

        strategy._walk_ranks = counting_walk
        for position in range(3):
            strategy.place_copy(77, position)
        assert walks == [77]

    def test_cache_stays_bounded(self):
        from repro.core import redundant_share

        strategy = self.strategy()
        for address in range(redundant_share._WALK_CACHE_SIZE + 200):
            strategy.place_copy(address, 0)
        assert len(strategy._walk_cache) <= redundant_share._WALK_CACHE_SIZE
        # Evicted entries are recomputed correctly on the next query.
        assert strategy.place_copy(0, 0) == strategy.place(0)[0]


class TestFairness:
    BALLS = 40_000

    def check(self, capacities, copies, tolerance=0.012):
        strategy = RedundantShare(bins_from_capacities(capacities), copies=copies)
        expected = strategy.expected_shares()
        observed = empirical_shares(strategy, self.BALLS)
        for bin_id, share in expected.items():
            assert observed.get(bin_id, 0.0) == pytest.approx(share, abs=tolerance)

    def test_heterogeneous_k2(self):
        self.check([500, 600, 700, 800, 900, 1000, 1100, 1200], copies=2)

    def test_heterogeneous_k4(self):
        self.check([500, 600, 700, 800, 900, 1000, 1100, 1200], copies=4)

    def test_homogeneous_k2(self):
        self.check([1000] * 8, copies=2)

    def test_boundary_vector(self):
        # [4, 4, 3] exercises the b̃ inhomogeneity correction.
        self.check([4, 4, 3], copies=2)

    def test_clipped_oversized_bin(self):
        # Raw [100, 6, 1] clips to [7, 6, 1]: shares 1/2, 3/7, 1/14.
        strategy = RedundantShare(bins_from_capacities([100, 6, 1]), copies=2)
        observed = empirical_shares(strategy, self.BALLS)
        assert observed["bin-0"] == pytest.approx(0.5, abs=0.012)
        assert observed["bin-1"] == pytest.approx(6 / 14, abs=0.012)
        assert observed["bin-2"] == pytest.approx(1 / 14, abs=0.012)

    def test_per_copy_marginals_match_table(self):
        strategy = RedundantShare(
            bins_from_capacities([5, 4, 3, 2, 1]), copies=2
        )
        counts = [collections.Counter() for _ in range(2)]
        balls = 30_000
        for address in range(balls):
            for position, bin_id in enumerate(strategy.place(address)):
                counts[position][bin_id] += 1
        ranks = [spec.bin_id for spec in strategy.ordered_bins]
        for copy in range(2):
            for rank, bin_id in enumerate(ranks):
                expected = strategy.table.marginals[copy][rank]
                assert counts[copy][bin_id] / balls == pytest.approx(
                    expected, abs=0.012
                )


class TestAdaptivityKeying:
    def test_disjoint_configs_mostly_agree(self):
        """Adding one bin leaves the vast majority of placements intact."""
        before = RedundantShare(bins_from_capacities([1000] * 8), copies=2)
        grown_bins = bins_from_capacities([1000] * 8) + [BinSpec("bin-new", 1000)]
        after = RedundantShare(grown_bins, copies=2)
        balls = 5000
        moved = sum(
            1
            for address in range(balls)
            if before.place(address) != after.place(address)
        )
        # The new bin should receive ~2/9 of copies; the number of balls
        # with any change should be well below half.
        assert moved / balls < 0.5

    def test_namespace_isolates(self):
        bins = bins_from_capacities([5, 4, 3, 2])
        first = RedundantShare(bins, copies=2, namespace="a")
        second = RedundantShare(bins, copies=2, namespace="b")
        differing = sum(
            1 for address in range(500) if first.place(address) != second.place(address)
        )
        assert differing > 100  # placements are decorrelated


class TestLinMirror:
    def test_is_k2(self):
        mirror = LinMirror(bins_from_capacities([5, 4, 3]))
        assert mirror.copies == 2

    def test_secondary_accessor(self):
        mirror = LinMirror(bins_from_capacities([5, 4, 3]))
        assert mirror.secondary(9) == mirror.place(9)[1]

    def test_matches_redundant_share_k2(self):
        bins = bins_from_capacities([5, 4, 3, 2])
        mirror = LinMirror(bins, namespace="same")
        general = RedundantShare(bins, copies=2, namespace="same")
        for address in range(500):
            assert mirror.place(address) == general.place(address)


@given(
    st.lists(st.integers(min_value=1, max_value=2000), min_size=3, max_size=10),
    st.integers(min_value=2, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_property_redundancy_never_violated(capacities, copies):
    if len(capacities) < copies:
        return
    strategy = RedundantShare(bins_from_capacities(capacities), copies=copies)
    for address in range(200):
        placement = strategy.place(address)
        assert len(set(placement)) == copies
