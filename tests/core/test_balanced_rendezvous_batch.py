"""BalancedRendezvous batch engine: NumPy vs scalar vs pure-Python.

The top-k race engine built on the shared kernels must be bit-identical
to the scalar sort-based :meth:`place` for any configuration — including
pinned (saturated) bins, all-pinned maps where no race runs at all, and
exact score ties (which the scalar sort breaks by bin id, so the tie
guard must defer them).  Also covers the epoch-keyed race bundle:
instances over the same calibrated configuration share the weight/base
vectors; a bumped epoch starts cold.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro._compat import HAVE_NUMPY
from repro.core.balanced_rendezvous import BalancedRendezvous
from repro.placement import precompute
from repro.types import bins_from_capacities

capacities_vectors = st.lists(
    st.integers(min_value=1, max_value=2_000), min_size=5, max_size=12
)
replication_degrees = st.integers(min_value=2, max_value=4)
namespaces = st.sampled_from(["", "ns-a", "tenant/7"])
address_lists = st.lists(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    min_size=0,
    max_size=64,
)

#: Small Monte-Carlo population keeps per-example calibration cheap while
#: still exercising the calibrated-weight path.
CALIBRATION = dict(calibration_samples=400, calibration_iterations=4)


def scalar_rows(strategy, addresses):
    return [strategy.place(address) for address in addresses]


class TestBatchEquivalence:
    @given(
        capacities=capacities_vectors,
        copies=replication_degrees,
        namespace=namespaces,
        addresses=address_lists,
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar(
        self, capacities, copies, namespace, addresses
    ):
        strategy = BalancedRendezvous(
            bins_from_capacities(capacities), copies=copies,
            namespace=namespace, **CALIBRATION,
        )
        batch = strategy.place_many(addresses)
        assert [tuple(row) for row in batch.tuples()] == scalar_rows(
            strategy, addresses
        )

    @given(
        capacities=capacities_vectors,
        copies=replication_degrees,
        addresses=address_lists,
    )
    @settings(max_examples=20, deadline=None)
    def test_numpy_leg_matches_pure_python_leg(
        self, capacities, copies, addresses
    ):
        bins = bins_from_capacities(capacities)

        def run_leg():
            precompute.clear_shared_cache()
            strategy = BalancedRendezvous(bins, copies=copies, **CALIBRATION)
            return [
                tuple(row)
                for row in strategy.place_many(addresses).tuples()
            ]

        numpy_rows = run_leg()
        saved = compat.np
        compat.np = None
        try:
            pure_rows = run_leg()
        finally:
            compat.np = saved
        assert numpy_rows == pure_rows

    def test_all_pinned_has_no_race(self):
        # Two equal bins at k = 2 saturate both: every placement is the
        # constant pinned tuple and the engine races nothing.
        strategy = BalancedRendezvous(bins_from_capacities([10, 10]), copies=2)
        assert strategy._race_copies == 0
        addresses = list(range(-5, 50))
        assert [tuple(row) for row in strategy.place_many(addresses)] == (
            scalar_rows(strategy, addresses)
        )

    def test_single_device_cluster(self):
        strategy = BalancedRendezvous(bins_from_capacities([7]), copies=1)
        addresses = [0, 1, -3, 2**63]
        assert [tuple(row) for row in strategy.place_many(addresses)] == (
            scalar_rows(strategy, addresses)
        )

    def test_copies_equal_device_count(self):
        strategy = BalancedRendezvous(
            bins_from_capacities([5, 4, 3, 2]), copies=4, **CALIBRATION
        )
        addresses = list(range(200))
        assert [tuple(row) for row in strategy.place_many(addresses)] == (
            scalar_rows(strategy, addresses)
        )

    def test_empty_batch(self):
        strategy = BalancedRendezvous(
            bins_from_capacities([5, 3, 2]), copies=2, **CALIBRATION
        )
        assert list(strategy.place_many([])) == []

    def test_uncalibrated_ablation_matches_scalar(self):
        strategy = BalancedRendezvous(
            bins_from_capacities([9, 5, 2, 1]), copies=2,
            calibration_samples=0,
        )
        addresses = list(range(500))
        assert [tuple(row) for row in strategy.place_many(addresses)] == (
            scalar_rows(strategy, addresses)
        )


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector engine needs NumPy")
def test_vector_engine_is_used_not_generic_loop(monkeypatch):
    strategy = BalancedRendezvous(
        bins_from_capacities([90, 70, 50, 30, 20]), copies=3, **CALIBRATION
    )
    calls = []
    original = BalancedRendezvous.place

    def counting_place(self, address):
        calls.append(address)
        return original(self, address)

    monkeypatch.setattr(BalancedRendezvous, "place", counting_place)
    count = 5_000
    strategy.place_many(range(count))
    assert len(calls) < count, (
        "place_many consulted the scalar loop for every address — the "
        "vectorized engine is not running"
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="bundle cache needs NumPy")
class TestRaceBundle:
    BINS = bins_from_capacities([120, 80, 200, 40, 160, 90])

    def build(self, **overrides):
        options = dict(copies=3, **CALIBRATION)
        options.update(overrides)
        return BalancedRendezvous(self.BINS, **options)

    def test_lazy_until_first_batch(self):
        strategy = self.build()
        assert strategy._vector is None
        strategy.place_many(range(32))
        assert strategy._vector is not None

    def test_same_epoch_instances_share_state(self):
        precompute.clear_shared_cache()
        first = self.build()
        first.place_many(range(64))
        before = precompute.shared_cache().info()
        second = self.build()
        second.place_many(range(64))
        after = precompute.shared_cache().info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        assert second._vector is first._vector

    def test_fingerprint_separates_configurations(self):
        precompute.clear_shared_cache()
        base = self.build()
        base.place_many(range(16))
        before = precompute.shared_cache().info()
        for other in (
            self.build(copies=2),
            self.build(namespace="other"),
            self.build(calibration_samples=500),
            BalancedRendezvous(
                bins_from_capacities([120, 80, 200, 40, 160, 91]),
                copies=3, **CALIBRATION,
            ),
        ):
            other.place_many(range(16))
            assert other._vector is not base._vector
        after = precompute.shared_cache().info()
        assert after["misses"] == before["misses"] + 4

    def test_bumped_epoch_starts_cold(self):
        precompute.clear_shared_cache()
        warm = self.build()
        warm.place_many(range(64))
        precompute.bump_epoch()
        cold = self.build()
        assert cold._epoch > warm._epoch
        cold.place_many(range(64))
        assert cold._vector is not warm._vector
        assert cold.place_many(range(64)).tuples() == warm.place_many(
            range(64)
        ).tuples()
