"""Tests for the trace player and its service model."""

import pytest

from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.exceptions import ConfigurationError
from repro.simulation import TracePlayer
from repro.types import bins_from_capacities
from repro.workloads import Op, Request, mixed, write_population, zipf_reads


def make_cluster(capacities=(4000, 3000, 2000, 1000)):
    return Cluster(
        bins_from_capacities(list(capacities)),
        lambda bins: RedundantShare(bins, copies=2),
    )


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(ConfigurationError):
            TracePlayer(make_cluster(), read_policy="no-such-policy")

    def test_offline_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            TracePlayer(make_cluster(), read_policy="water-filling")

    def test_bad_times(self):
        with pytest.raises(ValueError):
            TracePlayer(make_cluster(), service_time=0)
        with pytest.raises(ValueError):
            TracePlayer(make_cluster(), arrival_interval=-1)


class TestPlayback:
    def test_counts(self):
        player = TracePlayer(make_cluster())
        report = player.play(mixed(500, 100, read_fraction=0.6, seed=1))
        assert report.requests == 500
        assert report.reads + report.writes == 500
        assert report.duration == pytest.approx(500.0)

    def test_writes_hit_all_copies_reads_hit_one(self):
        cluster = make_cluster()
        player = TracePlayer(cluster)
        trace = [Request(Op.WRITE, 1, payload_seed=1), Request(Op.READ, 1)]
        report = player.play(trace)
        operations = sum(
            load.operations for load in report.device_loads.values()
        )
        assert operations == 3  # 2 write shares + 1 read

    def test_auto_write_on_unknown_read(self):
        cluster = make_cluster()
        player = TracePlayer(cluster)
        report = player.play([Request(Op.READ, 42)])
        assert cluster.block_count == 1
        assert report.reads == 1

    def test_operation_shares_track_capacity(self):
        """Fairness of requests, not just data (the paper's definition)."""
        cluster = make_cluster()
        player = TracePlayer(cluster)
        player.play(write_population(3000))
        report = player.play(mixed(6000, 3000, read_fraction=1.0, seed=2))
        shares = report.operation_shares()
        total = 10_000
        for spec in cluster.strategy.bins:
            expected = spec.capacity / total
            assert shares[spec.bin_id] == pytest.approx(expected, abs=0.05)

    def test_rotate_beats_primary_on_hot_blocks(self):
        """Read rotation spreads a zipf hotspot over the mirrors."""

        def max_utilisation(policy):
            cluster = make_cluster((2000, 2000, 2000, 2000))
            player = TracePlayer(cluster, read_policy=policy)
            player.play(write_population(500))
            report = player.play(zipf_reads(4000, 50, alpha=1.4, seed=3))
            shares = report.operation_shares()
            return max(shares.values())

        assert max_utilisation("rotate") < max_utilisation("primary")

    def test_failover_to_live_copy(self):
        cluster = make_cluster()
        player = TracePlayer(cluster, read_policy="primary")
        player.play([Request(Op.WRITE, 5, payload_seed=1)])
        primary = cluster.placement_of(5)[0]
        cluster.fail_device(primary)
        report = player.play([Request(Op.READ, 5)])
        assert report.device_loads[primary].operations <= 2  # only the write

    def test_utilisation_and_response(self):
        cluster = make_cluster()
        player = TracePlayer(cluster, service_time=0.5)
        report = player.play(write_population(200))
        utilisations = report.utilisations()
        assert all(0.0 <= value <= 1.1 for value in utilisations.values())
        busiest = max(
            report.device_loads.values(), key=lambda load: load.operations
        )
        assert busiest.mean_response >= 0.5
