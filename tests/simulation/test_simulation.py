"""Tests for scenarios, runners and the event engine."""

import pytest

from repro.core import RedundantShare
from repro.simulation import (
    Simulator,
    add_remove_cases,
    heterogeneous_bins,
    homogeneous_bins,
    paper_growth_steps,
    run_adaptivity,
    run_fairness,
    scaling_cases,
)


class TestScenarios:
    def test_paper_heterogeneous_capacities(self):
        bins = heterogeneous_bins(8)
        assert bins[0].capacity == 500_000
        assert bins[-1].capacity == 1_200_000
        assert len({spec.bin_id for spec in bins}) == 8

    def test_growth_steps_structure(self):
        steps = paper_growth_steps()
        assert [len(step.bins) for step in steps] == [8, 10, 12, 10, 8]
        # Growth extends the same disks (names preserved).
        first_ids = {spec.bin_id for spec in steps[0].bins}
        second_ids = {spec.bin_id for spec in steps[1].bins}
        assert first_ids < second_ids
        # Shrink removes the smallest disks.
        final_ids = {spec.bin_id for spec in steps[-1].bins}
        assert "disk-00" not in final_ids
        assert "disk-11" in final_ids

    def test_add_remove_cases_cover_grid(self):
        cases = add_remove_cases()
        labels = {case.label for case in cases}
        assert len(cases) == 8
        assert "het. add big" in labels
        assert "hom. rem. small" in labels
        for case in cases:
            delta = abs(len(case.before) - len(case.after))
            assert delta == 1

    def test_added_big_bin_sorts_first(self):
        cases = {case.label: case for case in add_remove_cases()}
        case = cases["hom. add big"]
        strategy = RedundantShare(list(case.after), copies=2)
        assert strategy.ordered_bins[0].bin_id == case.affected

    def test_added_small_bin_sorts_last(self):
        cases = {case.label: case for case in add_remove_cases()}
        case = cases["hom. add small"]
        strategy = RedundantShare(list(case.after), copies=2)
        assert strategy.ordered_bins[-1].bin_id == case.affected

    def test_scaling_cases(self):
        cases = scaling_cases([4, 8])
        assert len(cases) == 4
        assert cases[0].label == "n=4 add biggest"


class TestRunners:
    def test_fairness_runner_is_flat_for_redundant_share(self):
        steps = paper_growth_steps(base=500, step=100)
        results = run_fairness(
            steps,
            lambda bins: RedundantShare(bins, copies=2),
            balls=2000,
        )
        assert len(results) == len(steps)
        for result in results:
            # Perfect fairness => every bin is filled to the same percent;
            # allow Monte-Carlo noise.
            mean = sum(result.fills.values()) / len(result.fills)
            assert result.spread < 0.35 * mean

    def test_adaptivity_runner_reports_factors(self):
        cases = add_remove_cases(count=6, base=500, step=100)
        results = run_adaptivity(
            cases, lambda bins: RedundantShare(bins, copies=2), balls=2000
        )
        assert len(results) == 8
        for result in results:
            assert result.used > 0
            assert result.factor >= 0.9  # must at least fill the new bin
            assert result.factor < 6.0  # Lemma 3.2 ballpark


class TestSimulator:
    def test_runs_in_time_order(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(5.0, lambda: seen.append("b"))
        simulator.schedule(1.0, lambda: seen.append("a"))
        simulator.run()
        assert seen == ["a", "b"]
        assert simulator.now == 5.0
        assert simulator.processed_events == 2

    def test_ties_fifo(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(1.0, lambda: seen.append(1))
        simulator.schedule(1.0, lambda: seen.append(2))
        simulator.run()
        assert seen == [1, 2]

    def test_until_bound(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(1.0, lambda: seen.append("early"))
        simulator.schedule(10.0, lambda: seen.append("late"))
        simulator.run(until=5.0)
        assert seen == ["early"]
        assert simulator.pending() == 1
        assert simulator.now == 5.0

    def test_cascading_events(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append("first")
            simulator.schedule(2.0, lambda: seen.append("second"))

        simulator.schedule(1.0, first)
        simulator.run()
        assert seen == ["first", "second"]
        assert simulator.now == 3.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(4.0, lambda: seen.append("x"))
        with pytest.raises(ValueError):
            simulator.schedule_at(-1.0, lambda: None)
        simulator.run()
        assert seen == ["x"]

    def test_step_on_empty(self):
        assert Simulator().step() is False
