"""Tests for the columnar fleet simulator.

The load-bearing guarantee is leg equivalence: the NumPy leg and the
pure-Python leg (``repro._compat.np`` monkeypatched to None) must produce
bit-identical copy-count columns, loss lists and samples for any
configuration.  On top of that we pin determinism, the zero-divergence
cross-check against the event-driven controller, the mean-field fit and
the repair priority order.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro.analysis import total_variation
from repro.chaos import (
    ChaosOptions,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FleetOptions,
    FleetSimulator,
    RepairPolicy,
    crash_epochs,
    durability_phase_diagram,
    run_chaos,
    run_fleet,
)
from repro.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.placement.registry import create
from repro.types import bins_from_capacities


def small_options(**overrides):
    defaults = dict(
        devices=8,
        blocks=64,
        copies=2,
        epochs=12,
        failure_rate=4.0,
        epochs_per_year=12,
        repair_rate=6.0,
        seed=3,
        device_capacity=32,
    )
    defaults.update(overrides)
    return FleetOptions(**defaults)


def report_fingerprint(report):
    """Everything that must match between the two legs, as plain data."""
    return (
        report.counts_list(),
        list(report.lost_addresses),
        [
            (s.epoch, s.year, s.damaged, s.lost, s.distribution)
            for s in report.samples
        ],
        report.device_failures,
        report.repairs_completed,
        report.mean_repair_epochs,
        report.final_distribution,
        report.steady_state,
        report.mean_field,
        list(report.repair_order),
    )


def run_pure(options, crash_schedule=None):
    saved = compat.np
    compat.np = None
    try:
        return FleetSimulator(options).run(crash_schedule)
    finally:
        compat.np = saved


class TestLegEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        devices=st.integers(min_value=3, max_value=12),
        copies=st.integers(min_value=1, max_value=3),
        epochs=st.integers(min_value=1, max_value=15),
        failure_rate=st.floats(min_value=0.0, max_value=8.0),
        repair_rate=st.floats(min_value=0.0, max_value=20.0),
        strategy=st.sampled_from(["striping", "redundant-share"]),
    )
    def test_numpy_and_pure_legs_are_bit_identical(
        self, seed, devices, copies, epochs, failure_rate, repair_rate, strategy
    ):
        if compat.np is None:
            pytest.skip("NumPy unavailable; nothing to compare against")
        copies = min(copies, devices)
        options = FleetOptions(
            devices=devices,
            blocks=40,
            copies=copies,
            epochs=epochs,
            epochs_per_year=12,
            failure_rate=failure_rate,
            repair_rate=repair_rate,
            seed=seed,
            strategy=strategy,
            device_capacity=64,
            record_repairs=True,
        )
        numpy_report = FleetSimulator(options).run()
        pure_report = run_pure(options)
        assert report_fingerprint(numpy_report) == report_fingerprint(
            pure_report
        )

    def test_legs_match_under_scheduled_crashes(self):
        if compat.np is None:
            pytest.skip("NumPy unavailable; nothing to compare against")
        options = small_options(failure_rate=0.0, record_repairs=True)
        crashes = {2: [0, 1], 7: [4]}
        numpy_report = FleetSimulator(options).run(crashes)
        pure_report = run_pure(options, crashes)
        assert report_fingerprint(numpy_report) == report_fingerprint(
            pure_report
        )
        assert numpy_report.device_failures == 3


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        options = small_options(record_repairs=True)
        first = run_fleet(options)
        second = run_fleet(options)
        assert report_fingerprint(first) == report_fingerprint(second)

    def test_seed_changes_failure_draws(self):
        base = small_options()
        reseeded = dataclasses.replace(base, seed=base.seed + 1)
        assert report_fingerprint(run_fleet(base)) != report_fingerprint(
            run_fleet(reseeded)
        )


class TestControllerCrossCheck:
    def test_zero_divergence_on_shared_schedule(self):
        # Same bins, same strategy, same crash times: the fleet engine and
        # the event-driven controller must agree exactly on which blocks
        # were lost and how many devices failed.
        devices, blocks, copies = 8, 120, 2
        bins = bins_from_capacities([60] * devices, prefix="dev")
        device_ids = [spec.bin_id for spec in bins]
        strategy = create("striping", bins, copies=copies)
        victim = 17
        pair = strategy.place(victim)
        single = next(d for d in device_ids if d not in pair)
        schedule = FaultSchedule(
            [FaultEvent(2.0, FaultKind.CRASH, device) for device in pair]
            + [FaultEvent(10.0, FaultKind.CRASH, single)]
        )

        cluster = Cluster(bins, lambda b: create("striping", b, copies=copies))
        for address in range(blocks):
            cluster.write(address, b"x")
        controller = run_chaos(
            cluster,
            schedule,
            ChaosOptions(
                seed=0,
                policy=RepairPolicy(rate=float(blocks), timeout=1000.0),
                replacement_delay=1.0,
            ),
        )

        fleet = FleetSimulator(
            small_options(
                devices=devices,
                blocks=blocks,
                epochs=16,
                failure_rate=0.0,
                repair_rate=float(blocks),
            ),
            bins=bins,
        ).run(crash_epochs(schedule, device_ids))

        assert {loss.address for loss in controller.loss_events} == set(
            fleet.lost_addresses
        )
        assert victim in set(fleet.lost_addresses)
        assert controller.faults.get("crash", 0) == fleet.device_failures

    def test_crash_epochs_rejects_non_crash_kinds(self):
        schedule = FaultSchedule(
            [FaultEvent(1.0, FaultKind.OUTAGE, "dev-0", duration=2.0)]
        )
        with pytest.raises(ConfigurationError):
            crash_epochs(schedule, ["dev-0", "dev-1"])

    def test_crash_epochs_rejects_unknown_devices(self):
        schedule = FaultSchedule([FaultEvent(1.0, FaultKind.CRASH, "ghost")])
        with pytest.raises(ConfigurationError):
            crash_epochs(schedule, ["dev-0", "dev-1"])

    def test_crash_epochs_rounds_time_to_epoch(self):
        schedule = FaultSchedule(
            [
                FaultEvent(0.2, FaultKind.CRASH, "dev-0"),
                FaultEvent(3.6, FaultKind.CRASH, "dev-1"),
            ]
        )
        assert crash_epochs(schedule, ["dev-0", "dev-1"]) == {1: [0], 4: [1]}


class TestMeanField:
    def test_no_failures_keeps_full_redundancy(self):
        report = run_fleet(small_options(failure_rate=0.0))
        assert report.final_distribution[-1] == pytest.approx(1.0)
        assert report.mean_field[-1] == pytest.approx(1.0)
        assert report.mean_field_deviation == pytest.approx(0.0)
        assert not report.data_loss

    def test_steady_state_tracks_mean_field_at_scale(self):
        # Block coupling decays as 1/devices, so a moderately sized fleet
        # already sits close to the ODE prediction.
        report = run_fleet(
            FleetOptions(
                devices=200,
                blocks=4000,
                copies=3,
                epochs=120,
                epochs_per_year=12,
                failure_rate=1.2,
                repair_rate=60.0,
                seed=1,
                device_capacity=80,
            )
        )
        assert report.mean_field_deviation < 0.08

    def test_distributions_sum_to_one(self):
        report = run_fleet(small_options())
        for sample in report.samples:
            assert sum(sample.distribution) == pytest.approx(1.0)
        assert sum(report.steady_state) == pytest.approx(1.0)
        assert sum(report.mean_field) == pytest.approx(1.0)


class TestRepairPriority:
    def test_lowest_redundancy_repaired_first(self):
        # Crash two of a victim's devices and one other device in the
        # same epoch: blocks left with fewer survivors must be rebuilt
        # before healthier ones within every epoch.
        options = small_options(
            devices=6,
            blocks=48,
            copies=3,
            epochs=10,
            failure_rate=0.0,
            repair_rate=4.0,
            record_repairs=True,
        )
        simulator = FleetSimulator(options)
        strategy = create(
            "striping",
            bins_from_capacities([32] * 6, prefix="dev"),
            copies=3,
        )
        placement = strategy.place(0)
        crashed = sorted(
            int(device.split("-")[1]) for device in list(placement)[:2]
        )
        extra = next(i for i in range(6) if i not in crashed)
        report = simulator.run({1: sorted(crashed + [extra])})
        assert report.repair_order, "scenario repaired nothing"
        by_epoch = {}
        for epoch, block in report.repair_order:
            by_epoch.setdefault(epoch, []).append(block)
        single_survivor = {
            block
            for block in range(options.blocks)
            if len(
                set(strategy.place(block))
                & {f"dev-{d}" for d in crashed + [extra]}
            )
            >= 2
        }
        first_epoch = min(by_epoch)
        repaired_first = by_epoch[first_epoch][: len(single_survivor)]
        assert single_survivor, "crash pattern produced no critical blocks"
        assert set(repaired_first) <= single_survivor | set(
            by_epoch[first_epoch]
        )
        # The stronger property: no healthier block is rebuilt before any
        # critical block within the first sweep.
        critical_positions = [
            i
            for i, block in enumerate(by_epoch[first_epoch])
            if block in single_survivor
        ]
        if critical_positions:
            boundary = max(critical_positions)
            healthier_before = [
                block
                for block in by_epoch[first_epoch][:boundary]
                if block not in single_survivor
            ]
            assert healthier_before == []

    def test_repair_rate_zero_never_repairs(self):
        report = run_fleet(small_options(repair_rate=0.0))
        assert report.repairs_completed == 0

    def test_fractional_budget_accumulates(self):
        # rate=0.5 over 12 epochs must fund ~6 repairs if damage exists.
        report = run_fleet(
            small_options(failure_rate=6.0, repair_rate=0.5, epochs=12)
        )
        assert 0 < report.repairs_completed <= 6


class TestReportShape:
    def test_final_epoch_is_always_sampled(self):
        report = run_fleet(small_options(sample_every=100, epochs=7))
        assert report.samples[-1].epoch == 7

    def test_counts_match_final_distribution(self):
        report = run_fleet(small_options())
        counts = report.counts_list()
        histogram = [0] * (report.copies + 1)
        for count in counts:
            histogram[count] += 1
        observed = tuple(value / len(counts) for value in histogram)
        assert observed == pytest.approx(report.final_distribution)

    def test_summary_mentions_mean_field_fit(self):
        report = run_fleet(small_options())
        assert "mean-field fit" in report.summary()
        assert "TV=" in report.summary()

    def test_durability_fit_requires_failures_and_repairs(self):
        calm = run_fleet(small_options(failure_rate=0.0))
        assert calm.durability is None
        stormy = run_fleet(small_options(failure_rate=6.0, repair_rate=50.0))
        if stormy.device_failures and stormy.repairs_completed:
            assert stormy.durability is not None
            assert stormy.durability.mttf > 0


class TestOptionsValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"devices": 0},
            {"blocks": 0},
            {"copies": 0},
            {"copies": 9, "devices": 8},
            {"epochs_per_year": 0},
            {"epochs": 0},
            {"failure_rate": -1.0},
            {"repair_rate": -1.0},
            {"device_capacity": 0},
            {"sample_every": -1},
        ],
    )
    def test_rejects_bad_options(self, overrides):
        with pytest.raises(ConfigurationError):
            small_options(**overrides)

    def test_rejects_non_positive_years(self):
        with pytest.raises(ConfigurationError):
            FleetOptions(devices=4, blocks=8, copies=2, years=0.0)

    def test_bins_must_match_devices(self):
        bins = bins_from_capacities([10] * 3, prefix="dev")
        with pytest.raises(ConfigurationError):
            FleetSimulator(small_options(devices=8), bins=bins)

    def test_scheduled_crash_out_of_range(self):
        simulator = FleetSimulator(small_options(devices=4))
        with pytest.raises(ConfigurationError):
            simulator.run({1: [4]})


class TestPhaseDiagram:
    def test_loss_fraction_decreases_with_repair_rate(self):
        options = small_options(
            devices=16,
            blocks=200,
            copies=2,
            epochs=40,
            failure_rate=5.0,
            device_capacity=40,
        )
        points = durability_phase_diagram(options, [0.0, 2.0, 40.0])
        assert [point.repair_rate for point in points] == [0.0, 2.0, 40.0]
        assert points[0].lost_fraction >= points[-1].lost_fraction
        assert points[-1].mean_copies >= points[0].mean_copies
        for point in points:
            assert 0.0 <= point.lost_fraction <= 1.0
            assert len(point.steady_state) == options.copies + 1

    def test_phase_points_reuse_options(self):
        options = small_options()
        (point,) = durability_phase_diagram(options, [options.repair_rate])
        direct = run_fleet(options)
        assert point.steady_state == direct.steady_state
        assert point.mean_field_deviation == pytest.approx(
            direct.mean_field_deviation
        )


class TestObservability:
    def test_fleet_metrics_and_events_emitted(self):
        from repro import obs

        obs.reset_metrics()
        sink = obs.MemorySink()
        with obs.use_sink(sink):
            run_fleet(small_options(failure_rate=6.0))
        names = {event.kind for event in sink.events}
        assert "chaos.fleet.finished" in names
        assert "chaos.fleet.sample" in names
        counters = obs.metrics().snapshot()["counters"]
        assert counters.get("chaos.fleet.epochs") == 12
        assert "chaos.fleet.device_failures" in counters
        obs.reset_metrics()


class TestTotalVariation:
    def test_identical_distributions(self):
        assert total_variation((0.5, 0.5), (0.5, 0.5)) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation((1.0, 0.0), (0.0, 1.0)) == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            total_variation((1.0,), (0.5, 0.5))
