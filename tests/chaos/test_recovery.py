"""Tests for the recovery pipeline: queue order, backoff, degraded reads."""

import pytest

from repro.chaos import (
    HealthLedger,
    RepairPolicy,
    RepairQueue,
    RepairTask,
    degraded_read,
    rebuild_share,
)
from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.exceptions import ConfigurationError, DeviceUnavailableError
from repro.types import bins_from_capacities


def task(address, position=0, survivors=1, device="d0", at=0.0):
    return RepairTask(
        address=address,
        position=position,
        device_id=device,
        survivors=survivors,
        enqueued_at=at,
    )


class TestRepairQueue:
    def test_fewest_survivors_drain_first(self):
        queue = RepairQueue()
        queue.push(task(1, survivors=3))
        queue.push(task(2, survivors=1))
        queue.push(task(3, survivors=2))
        assert [queue.pop().address for _ in range(3)] == [2, 3, 1]

    def test_ties_break_on_address_then_position(self):
        queue = RepairQueue()
        queue.push(task(9, position=1, survivors=2))
        queue.push(task(9, position=0, survivors=2))
        queue.push(task(4, position=2, survivors=2))
        drained = [(t.address, t.position) for t in (queue.pop(), queue.pop(), queue.pop())]
        assert drained == [(4, 2), (9, 0), (9, 1)]

    def test_len_and_truthiness(self):
        queue = RepairQueue()
        assert not queue and len(queue) == 0
        queue.push(task(1))
        assert queue and len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            RepairQueue().pop()


class TestRepairPolicy:
    def test_backoff_grows_exponentially_then_clamps(self):
        policy = RepairPolicy(backoff_base=0.5, backoff_factor=2.0, backoff_max=3.0)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0
        assert policy.backoff(4) == 3.0  # clamped
        assert policy.backoff(10) == 3.0

    def test_interval_is_inverse_rate(self):
        assert RepairPolicy(rate=4.0).interval == 0.25

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RepairPolicy().backoff(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0},
            {"max_attempts": 0},
            {"timeout": 0.0},
            {"backoff_base": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_base": 2.0, "backoff_max": 1.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            RepairPolicy(**kwargs)


def make_cluster(copies=3, capacities=(900, 800, 700, 600, 500)):
    cluster = Cluster(
        bins_from_capacities(list(capacities)),
        lambda bins: RedundantShare(bins, copies=copies),
    )
    for address in range(30):
        cluster.write(address, f"payload-{address}".encode())
    return cluster


class TestDegradedRead:
    def test_reads_normally_when_everything_is_up(self):
        cluster = make_cluster()
        result = degraded_read(cluster, 5, HealthLedger())
        assert result.payload == b"payload-5"
        assert result.positions_skipped == []

    def test_falls_back_across_positions(self):
        cluster = make_cluster()
        ledger = HealthLedger()
        placement = cluster.placement_of(5)
        ledger.mark_offline(placement[0])
        result = degraded_read(cluster, 5, ledger)
        assert result.payload == b"payload-5"
        assert 0 in result.positions_skipped

    def test_raises_unavailable_when_every_copy_is_down(self):
        cluster = make_cluster()
        ledger = HealthLedger()
        for device_id in cluster.placement_of(5):
            ledger.mark_offline(device_id)
        with pytest.raises(DeviceUnavailableError, match="reachable"):
            degraded_read(cluster, 5, ledger)

    def test_recovers_once_devices_return(self):
        cluster = make_cluster()
        ledger = HealthLedger()
        placement = cluster.placement_of(5)
        for device_id in placement:
            ledger.mark_offline(device_id)
        ledger.mark_online(placement[-1])
        result = degraded_read(cluster, 5, ledger)
        assert result.payload == b"payload-5"


class TestRebuildShare:
    def test_rebuilds_a_lost_share_from_survivors(self):
        cluster = make_cluster()
        placement = cluster.placement_of(3)
        victim = placement[1]
        cluster.device(victim).discard((3, 1))
        payload = rebuild_share(
            cluster, task(3, position=1, device=victim), HealthLedger()
        )
        assert payload == cluster.code.encode(b"payload-3")[1]

    def test_raises_when_survivors_are_unreachable(self):
        cluster = make_cluster()
        ledger = HealthLedger()
        placement = cluster.placement_of(3)
        for device_id in placement:
            ledger.mark_offline(device_id)
        with pytest.raises(DeviceUnavailableError, match="survivors"):
            rebuild_share(cluster, task(3, position=1, device=placement[1]), ledger)
