"""Tests for seeded fault schedules (generation, validation, round-trip)."""

import pytest

from repro.chaos import FaultEvent, FaultKind, FaultSchedule, generate_schedule
from repro.exceptions import ConfigurationError

DEVICES = [f"d{i}" for i in range(8)]


class TestFaultEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=-1.0, kind=FaultKind.CRASH, device_id="d0")

    def test_transient_faults_need_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            FaultEvent(time=0.0, kind=FaultKind.OUTAGE, device_id="d0")
        with pytest.raises(ConfigurationError, match="duration"):
            FaultEvent(time=0.0, kind=FaultKind.FLAKY, device_id="d0")

    def test_rejects_error_rate_of_one(self):
        with pytest.raises(ConfigurationError, match="error_rate"):
            FaultEvent(
                time=0.0,
                kind=FaultKind.FLAKY,
                device_id="d0",
                duration=1.0,
                error_rate=1.0,
            )

    def test_round_trips_through_dict(self):
        event = FaultEvent(
            time=2.5,
            kind=FaultKind.FLAKY,
            device_id="d3",
            duration=4.0,
            error_rate=0.4,
            latency=0.5,
        )
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            FaultEvent.from_dict({"time": 1.0, "kind": "melt", "device": "d0"})

    def test_from_dict_rejects_missing_key(self):
        with pytest.raises(ConfigurationError, match="missing"):
            FaultEvent.from_dict({"kind": "crash", "device": "d0"})


class TestFaultSchedule:
    def test_orders_events_by_time(self):
        schedule = FaultSchedule(
            [
                FaultEvent(time=5.0, kind=FaultKind.CRASH, device_id="d1"),
                FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id="d2"),
            ]
        )
        assert [e.time for e in schedule] == [1.0, 5.0]

    def test_rejects_faults_after_permanent_loss(self):
        with pytest.raises(ConfigurationError, match="permanent"):
            FaultSchedule(
                [
                    FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id="d0"),
                    FaultEvent(
                        time=2.0,
                        kind=FaultKind.OUTAGE,
                        device_id="d0",
                        duration=1.0,
                    ),
                ]
            )

    def test_allows_transient_fault_before_crash(self):
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=1.0, kind=FaultKind.FLAKY, device_id="d0",
                    duration=5.0, error_rate=0.2,
                ),
                FaultEvent(time=3.0, kind=FaultKind.CRASH, device_id="d0"),
            ]
        )
        assert len(schedule) == 2

    def test_duration_covers_the_longest_window(self):
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=2.0, kind=FaultKind.OUTAGE, device_id="d0",
                    duration=6.0,
                ),
                FaultEvent(time=7.0, kind=FaultKind.CRASH, device_id="d1"),
            ]
        )
        assert schedule.duration == 8.0

    def test_json_round_trip(self):
        schedule = generate_schedule(
            DEVICES, seed=11, crashes=2, outages=1, flaky=1
        )
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_from_json_accepts_bare_list(self):
        schedule = FaultSchedule.from_json(
            '[{"time": 1.0, "kind": "crash", "device": "d0"}]'
        )
        assert len(schedule) == 1

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            FaultSchedule.from_json("{nope")
        with pytest.raises(ConfigurationError, match="faults"):
            FaultSchedule.from_json('{"other": 1}')


class TestGenerateSchedule:
    def test_same_seed_same_schedule(self):
        first = generate_schedule(DEVICES, seed=5, crashes=2, outages=2, flaky=1)
        second = generate_schedule(DEVICES, seed=5, crashes=2, outages=2, flaky=1)
        assert first == second

    def test_different_seeds_differ(self):
        schedules = {
            generate_schedule(DEVICES, seed=seed, crashes=2, outages=1).to_json()
            for seed in range(6)
        }
        assert len(schedules) > 1

    def test_device_order_does_not_matter(self):
        forward = generate_schedule(DEVICES, seed=3, crashes=2)
        backward = generate_schedule(list(reversed(DEVICES)), seed=3, crashes=2)
        assert forward == backward

    def test_victims_are_distinct(self):
        schedule = generate_schedule(
            DEVICES, seed=1, crashes=3, outages=3, flaky=2
        )
        victims = [event.device_id for event in schedule]
        assert len(victims) == len(set(victims)) == 8

    def test_rejects_more_faults_than_devices(self):
        with pytest.raises(ConfigurationError, match="victims"):
            generate_schedule(["d0", "d1"], crashes=3)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            generate_schedule(DEVICES, duration=0.0)

    def test_times_stay_inside_the_horizon(self):
        schedule = generate_schedule(
            DEVICES, seed=9, duration=10.0, crashes=2, outages=2, flaky=2
        )
        for event in schedule:
            assert 0.0 <= event.time < 10.0
