"""Tests for the chaos controller: determinism, durability, degradation."""

import pytest

from repro.chaos import (
    ChaosOptions,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    RepairPolicy,
    generate_schedule,
    run_chaos,
)
from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.exceptions import InfeasibleRedundancyError
from repro.types import bins_from_capacities

CAPACITIES = [60, 60, 60, 60, 60, 60]


def make_cluster(copies=3, capacities=CAPACITIES, blocks=40):
    cluster = Cluster(
        bins_from_capacities(list(capacities), prefix="dev"),
        lambda bins: RedundantShare(bins, copies=copies),
    )
    for address in range(blocks):
        cluster.write(address, f"block-{address}".encode())
    return cluster


def mixed_schedule(cluster, seed=7):
    return generate_schedule(
        cluster.device_ids(),
        seed=seed,
        duration=20.0,
        crashes=1,
        outages=1,
        flaky=1,
    )


def final_map(cluster):
    return {a: cluster.placement_of(a) for a in cluster.addresses()}


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self):
        first = make_cluster()
        second = make_cluster()
        report_a = run_chaos(first, mixed_schedule(first), ChaosOptions(seed=7))
        report_b = run_chaos(second, mixed_schedule(second), ChaosOptions(seed=7))
        assert first.log.as_tuples() == second.log.as_tuples()
        assert report_a.repair_order == report_b.repair_order
        assert report_a.samples == report_b.samples
        assert final_map(first) == final_map(second)

    def test_repair_order_prioritises_endangered_blocks(self):
        # With one crash every lost share has the same survivor count, so
        # the order must be (address, position)-sorted — a pure function
        # of the queue contents.
        cluster = make_cluster()
        schedule = FaultSchedule(
            [FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id="dev-0")]
        )
        report = run_chaos(cluster, schedule, ChaosOptions(seed=0))
        assert report.repair_order == sorted(report.repair_order)


class TestSingleFailureSurvival:
    def test_k3_survives_any_single_crash_with_zero_loss(self):
        for victim in [f"dev-{i}" for i in range(len(CAPACITIES))]:
            cluster = make_cluster(copies=3)
            schedule = FaultSchedule(
                [FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id=victim)]
            )
            report = run_chaos(cluster, schedule, ChaosOptions(seed=1))
            assert not report.data_loss, f"lost blocks crashing {victim}"
            cluster.verify()
            for address in cluster.addresses():
                assert cluster.read(address) == f"block-{address}".encode()

    def test_post_repair_fairness_passes_chi_square(self):
        cluster = make_cluster(copies=3, blocks=60)
        schedule = FaultSchedule(
            [FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id="dev-2")]
        )
        report = run_chaos(cluster, schedule, ChaosOptions(seed=1, alpha=0.01))
        assert report.fairness is not None
        assert report.fairness.accepted

    def test_repairs_complete_and_are_counted(self):
        cluster = make_cluster(copies=3)
        lost = len(cluster.shares_on("dev-1"))
        schedule = FaultSchedule(
            [FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id="dev-1")]
        )
        report = run_chaos(cluster, schedule, ChaosOptions(seed=1))
        assert report.completed == lost
        assert report.repair_throughput > 0
        assert report.durability is not None
        assert report.durability.mttr > 0


class TestTransientFaults:
    def test_outage_never_loses_data(self):
        cluster = make_cluster()
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=1.0, kind=FaultKind.OUTAGE,
                    device_id="dev-3", duration=5.0,
                )
            ]
        )
        report = run_chaos(cluster, schedule, ChaosOptions(seed=0))
        assert not report.data_loss
        assert report.completed == 0  # nothing to repair: data was intact
        cluster.verify()
        # The outage shows up in the at-risk samples, then clears.
        assert report.peak_at_risk > 0
        assert report.samples[-1][1] == 0

    def test_flaky_survivors_force_retries_with_backoff(self):
        cluster = make_cluster()
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=1.0, kind=FaultKind.FLAKY, device_id="dev-1",
                    duration=12.0, error_rate=0.6, latency=0.5,
                ),
                FaultEvent(time=2.0, kind=FaultKind.CRASH, device_id="dev-0"),
            ]
        )
        # Backoff spacing means a task can only burn ~7 attempts inside
        # the 12-unit flaky window; with a 12-attempt budget every task
        # outlasts the window and succeeds once the device heals.
        report = run_chaos(
            cluster,
            schedule,
            ChaosOptions(
                seed=3,
                policy=RepairPolicy(rate=16.0, max_attempts=12, timeout=100.0),
            ),
        )
        assert report.retries > 0
        assert not report.abandoned
        assert report.attempts == report.completed + report.retries + len(
            report.abandoned
        )
        assert not report.data_loss
        cluster.verify()

    def test_exhausted_retries_are_abandoned_not_raised(self):
        cluster = make_cluster()
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=1.0, kind=FaultKind.FLAKY, device_id="dev-1",
                    duration=200.0, error_rate=0.95, latency=0.0,
                ),
                FaultEvent(time=2.0, kind=FaultKind.CRASH, device_id="dev-0"),
            ]
        )
        report = run_chaos(
            cluster,
            schedule,
            ChaosOptions(
                seed=2,
                policy=RepairPolicy(rate=8.0, max_attempts=2, timeout=500.0),
            ),
        )
        assert report.abandoned, "0.95 error rate with 2 attempts must abandon"
        for error in report.abandoned:
            assert error.attempts == 2


class TestShrink:
    def test_feasible_shrink_rebalances(self):
        cluster = make_cluster(copies=2, capacities=[80, 80, 80, 80, 80])
        schedule = FaultSchedule(
            [FaultEvent(time=1.0, kind=FaultKind.SHRINK, device_id="dev-4")]
        )
        report = run_chaos(cluster, schedule, ChaosOptions(seed=0))
        assert "dev-4" not in cluster.device_ids()
        assert not report.data_loss
        cluster.verify()

    def test_infeasible_shrink_raises_typed_error(self):
        # Removing a small device leaves k*b_0 > B: dominated by dev-0.
        cluster = make_cluster(copies=2, capacities=[100, 40, 40], blocks=20)
        schedule = FaultSchedule(
            [FaultEvent(time=1.0, kind=FaultKind.SHRINK, device_id="dev-1")]
        )
        with pytest.raises(InfeasibleRedundancyError, match="Lemma 2.1"):
            run_chaos(cluster, schedule, ChaosOptions(seed=0))
        # Gate fired before any data moved.
        assert sorted(cluster.device_ids()) == ["dev-0", "dev-1", "dev-2"]

    def test_allow_degraded_overrides_the_gate(self):
        cluster = make_cluster(copies=2, capacities=[100, 40, 40], blocks=20)
        schedule = FaultSchedule(
            [FaultEvent(time=1.0, kind=FaultKind.SHRINK, device_id="dev-1")]
        )
        report = run_chaos(
            cluster, schedule, ChaosOptions(seed=0, allow_degraded=True)
        )
        assert "dev-1" not in cluster.device_ids()
        assert not report.data_loss
        cluster.verify()


class TestDataLossAccounting:
    def test_simultaneous_crashes_beyond_tolerance_record_losses(self):
        cluster = make_cluster(copies=2, blocks=40)
        # Two crashes in the same instant with k=2: blocks with both
        # copies on the victims are unrecoverable and must be reported.
        schedule = FaultSchedule(
            [
                FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id="dev-0"),
                FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id="dev-1"),
            ]
        )
        both = {
            address
            for address in cluster.addresses()
            if set(cluster.placement_of(address)) == {"dev-0", "dev-1"}
        }
        report = run_chaos(cluster, schedule, ChaosOptions(seed=0))
        assert {loss.address for loss in report.loss_events} == both
        # Blocks with one surviving copy were still repaired.
        survivors = set(cluster.addresses()) - both
        repaired = {address for address, _ in report.repair_order}
        assert repaired.issubset(survivors)


class TestSamplingAndThroughputEdges:
    """Satellite fixes: final sample on short runs, zero-division guards,
    options validation."""

    def test_short_run_still_emits_final_sample(self):
        from repro import obs

        cluster = make_cluster(copies=3, blocks=12)
        schedule = FaultSchedule(
            [FaultEvent(time=0.2, kind=FaultKind.CRASH, device_id="dev-0")]
        )
        sink = obs.MemorySink()
        with obs.use_sink(sink):
            report = run_chaos(
                cluster,
                schedule,
                # Interval far beyond the run: only _finish can sample.
                ChaosOptions(seed=1, sample_interval=1000.0),
            )
        assert report.samples, "short run produced no samples at all"
        assert report.samples[-1][0] == pytest.approx(report.horizon)
        sample_events = [e for e in sink.events if e.kind == "chaos.sample"]
        assert sample_events, "no chaos.sample trace event for a short run"

    def test_final_sample_matches_horizon_without_sink(self):
        cluster = make_cluster(copies=3, blocks=12)
        report = run_chaos(
            cluster, mixed_schedule(cluster), ChaosOptions(seed=3)
        )
        assert report.samples[-1][0] == pytest.approx(report.horizon)

    def test_repair_throughput_guard_on_zero_horizon(self):
        from repro.chaos import ChaosReport

        assert ChaosReport().repair_throughput == 0.0

    def test_zero_elapsed_repair_yields_no_durability_fit(self):
        # An empty cluster crashing with replacement_delay=0: the crash
        # is observed but every "repair" takes zero elapsed time, so
        # there is no repair rate to fit — durability must be None, not
        # a crash.
        cluster = Cluster(
            bins_from_capacities([60] * 6, prefix="dev"),
            lambda bins: RedundantShare(bins, copies=3),
        )
        for address in range(8):
            cluster.write(address, b"x")
        schedule = FaultSchedule(
            [FaultEvent(time=1.0, kind=FaultKind.CRASH, device_id="dev-0")]
        )
        report = run_chaos(
            cluster,
            schedule,
            ChaosOptions(
                seed=0,
                replacement_delay=0.0,
                policy=RepairPolicy(rate=1e9, timeout=1000.0),
            ),
        )
        assert report.faults.get("crash") == 1
        if report.durability is not None:
            assert report.durability.mttr > 0

    def test_options_reject_non_positive_sample_interval(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ChaosOptions(sample_interval=0.0)
        with pytest.raises(ConfigurationError):
            ChaosOptions(sample_interval=-1.0)

    def test_options_reject_negative_replacement_delay(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ChaosOptions(replacement_delay=-0.5)

    def test_options_reject_bad_alpha(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ChaosOptions(alpha=0.0)
        with pytest.raises(ConfigurationError):
            ChaosOptions(alpha=1.0)
