"""Test harness: run asyncio servers on a background event-loop thread.

Hypothesis property tests and synchronous CLI tests both need a *live*
server that outlasts one ``asyncio.run`` call (starting a fresh service
per drawn example would swamp the property being tested with setup
cost).  :class:`LoopThread` owns an event loop on a daemon thread and
exposes a synchronous ``run(coro)`` bridge; servers started through it
keep serving until the harness stops.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Coroutine


class LoopThread:
    """An event loop running on a dedicated daemon thread."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._ready.set)
        self.loop.run_forever()

    def run(self, coro: Coroutine, timeout: float = 30.0) -> Any:
        """Run a coroutine on the loop thread, blocking for its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def stop(self) -> None:
        """Stop the loop and join the thread."""
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()
