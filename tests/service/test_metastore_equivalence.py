"""Served placement must be bit-identical to local ``place_many``.

The metastore builds its strategy through the same
:func:`repro.placement.registry.create` factory as a local caller, so a
``where_are`` answer that crossed the wire must equal the local batch
placement *exactly* — same devices, same copy order, for every
registered strategy.  Hypothesis drives address batches (including
>2**32 addresses, which exercise JSON's arbitrary-precision integers
against the hash pipeline) through one long-lived server per strategy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement.registry import create, registered_strategies
from repro.service import MetastoreServer, RpcConnection
from repro.types import bins_from_capacities

from .harness import LoopThread

COPIES = 3
CAPACITIES = [500, 600, 700, 800, 900, 1000, 1100, 1200]
BINS = bins_from_capacities(CAPACITIES, prefix="dev")

addresses_lists = st.lists(
    st.integers(min_value=0, max_value=2 ** 62), min_size=0, max_size=40
)


class ServedStrategies:
    """One running metastore + client connection per registered strategy."""

    def __init__(self) -> None:
        self.loop = LoopThread()
        self.servers = {}
        self.connections = {}
        self.local = {}
        for entry in registered_strategies():
            server = self.loop.run(self._start(entry.name))
            connection = self.loop.run(
                RpcConnection.open(server.host, server.port)
            )
            self.servers[entry.name] = server
            self.connections[entry.name] = connection
            self.local[entry.name] = create(entry.name, BINS, copies=COPIES)

    @staticmethod
    async def _start(name: str) -> MetastoreServer:
        server = MetastoreServer(BINS, strategy=name, copies=COPIES)
        return await server.start()

    def where_are(self, name: str, addresses):
        connection = self.connections[name]
        result = self.loop.run(
            connection.call("where_are", addresses=list(addresses))
        )
        return [tuple(devices) for devices in result["placements"]]

    def where_is(self, name: str, address: int):
        connection = self.connections[name]
        result = self.loop.run(connection.call("where_is", address=address))
        return tuple(result["devices"])

    def close(self) -> None:
        for connection in self.connections.values():
            self.loop.run(connection.close())
        for server in self.servers.values():
            self.loop.run(server.stop())
        self.loop.stop()


@pytest.fixture(scope="module")
def served():
    harness = ServedStrategies()
    yield harness
    harness.close()


class TestServedEquivalence:
    @given(addresses=addresses_lists)
    @settings(max_examples=20, deadline=None)
    def test_where_are_matches_local_place_many(self, served, addresses):
        for entry in registered_strategies():
            local = served.local[entry.name].place_many(addresses).tuples()
            over_the_wire = served.where_are(entry.name, addresses)
            assert over_the_wire == local, (
                f"{entry.name}: served placement diverged from local "
                f"place_many"
            )

    @given(address=st.integers(min_value=0, max_value=2 ** 62))
    @settings(max_examples=25, deadline=None)
    def test_where_is_matches_local_place(self, served, address):
        for entry in registered_strategies():
            assert served.where_is(entry.name, address) == served.local[
                entry.name
            ].place(address)

    def test_where_is_agrees_with_where_are(self, served):
        addresses = list(range(64))
        for entry in registered_strategies():
            batched = served.where_are(entry.name, addresses)
            singles = [
                served.where_is(entry.name, address) for address in addresses
            ]
            assert batched == singles

    def test_effective_copies_honoured(self, served):
        # lin-mirror is k=2 by definition whatever was requested; the
        # service must report and serve the effective degree.
        for entry in registered_strategies():
            expected = entry.effective_copies(COPIES)
            placements = served.where_are(entry.name, [0, 1, 2])
            assert all(len(devices) == expected for devices in placements)
