"""Blockstore semantics, client degradation, and typed errors on the wire.

Everything here runs a real server on localhost inside ``asyncio.run``:
typed errors must survive the trip through the error envelope (raised
server-side, re-raised client-side as the same class), and the client's
fallback order must mirror ``chaos/recovery.degraded_read`` — positions
tried in placement order, unavailable/missing/corrupt copies skipped.
"""

import asyncio

import pytest

from repro.exceptions import (
    BadFrameError,
    BlockNotFoundError,
    ChecksumMismatchError,
    ServiceUnavailableError,
)
from repro.service import (
    BlockstoreServer,
    RpcConnection,
    ServiceClient,
    ServiceCluster,
    checksum,
    encode_frame,
    encode_payload,
)
from repro.service.protocol import HEADER, read_frame


def run(coro):
    return asyncio.run(coro)


async def _one_blockstore():
    server = BlockstoreServer("dev-0")
    await server.start()
    connection = await RpcConnection.open(server.host, server.port)
    return server, connection


class TestBlockstore:
    def test_put_get_round_trip(self):
        async def scenario():
            server, connection = await _one_blockstore()
            payload = b"the quick brown fox"
            stored = await connection.call(
                "put", address=9, position=1,
                payload=encode_payload(payload),
            )
            fetched = await connection.call("get", address=9, position=1)
            await connection.close()
            await server.stop()
            return payload, stored, fetched

        payload, stored, fetched = run(scenario())
        assert stored == {"stored": True, "checksum": checksum(payload)}
        assert fetched["checksum"] == checksum(payload)

    def test_get_missing_share_is_typed(self):
        async def scenario():
            server, connection = await _one_blockstore()
            try:
                with pytest.raises(BlockNotFoundError):
                    await connection.call("get", address=1, position=0)
            finally:
                await connection.close()
                await server.stop()

        run(scenario())

    def test_put_with_wrong_checksum_rejected(self):
        async def scenario():
            server, connection = await _one_blockstore()
            try:
                with pytest.raises(ChecksumMismatchError):
                    await connection.call(
                        "put", address=1, position=0,
                        payload=encode_payload(b"data"),
                        checksum="0" * 64,
                    )
                assert server.share_count() == 0
            finally:
                await connection.close()
                await server.stop()

        run(scenario())

    def test_silent_corruption_caught_on_read(self):
        async def scenario():
            server, connection = await _one_blockstore()
            try:
                await connection.call(
                    "put", address=3, position=0,
                    payload=encode_payload(b"precious"),
                )
                server.corrupt(3, 0)
                with pytest.raises(ChecksumMismatchError):
                    await connection.call("get", address=3, position=0)
            finally:
                await connection.close()
                await server.stop()

        run(scenario())

    def test_delete_and_stats(self):
        async def scenario():
            server, connection = await _one_blockstore()
            try:
                await connection.call(
                    "put", address=5, position=2,
                    payload=encode_payload(b"x" * 10),
                )
                stats = await connection.call("stats")
                assert stats == {"device": "dev-0", "shares": 1, "bytes": 10}
                deleted = await connection.call("delete", address=5, position=2)
                assert deleted == {"deleted": True}
                again = await connection.call("delete", address=5, position=2)
                assert again == {"deleted": False}
            finally:
                await connection.close()
                await server.stop()

        run(scenario())


class TestWireErrors:
    def test_unknown_op_is_bad_frame(self):
        async def scenario():
            server, connection = await _one_blockstore()
            try:
                with pytest.raises(BadFrameError):
                    await connection.call("frobnicate")
            finally:
                await connection.close()
                await server.stop()

        run(scenario())

    def test_missing_parameter_is_bad_frame(self):
        async def scenario():
            server, connection = await _one_blockstore()
            try:
                with pytest.raises(BadFrameError):
                    await connection.call("get", address=1)  # no position
            finally:
                await connection.close()
                await server.stop()

        run(scenario())

    def test_garbage_bytes_get_error_envelope_then_close(self):
        async def scenario():
            server = BlockstoreServer("dev-0")
            await server.start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(HEADER.pack(7) + b"garbage")
            await writer.drain()
            response = await read_frame(reader)
            follow_up = await read_frame(reader)  # server hung up
            writer.close()
            await server.stop()
            return response, follow_up

        response, follow_up = run(scenario())
        assert response["ok"] is False
        assert response["error"] == "BadFrameError"
        assert follow_up is None

    def test_non_object_request_is_answered_not_fatal(self):
        async def scenario():
            server = BlockstoreServer("dev-0")
            await server.start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(encode_frame([1, 2, 3]))
            await writer.drain()
            response = await read_frame(reader)
            writer.close()
            await server.stop()
            return response

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"] == "BadFrameError"

    def test_connection_refused_is_service_unavailable(self):
        async def scenario():
            # Bind-then-close gives a port that is guaranteed free.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            with pytest.raises(ServiceUnavailableError):
                await RpcConnection.open("127.0.0.1", port)

        run(scenario())

    def test_server_death_mid_session_is_service_unavailable(self):
        async def scenario():
            server, connection = await _one_blockstore()
            await connection.call("ping")
            await server.stop()
            with pytest.raises(ServiceUnavailableError):
                await connection.call("ping")
            await connection.close()

        run(scenario())


class TestServiceClient:
    def test_write_read_round_trip_all_positions(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200, 100], copies=3
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                receipt = await client.put_block(11, b"payload-11")
                result = await client.get_block(11)
                # every acknowledged copy is really on its blockstore
                held = [
                    cluster.blockstores[device].holds(11, position)
                    for position, device in enumerate(receipt.devices)
                ]
                await client.close()
                return receipt, result, held

        receipt, result, held = run(scenario())
        assert receipt.fully_replicated
        assert receipt.positions_written == [0, 1, 2]
        assert result.payload == b"payload-11"
        assert result.position_used == 0
        assert not result.degraded
        assert held == [True, True, True]

    def test_degraded_read_falls_back_in_position_order(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200, 100], copies=3
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                receipt = await client.put_block(23, b"payload-23")
                await cluster.kill_blockstore(receipt.devices[0])
                result = await client.get_block(23)
                await client.close()
                return result

        result = run(scenario())
        assert result.payload == b"payload-23"
        assert result.position_used == 1
        assert result.positions_skipped == [0]

    def test_corrupt_primary_copy_falls_back(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200, 100], copies=3
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                receipt = await client.put_block(31, b"payload-31")
                cluster.blockstores[receipt.devices[0]].corrupt(31, 0)
                result = await client.get_block(31)
                await client.close()
                return result

        result = run(scenario())
        assert result.payload == b"payload-31"
        assert result.positions_skipped == [0]

    def test_all_copies_gone_is_service_unavailable(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200], copies=3
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                await client.put_block(47, b"payload-47")
                for device in list(cluster.blockstores):
                    await cluster.kill_blockstore(device)
                try:
                    with pytest.raises(ServiceUnavailableError):
                        await client.get_block(47)
                finally:
                    await client.close()

        run(scenario())

    def test_degraded_write_skips_dead_store(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200, 100], copies=3
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                placement = await client.where_is(59)
                await cluster.kill_blockstore(placement[1])
                receipt = await client.put_block(59, b"payload-59")
                result = await client.get_block(59)
                await client.close()
                return receipt, result

        receipt, result = run(scenario())
        assert not receipt.fully_replicated
        assert receipt.positions_skipped == [1]
        assert sorted(receipt.positions_written) == [0, 2]
        assert result.payload == b"payload-59"

    def test_read_of_never_written_block(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200], copies=2
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                try:
                    with pytest.raises(ServiceUnavailableError):
                        await client.get_block(999)
                finally:
                    await client.close()

        run(scenario())

    def test_restart_after_outage_preserves_shares(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200, 100], copies=3
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                receipt = await client.put_block(71, b"payload-71")
                victim = receipt.devices[0]
                # outage: socket closes but the data survives
                await cluster.kill_blockstore(victim, wipe=False)
                degraded = await client.get_block(71)
                await cluster.restart_blockstore(victim)
                await client.refresh_config()
                healthy = await client.get_block(71)
                await client.close()
                return degraded, healthy

        degraded, healthy = run(scenario())
        assert degraded.position_used == 1
        assert healthy.position_used == 0
        assert healthy.payload == b"payload-71"

    def test_metrics_rpc_exports_service_and_process_views(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200], copies=2
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                await client.put_block(5, b"five")
                await client.where_are([1, 2, 3, 4])
                snapshot = await client.metrics()
                await client.close()
                return snapshot

        snapshot = run(scenario())
        service = snapshot["service"]
        assert service["counters"]["metastore.requests.where_are"] == 1
        assert service["counters"]["metastore.lookups"] >= 5
        latency = service["histograms"]["metastore.request_ms"]
        assert latency["count"] == sum(
            count
            for name, count in service["counters"].items()
            if name.startswith("metastore.requests.")
        )
        assert "counters" in snapshot["process"]

    def test_metastore_validates_addresses(self):
        async def scenario():
            async with ServiceCluster.from_capacities(
                [400, 300, 200], copies=2
            ) as cluster:
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)
                try:
                    with pytest.raises(BadFrameError):
                        await client.where_is(-1)
                    with pytest.raises(BadFrameError):
                        await client.where_are(["seven"])
                finally:
                    await client.close()

        run(scenario())

    def test_cluster_rejects_port_overflow(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServiceCluster.from_capacities([1, 1, 1], port=65534)
        with pytest.raises(ConfigurationError):
            ServiceCluster.from_capacities([])
