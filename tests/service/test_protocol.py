"""Property tests pinning the length-prefixed JSON wire codec.

The contract under test:

* ``decode_frame(encode_frame(x)) == x`` for every JSON-representable
  payload (round-trip identity), and equal payloads encode to byte-equal
  frames (canonical rendering).
* Every *proper prefix* of a valid frame raises
  :class:`TruncatedFrameError` — a reader can always distinguish "need
  more bytes" from "the stream is garbage".
* A header declaring a body above ``max_frame_bytes`` raises
  :class:`OversizedFrameError` from the header alone.
* Structural garbage (zero-length body, invalid JSON, trailing bytes)
  raises :class:`BadFrameError`.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    BadFrameError,
    OversizedFrameError,
    TruncatedFrameError,
)
from repro.service.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    decode_frame,
    decode_frame_prefix,
    decode_header,
    encode_frame,
    read_frame,
    write_frame,
)

# Arbitrary JSON values: scalars (including > 2**32 integers, which the
# placement service relies on for addresses) nested under lists/dicts.
json_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2 ** 70), max_value=2 ** 70)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40)
)
json_values = st.recursive(
    json_scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=10), children, max_size=4)
    ),
    max_leaves=25,
)


class TestRoundTrip:
    @given(payload=json_values)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_identity(self, payload):
        assert decode_frame(encode_frame(payload)) == payload

    @given(payload=json_values)
    @settings(max_examples=50, deadline=None)
    def test_canonical_encoding(self, payload):
        # Equal payloads give byte-equal frames (sorted keys, fixed
        # separators) — what lets traces be compared across machines.
        assert encode_frame(payload) == encode_frame(payload)

    @given(payload=json_values)
    @settings(max_examples=50, deadline=None)
    def test_prefix_decoder_reports_consumed(self, payload):
        frame = encode_frame(payload)
        decoded, consumed = decode_frame_prefix(frame + b"extra")
        assert decoded == payload
        assert consumed == len(frame)

    def test_non_serialisable_payload(self):
        with pytest.raises(BadFrameError):
            encode_frame(object())


class TestTruncation:
    @given(payload=json_values, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_every_proper_prefix_is_truncated(self, payload, data):
        frame = encode_frame(payload)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(TruncatedFrameError):
            decode_frame(frame[:cut])

    def test_empty_buffer(self):
        with pytest.raises(TruncatedFrameError):
            decode_frame(b"")

    def test_truncated_error_is_a_bad_frame(self):
        # Catching the broad class catches the structural subclasses too.
        assert issubclass(TruncatedFrameError, BadFrameError)
        assert issubclass(OversizedFrameError, BadFrameError)


class TestOversizeGuard:
    def test_encode_refuses_oversized_body(self):
        with pytest.raises(OversizedFrameError):
            encode_frame("x" * 128, max_frame_bytes=64)

    def test_header_guard_fires_without_body(self):
        # Only the 4 header bytes exist; the guard must fire before any
        # attempt to read the (absent, huge) body.
        header = HEADER.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(OversizedFrameError):
            decode_frame(header)

    @given(length=st.integers(min_value=1, max_value=2 ** 32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_header_guard_threshold(self, length):
        header = HEADER.pack(length)
        if length > 1024:
            with pytest.raises(OversizedFrameError):
                decode_header(header, max_frame_bytes=1024)
        else:
            assert decode_header(header, max_frame_bytes=1024) == length


class TestStructuralGarbage:
    def test_zero_length_body(self):
        with pytest.raises(BadFrameError):
            decode_frame(HEADER.pack(0))

    def test_invalid_json_body(self):
        with pytest.raises(BadFrameError):
            decode_frame(HEADER.pack(3) + b"not")

    def test_invalid_utf8_body(self):
        with pytest.raises(BadFrameError):
            decode_frame(HEADER.pack(2) + b"\xff\xfe")

    @given(payload=json_values, junk=st.binary(min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_trailing_bytes_rejected(self, payload, junk):
        with pytest.raises(BadFrameError):
            decode_frame(encode_frame(payload) + junk)


class TestStreamHelpers:
    """The asyncio adapters, driven through an in-memory StreamReader."""

    @staticmethod
    def _reader(*chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        if eof:
            reader.feed_eof()
        return reader

    def test_clean_eof_reads_as_none(self):
        async def scenario():
            return await read_frame(self._reader())

        assert asyncio.run(scenario()) is None

    def test_two_frames_back_to_back(self):
        async def scenario():
            reader = self._reader(
                encode_frame({"op": "ping", "id": 1})
                + encode_frame({"op": "ping", "id": 2})
            )
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first == {"op": "ping", "id": 1}
        assert second == {"op": "ping", "id": 2}
        assert third is None

    def test_eof_mid_header_is_truncated(self):
        async def scenario():
            await read_frame(self._reader(b"\x00\x00"))

        with pytest.raises(TruncatedFrameError):
            asyncio.run(scenario())

    def test_eof_mid_body_is_truncated(self):
        async def scenario():
            frame = encode_frame({"key": "value"})
            await read_frame(self._reader(frame[:-2]))

        with pytest.raises(TruncatedFrameError):
            asyncio.run(scenario())

    def test_oversized_header_rejected_before_body(self):
        async def scenario():
            await read_frame(
                self._reader(HEADER.pack(2 ** 31), eof=False),
                max_frame_bytes=1024,
            )

        with pytest.raises(OversizedFrameError):
            asyncio.run(scenario())

    def test_write_frame_round_trips_over_a_socket(self):
        async def scenario():
            received = []

            async def handle(reader, writer):
                received.append(await read_frame(reader))
                await write_frame(writer, {"echo": received[-1]})
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await write_frame(writer, {"n": 2 ** 62})
            reply = await read_frame(reader)
            writer.close()
            server.close()
            await server.wait_closed()
            return received, reply

        received, reply = asyncio.run(scenario())
        assert received == [{"n": 2 ** 62}]
        assert reply == {"echo": {"n": 2 ** 62}}
