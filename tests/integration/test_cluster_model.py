"""Stateful model testing: the cluster against a plain-dict oracle.

Hypothesis drives random operation sequences — writes, overwrites,
deletes, device adds/removes, failures and repairs — against a mirrored
cluster and a trivial in-memory model.  After every step the cluster must
agree with the model on readable content, and its structural invariants
must hold.  This is the kind of interleaving coverage unit tests miss.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import settings

from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.exceptions import BlockNotFoundError
from repro.types import BinSpec, bins_from_capacities

ADDRESSES = st.integers(min_value=0, max_value=39)
PAYLOADS = st.binary(min_size=1, max_size=24)


class ClusterMachine(RuleBasedStateMachine):
    """Random walks over the cluster's public API."""

    def __init__(self):
        super().__init__()
        self.cluster = Cluster(
            bins_from_capacities([800, 700, 600, 500]),
            lambda bins: RedundantShare(bins, copies=2),
        )
        self.model = {}
        self.device_serial = 0
        self.failed = set()

    # ------------------------------------------------------------------
    # Data-path rules
    # ------------------------------------------------------------------

    @rule(address=ADDRESSES, payload=PAYLOADS)
    def write(self, address, payload):
        self.cluster.write(address, payload)
        self.model[address] = payload

    @rule(address=ADDRESSES)
    def delete(self, address):
        if address in self.model:
            self.cluster.delete(address)
            del self.model[address]
        else:
            try:
                self.cluster.delete(address)
                raise AssertionError("delete of unknown block must fail")
            except BlockNotFoundError:
                pass

    # ------------------------------------------------------------------
    # Reconfiguration rules
    # ------------------------------------------------------------------

    @precondition(lambda self: len(self.cluster.device_ids()) < 8)
    @rule()
    def add_device(self):
        self.device_serial += 1
        self.cluster.add_device(
            BinSpec(f"grown-{self.device_serial}", 900)
        )

    @precondition(
        lambda self: len(self.cluster.device_ids()) - len(self.failed) > 3
    )
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def remove_device(self, pick):
        # Only remove active devices (draining a failed device would need
        # rebuild-on-remove, which the API models as repair-then-remove).
        candidates = [
            device_id
            for device_id in self.cluster.device_ids()
            if device_id not in self.failed
        ]
        victim = candidates[pick % len(candidates)]
        self.cluster.remove_device(victim)

    @precondition(lambda self: not self.failed)
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def fail_one_device(self, pick):
        # Keep at most one concurrent failure: k=2 tolerates exactly one.
        candidates = self.cluster.device_ids()
        victim = candidates[pick % len(candidates)]
        self.cluster.fail_device(victim)
        self.failed.add(victim)

    @precondition(lambda self: bool(self.failed))
    @rule()
    def repair_failed_device(self):
        victim = sorted(self.failed)[0]
        self.cluster.repair_device(victim)
        self.failed.discard(victim)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def every_model_block_reads_back(self):
        for address, payload in self.model.items():
            assert self.cluster.read(address) == payload

    @invariant()
    def block_counts_agree(self):
        assert self.cluster.block_count == len(self.model)

    @invariant()
    def redundancy_and_map_consistency(self):
        # verify() only checks share presence on *active* devices, so it
        # holds even while one device is failed.
        self.cluster.verify()


ClusterMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestClusterModel = ClusterMachine.TestCase
