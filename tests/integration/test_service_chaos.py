"""Chaos-driven end-to-end test: kill a blockstore mid-workload, lose nothing.

The service-tier twin of the ``repro chaos`` CLI gate.  A seeded
:class:`~repro.chaos.FaultSchedule` decides *which* blockstore dies and
*when* (its crash time is mapped proportionally onto the write
workload's index space, so "mid-stream" is deterministic — no wall-clock
races).  The workload writes every block at ``k = 3``; the victim is
killed **with its data wiped** partway through; then every block must
still read back bit-identically through the client's degraded-read
fallback.

Why zero loss is the right assertion: placement puts the ``k`` copies of
a block on *distinct* devices, so one crash can take at most one copy of
any block — recovery's Lemma-2.1-shaped guarantee, exercised here over
real sockets instead of the in-process cluster model.

Everything is a pure function of ``REPRO_CHAOS_SEED`` (default 0): the
schedule, the victim, the kill index, the payloads.  Re-running a failed
seed reproduces the run bit-for-bit.
"""

import asyncio
import hashlib
import os

import pytest

from repro.chaos import FaultKind, generate_schedule
from repro.service import ServiceClient, ServiceCluster

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
CAPACITIES = [500, 400, 300, 300, 200, 100]
COPIES = 3
BLOCKS = 80
SCHEDULE_DURATION = 20.0


def payload_for(address: int) -> bytes:
    """Deterministic per-block payload (seed-keyed, content-checkable)."""
    stamp = hashlib.sha256(f"{SEED}:{address}".encode()).digest()
    return f"block-{address}:".encode() + stamp


def chaos_plan(device_ids):
    """Derive (schedule, victim, kill_index) from the seed.

    The crash event's time on the schedule horizon maps proportionally
    to an index in the write workload, clamped to land strictly
    mid-stream (some blocks written before the kill, some after).
    """
    schedule = generate_schedule(
        device_ids,
        seed=SEED,
        duration=SCHEDULE_DURATION,
        crashes=1,
        outages=0,
        flaky=0,
    )
    crash = next(e for e in schedule if e.kind is FaultKind.CRASH)
    fraction = crash.time / SCHEDULE_DURATION
    kill_index = min(max(int(fraction * BLOCKS), 1), BLOCKS - 1)
    return schedule, crash.device_id, kill_index


def run_chaos_workload(seed: int):
    """Run the full kill-mid-workload scenario for one seed.

    Returns ``(lost, stats)`` where ``lost`` lists every unreadable or
    corrupted block (the zero-loss gate asserts it is empty) and
    ``stats`` carries the observability counters.  Invariants that hold
    for *every* seed — distinct devices per block, writes after the
    crash degraded on exactly the victim's copy position — are asserted
    inline here.
    """

    def payload(address: int) -> bytes:
        stamp = hashlib.sha256(f"{seed}:{address}".encode()).digest()
        return f"block-{address}:".encode() + stamp

    async def scenario():
        async with ServiceCluster.from_capacities(
            CAPACITIES, copies=COPIES, strategy="redundant-share"
        ) as cluster:
            schedule = generate_schedule(
                cluster.device_ids,
                seed=seed,
                duration=SCHEDULE_DURATION,
                crashes=1,
            )
            crash = next(e for e in schedule if e.kind is FaultKind.CRASH)
            victim = crash.device_id
            fraction = crash.time / SCHEDULE_DURATION
            kill_index = min(max(int(fraction * BLOCKS), 1), BLOCKS - 1)
            host, port = cluster.metastore_address
            client = await ServiceClient.connect(host, port)

            receipts = []
            for index in range(BLOCKS):
                if index == kill_index:
                    # the crash: socket gone AND data wiped
                    await cluster.kill_blockstore(victim, wipe=True)
                receipts.append(await client.put_block(index, payload(index)))

            # -- every block reads back despite the crash ----------------
            lost = []
            degraded_reads = 0
            for index in range(BLOCKS):
                try:
                    result = await client.get_block(index)
                except Exception as error:
                    lost.append((index, repr(error)))
                    continue
                if result.payload != payload(index):
                    lost.append((index, "payload mismatch"))
                if result.degraded:
                    degraded_reads += 1

            # -- write-side degradation accounting -----------------------
            placements = await client.where_are(list(range(BLOCKS)))
            stats = {
                "victim": victim,
                "kill_index": kill_index,
                "degraded_reads": degraded_reads,
                "scheduler_offline": client.scheduler.offline,
                "before_kill_on_victim": 0,
                "after_kill_skipped": 0,
            }
            for index, receipt in enumerate(receipts):
                devices = placements[index]
                assert devices == receipt.devices
                assert len(set(devices)) == COPIES  # distinct devices
                if victim in devices:
                    position = devices.index(victim)
                    if index < kill_index:
                        stats["before_kill_on_victim"] += 1
                    else:
                        stats["after_kill_skipped"] += 1
                        # writes after the crash must have skipped
                        # exactly the victim's position
                        assert receipt.positions_skipped == [position]
                elif index >= kill_index:
                    assert receipt.fully_replicated

            await client.close()
            return lost, stats

    return asyncio.run(scenario())


class TestServiceChaos:
    def test_chaos_plan_is_deterministic(self):
        devices = [f"store-{i}" for i in range(len(CAPACITIES))]
        first = chaos_plan(devices)
        second = chaos_plan(devices)
        assert first[0] == second[0]  # FaultSchedule equality
        assert first[1:] == second[1:]
        assert 1 <= first[2] <= BLOCKS - 1

    def test_kill_blockstore_mid_workload_zero_loss(self):
        lost, stats = run_chaos_workload(SEED)

        # The headline: a mid-workload crash with data wipe loses nothing.
        assert lost == [], (
            f"data loss after killing {stats['victim']!r} at block "
            f"{stats['kill_index']}: {lost}"
        )
        # The crash was observable, not a no-op: blocks written before
        # the kill had copies on the victim, and writes after it skipped
        # its position — which marked the device offline in the client's
        # read scheduler, so every read routed around the corpse instead
        # of probing it (zero degraded reads is the *feature*, not an
        # idle run).  (These hold for the default seed 0 and are
        # deterministic per seed; the strict multi-seed gate asserts
        # only the universal zero-loss invariant.)
        if SEED == 0:
            assert stats["before_kill_on_victim"] > 0
            assert stats["after_kill_skipped"] > 0
            assert stats["scheduler_offline"] == [stats["victim"]]
            assert stats["degraded_reads"] == 0

    def test_recovery_after_replacement_restores_full_redundancy(self):
        """The repair arc: blank replacement arrives, re-put restores k/k."""

        async def scenario():
            async with ServiceCluster.from_capacities(
                CAPACITIES, copies=COPIES
            ) as cluster:
                _, victim, kill_index = chaos_plan(cluster.device_ids)
                host, port = cluster.metastore_address
                client = await ServiceClient.connect(host, port)

                for index in range(BLOCKS):
                    if index == kill_index:
                        await cluster.kill_blockstore(victim, wipe=True)
                    await client.put_block(index, payload_for(index))

                # blank replacement arrives on the victim's endpoint
                await cluster.restart_blockstore(victim)
                await client.refresh_config()
                assert cluster.blockstores[victim].share_count() == 0

                # re-replicate: a put re-writes every copy position, so
                # one pass over the blocks restores full redundancy
                for index in range(BLOCKS):
                    receipt = await client.put_block(
                        index, payload_for(index)
                    )
                    assert receipt.fully_replicated

                healthy_reads = 0
                for index in range(BLOCKS):
                    result = await client.get_block(index)
                    assert result.payload == payload_for(index)
                    if not result.degraded:
                        healthy_reads += 1

                rebuilt = cluster.blockstores[victim].share_count()
                await client.close()
                return healthy_reads, rebuilt

        healthy_reads, rebuilt = asyncio.run(scenario())
        assert healthy_reads == BLOCKS  # no degraded reads after repair
        assert rebuilt > 0  # the replacement really holds shares again

    def test_seed_changes_the_plan(self):
        """Different seeds pick different (victim, kill point) plans.

        Guards against the schedule silently ignoring its seed, which
        would turn "deterministic under REPRO_CHAOS_SEED" into "constant".
        """
        devices = [f"store-{i}" for i in range(len(CAPACITIES))]
        plans = set()
        for seed in range(8):
            schedule = generate_schedule(
                devices, seed=seed, duration=SCHEDULE_DURATION, crashes=1
            )
            crash = next(e for e in schedule if e.kind is FaultKind.CRASH)
            plans.add((crash.device_id, round(crash.time, 6)))
        assert len(plans) > 1


@pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS_STRICT", "") != "1",
    reason="strict amplification only runs in the service-smoke CI job",
)
class TestServiceChaosStrict:
    """CI amplification: the zero-loss gate across several seeds."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_zero_loss_across_seeds(self, seed):
        lost, stats = run_chaos_workload(seed)
        assert lost == [], (
            f"seed {seed}: data loss after killing {stats['victim']!r} "
            f"at block {stats['kill_index']}: {lost}"
        )
