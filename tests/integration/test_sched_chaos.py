"""Integration: read scheduling under mid-workload device failure.

A ``k = 3`` cluster serves a seeded Zipf read workload through
``degraded_read`` with a load-aware scheduler.  Mid-stream, chaos kills
one device (ledger *and* cluster state).  The contract:

* zero failed reads — every request decodes the right payload before,
  during and after the failure;
* the scheduler's choices silently shift to the survivors: the victim's
  request counter freezes at the kill point;
* once the device is repaired and marked healthy, it rejoins the
  candidate pool and starts serving again.
"""

from repro.chaos import HealthLedger, degraded_read
from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.scheduling import create
from repro.types import bins_from_capacities
from repro.workloads import ZipfGenerator

BLOCKS = 120
REQUESTS = 600
KILL_AT = 200
REPAIR_AT = 450


def make_cluster():
    cluster = Cluster(
        bins_from_capacities([1000] * 6),
        lambda bins: RedundantShare(bins, copies=3),
    )
    for address in range(BLOCKS):
        cluster.write(address, f"payload-{address}".encode())
    return cluster


def test_choices_shift_to_survivors_with_zero_failed_reads():
    cluster = make_cluster()
    ledger = HealthLedger()
    device_ids = [spec.bin_id for spec in cluster.strategy.bins]
    scheduler = create("least-loaded", device_ids, seed=9)
    addresses = list(ZipfGenerator(BLOCKS, alpha=1.1, seed=13).stream(REQUESTS))
    # Kill the device serving the hottest block's primary copy — the
    # worst case for a scheduler that cannot route around it.
    victim = cluster.placement_of(addresses[0])[0]

    frozen_count = None
    for index, address in enumerate(addresses):
        if index == KILL_AT:
            cluster.fail_device(victim)
            ledger.mark_offline(victim)
            frozen_count = scheduler.count_of(victim)
        if index == REPAIR_AT:
            assert scheduler.count_of(victim) == frozen_count
            cluster.repair_device(victim)
            ledger.mark_online(victim)
        result = degraded_read(cluster, address, ledger, scheduler=scheduler)
        assert result.payload == f"payload-{address}".encode(), index

    # The victim served reads before the kill and after the repair, but
    # not one in between.
    assert frozen_count is not None and frozen_count > 0
    assert scheduler.count_of(victim) > frozen_count
    assert victim not in scheduler.offline
    # Every request landed somewhere.
    assert sum(scheduler.counts().values()) == REQUESTS


def test_unrepaired_victim_stays_out_of_the_pool():
    cluster = make_cluster()
    ledger = HealthLedger()
    device_ids = [spec.bin_id for spec in cluster.strategy.bins]
    scheduler = create("power-of-two", device_ids, seed=4)
    addresses = list(ZipfGenerator(BLOCKS, alpha=1.1, seed=5).stream(REQUESTS))
    victim = cluster.placement_of(addresses[0])[0]

    for index, address in enumerate(addresses):
        if index == KILL_AT:
            cluster.fail_device(victim)
            ledger.mark_offline(victim)
            frozen_count = scheduler.count_of(victim)
        result = degraded_read(cluster, address, ledger, scheduler=scheduler)
        assert result.payload == f"payload-{address}".encode(), index

    assert scheduler.count_of(victim) == frozen_count
    assert scheduler.offline == [victim]
    survivors = [device for device in device_ids if device != victim]
    post_kill = REQUESTS - KILL_AT
    assert sum(scheduler.counts()[device] for device in survivors) >= post_kill
