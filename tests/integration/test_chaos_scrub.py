"""Chaos property test: random bit rot within tolerance is always healed.

Hypothesis picks arbitrary corruption patterns — any set of shares, as long
as no single block loses more shares than its code tolerates — and the
scrubber must detect every one and repair them all, after which every block
reads back byte-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ChecksumIndex, Cluster, Scrubber, corrupt_share
from repro.core import RedundantShare
from repro.erasure import ReedSolomonCode
from repro.types import bins_from_capacities

BLOCKS = 40


def build(code=None, copies=2):
    cluster = Cluster(
        bins_from_capacities([1200] * max(4, copies + 1)),
        lambda bins: RedundantShare(bins, copies=copies),
        code=code,
    )
    for address in range(BLOCKS):
        cluster.write(address, f"chaos-{address}".encode() * 3)
    index = ChecksumIndex()
    index.capture(cluster)
    return cluster, index


@given(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=BLOCKS - 1),
        values=st.integers(min_value=0, max_value=1),  # one share per block
        max_size=12,
    )
)
@settings(max_examples=20, deadline=None)
def test_mirror_chaos_always_healed(corruptions):
    cluster, index = build()
    for address, position in corruptions.items():
        device_id = cluster.placement_of(address)[position]
        corrupt_share(cluster, device_id, (address, position))
    report = Scrubber(cluster, index).scrub()
    assert report.corrupt == len(corruptions)
    assert report.repaired == len(corruptions)
    assert report.unrepairable == 0
    for address in range(BLOCKS):
        assert cluster.read(address) == f"chaos-{address}".encode() * 3
    assert Scrubber(cluster, index).scrub().corrupt == 0


@given(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=BLOCKS - 1),
        values=st.sets(
            st.integers(min_value=0, max_value=4), min_size=1, max_size=2
        ),
        max_size=8,
    )
)
@settings(max_examples=15, deadline=None)
def test_rs_chaos_up_to_two_shares_per_block(corruptions):
    """RS(3+2): any <= 2 corrupted shares per block heal completely."""
    cluster, index = build(code=ReedSolomonCode(3, 2), copies=5)
    total = 0
    for address, positions in corruptions.items():
        for position in positions:
            device_id = cluster.placement_of(address)[position]
            corrupt_share(cluster, device_id, (address, position))
            total += 1
    report = Scrubber(cluster, index).scrub()
    assert report.corrupt == total
    assert report.repaired == total
    for address in range(BLOCKS):
        assert cluster.read(address) == f"chaos-{address}".encode() * 3
