"""Smoke tests: every shipped example must run clean, end to end.

Examples are executable documentation; a release with a broken example is
broken.  Each one runs in its own interpreter (as a user would run it) and
must exit 0 with its success markers on stdout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart.py": "competitive factor",
    "heterogeneous_scale_out.py": "max-min spread",
    "erasure_coded_storage.py": "cluster invariants verified",
    "failure_recovery_simulation.py": "no data lost",
    "strategy_comparison.py": "max deviation from fair share",
    "durability_and_scrubbing.py": "read back correct after repair",
    "object_store_scale_out.py": "all objects verified",
    "trace_replay.py": "flattens the hotspot",
}


@pytest.mark.parametrize("script,marker", sorted(CASES.items()))
def test_example_runs_clean(script, marker):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert marker in result.stdout, (
        f"{script} missing success marker {marker!r}:\n{result.stdout}"
    )
