"""Golden-value pinning: placements must never change across releases.

For a storage system the placement function *is* the on-disk layout: any
change to the hash primitives, the hazard solver or the draw keying would
silently relocate every deployed block.  These tests pin concrete outputs;
if one fails, either restore compatibility or document a breaking layout
change loudly.
"""

from repro.core import FastRedundantShare, LinMirror, RedundantShare
from repro.hashing.primitives import stable_u64, unit_interval
from repro.placement import CrushStrategy, TrivialReplication
from repro.types import bins_from_capacities

BINS = bins_from_capacities([1200, 800, 500, 300])


class TestHashPinning:
    def test_stable_u64_values(self):
        assert stable_u64("anchor", 7) == 13539186861692216844
        assert stable_u64(42) == 16619484360765051494

    def test_unit_interval_value(self):
        assert abs(unit_interval("x", 1) - 0.6308114636396446) < 1e-15


class TestPlacementPinning:
    def test_redundant_share_k2(self):
        strategy = RedundantShare(BINS, copies=2)
        assert [strategy.place(a) for a in range(6)] == [
            ("bin-0", "bin-2"),
            ("bin-1", "bin-3"),
            ("bin-1", "bin-3"),
            ("bin-1", "bin-3"),
            ("bin-0", "bin-1"),
            ("bin-0", "bin-2"),
        ]

    def test_linmirror_equals_redundant_share(self):
        mirror = LinMirror(BINS, namespace="redundant-share")
        strategy = RedundantShare(BINS, copies=2)
        assert [mirror.place(a) for a in range(20)] == [
            strategy.place(a) for a in range(20)
        ]

    def test_fast_variant_k3(self):
        strategy = FastRedundantShare(BINS, copies=3)
        # Capacities clip to [800, 800, 500, 300] (k*b_0 > B), so copies 1
        # and 2 are deterministic and only the third copy is random.
        placements = [strategy.place(a) for a in range(6)]
        assert all(p[:2] == ("bin-0", "bin-1") for p in placements)
        assert [p[2] for p in placements] == ["bin-2"] * 5 + ["bin-3"]

    def test_trivial(self):
        strategy = TrivialReplication(BINS, copies=2)
        assert [strategy.place(a) for a in range(4)] == [
            ("bin-0", "bin-2"),
            ("bin-0", "bin-1"),
            ("bin-2", "bin-0"),
            ("bin-1", "bin-3"),
        ]

    def test_crush(self):
        strategy = CrushStrategy(BINS, copies=2)
        assert [strategy.place(a) for a in range(4)] == [
            ("bin-0", "bin-2"),
            ("bin-0", "bin-1"),
            ("bin-2", "bin-1"),
            ("bin-0", "bin-2"),
        ]
