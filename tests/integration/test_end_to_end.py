"""End-to-end lifecycle tests across all subsystems.

These exercise the realistic stories the library exists for: a cluster
that fills, grows, shrinks, fails, rebuilds — with mirroring and with
erasure coding — while every invariant (durability, fairness, redundancy,
map consistency) holds throughout.
"""

import pytest

from repro.cluster import Cluster, FailureInjector
from repro.core import FastRedundantShare, RedundantShare, VirtualVolume
from repro.erasure import EvenOddCode, ReedSolomonCode, RowDiagonalParityCode
from repro.metrics import jain_index
from repro.types import BinSpec, bins_from_capacities


def payload_for(address: int) -> bytes:
    return f"block-{address}-".encode() * 4


class TestMirroredLifecycle:
    def test_full_story(self):
        cluster = Cluster(
            bins_from_capacities([3000, 2500, 2000, 1500], prefix="gen0"),
            lambda bins: RedundantShare(bins, copies=2),
        )
        blocks = 600
        for address in range(blocks):
            cluster.write(address, payload_for(address))

        # Grow by a new hardware generation.
        cluster.add_device(BinSpec("gen1-0", 4000))
        cluster.add_device(BinSpec("gen1-1", 4000))
        cluster.verify()

        # Fairness after growth: fill fractions are even across devices.
        fills = [
            cluster.device(device_id).used / cluster.device(device_id).capacity
            for device_id in cluster.device_ids()
        ]
        assert jain_index(fills) > 0.99

        # Retire the smallest original disk.
        cluster.remove_device("gen0-3")
        cluster.verify()

        # Crash-and-rebuild two rounds.
        injector = FailureInjector(seed=5)
        for _ in range(2):
            report = injector.crash(cluster, 1, repair=True)
            assert report.lost_blocks == 0
        cluster.verify()

        # All data still intact, byte for byte.
        for address in range(blocks):
            assert cluster.read(address) == payload_for(address)

    def test_fast_variant_backed_cluster(self):
        cluster = Cluster(
            bins_from_capacities([2000, 1500, 1000]),
            lambda bins: FastRedundantShare(bins, copies=2),
        )
        for address in range(200):
            cluster.write(address, payload_for(address))
        cluster.add_device(BinSpec("bin-new", 1800))
        cluster.verify()
        for address in range(200):
            assert cluster.read(address) == payload_for(address)


@pytest.mark.parametrize(
    "code",
    [ReedSolomonCode(3, 2), EvenOddCode(3), RowDiagonalParityCode(5)],
    ids=lambda code: code.describe(),
)
class TestErasureCodedLifecycle:
    def test_grow_fail_rebuild(self, code):
        devices = bins_from_capacities([2000] * (code.total_shares + 2))
        cluster = Cluster(
            devices,
            lambda bins: RedundantShare(bins, copies=code.total_shares),
            code=code,
        )
        blocks = 120
        for address in range(blocks):
            cluster.write(address, payload_for(address))

        cluster.add_device(BinSpec("bin-extra", 2000))
        cluster.verify()

        victims = ["bin-0", "bin-1"][: code.tolerance]
        for victim in victims:
            cluster.fail_device(victim)
        for address in range(blocks):
            assert cluster.read(address) == payload_for(address)
        for victim in victims:
            assert cluster.repair_device(victim) > 0
        cluster.verify()


class TestVolumeOverGrowingCluster:
    def test_filesystem_like_usage(self):
        cluster = Cluster(
            bins_from_capacities([4000, 3000, 2000]),
            lambda bins: RedundantShare(bins, copies=2),
        )
        volume = VirtualVolume(cluster, block_size=128)

        # Write a "file" spanning many blocks at an unaligned offset.
        content = bytes(range(256)) * 20
        volume.write(300, content)
        assert volume.read(300, len(content)) == content

        # Grow the pool mid-life; the volume is oblivious.
        cluster.add_device(BinSpec("bin-new", 5000))
        assert volume.read(300, len(content)) == content

        # Overwrite a hole-punched region.
        volume.write(100, b"#" * 50)
        assert volume.read(100, 50) == b"#" * 50
        assert volume.read(150, 10) == bytes(10)

        # Survive a failure transparently.
        cluster.fail_device("bin-0")
        assert volume.read(300, len(content)) == content
