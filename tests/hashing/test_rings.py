"""Unit tests for the hash ring."""

import pytest

from repro.hashing import HashRing
from repro.hashing.primitives import unit_interval


def build_ring(owners, points=32):
    ring = HashRing("test")
    for owner in owners:
        ring.add_owner(owner, points)
    return ring


class TestRingConstruction:
    def test_len_counts_points(self):
        ring = build_ring(["a", "b"], points=8)
        assert len(ring) == 16

    def test_duplicate_owner_rejected(self):
        ring = build_ring(["a"])
        with pytest.raises(ValueError):
            ring.add_owner("a", 4)

    def test_zero_points_rejected(self):
        ring = HashRing()
        with pytest.raises(ValueError):
            ring.add_owner("a", 0)

    def test_contains(self):
        ring = build_ring(["a"])
        assert "a" in ring
        assert "b" not in ring

    def test_points_of(self):
        ring = build_ring(["a"], points=5)
        assert ring.points_of("a") == 5


class TestSuccessor:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().successor(0.5)

    def test_successor_is_deterministic(self):
        ring = build_ring(["a", "b", "c"])
        assert ring.successor(0.123) == ring.successor(0.123)

    def test_wraps_around(self):
        ring = build_ring(["a", "b"])
        # A position beyond every point must wrap to the first point's owner.
        assert ring.successor(0.999999999) in ("a", "b")

    def test_successors_distinct_owners(self):
        ring = build_ring(["a", "b", "c", "d"])
        owners = ring.successors(0.42, 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3

    def test_successors_too_many_raises(self):
        ring = build_ring(["a", "b"])
        with pytest.raises(ValueError):
            ring.successors(0.1, 3)

    def test_owners_covering_returns_all(self):
        ring = build_ring(["a", "b", "c"])
        assert sorted(ring.owners_covering(0.7)) == ["a", "b", "c"]


class TestRemoval:
    def test_remove_unknown_owner_raises(self):
        with pytest.raises(KeyError):
            build_ring(["a"]).remove_owner("b")

    def test_removal_leaves_other_points(self):
        ring = build_ring(["a", "b"], points=16)
        ring.remove_owner("a")
        assert len(ring) == 16
        assert ring.successor(0.5) == "b"

    def test_removal_is_stable_for_survivors(self):
        # Consistent hashing's key property: removing an owner only moves
        # positions that previously mapped to it.
        ring = build_ring(["a", "b", "c"], points=64)
        before = {pos / 1000: ring.successor(pos / 1000) for pos in range(1000)}
        ring.remove_owner("b")
        for position, owner in before.items():
            if owner != "b":
                assert ring.successor(position) == owner


class TestArcLength:
    def test_arcs_sum_to_one(self):
        ring = build_ring(["a", "b", "c"], points=32)
        arcs = ring.arc_length()
        assert abs(sum(arcs.values()) - 1.0) < 1e-12

    def test_arc_matches_sampled_share(self):
        ring = build_ring(["a", "b"], points=128)
        arcs = ring.arc_length()
        n = 5000
        hits = sum(
            1 for i in range(n) if ring.successor(unit_interval("s", i)) == "a"
        )
        assert abs(hits / n - arcs["a"]) < 0.03

    def test_single_owner_arc_accessor(self):
        ring = build_ring(["a", "b"], points=32)
        assert 0.0 < ring.arc_length("a") < 1.0

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().arc_length()
