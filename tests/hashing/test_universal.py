"""Statistical tests for the universal hash families."""

import collections

import pytest

from repro.hashing.universal import (
    CarterWegmanHash,
    TabulationHash,
    collision_probability_bound,
)


class TestTabulation:
    def test_deterministic_per_seed(self):
        first = TabulationHash(seed=7)
        second = TabulationHash(seed=7)
        assert [first(i) for i in range(100)] == [second(i) for i in range(100)]

    def test_seeds_decorrelate(self):
        a = TabulationHash(seed=1)
        b = TabulationHash(seed=2)
        assert sum(1 for i in range(200) if a(i) == b(i)) < 3

    def test_range(self):
        hash_fn = TabulationHash(seed=3)
        for i in range(200):
            assert 0 <= hash_fn(i) < 2**64

    def test_unit_range(self):
        hash_fn = TabulationHash(seed=4)
        values = [hash_fn.unit(i) for i in range(5000)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.02

    def test_uniformity_chi_square(self):
        hash_fn = TabulationHash(seed=5)
        cells = [0] * 16
        n = 20_000
        for i in range(n):
            cells[hash_fn(i) & 0xF] += 1
        expected = n / 16
        chi2 = sum((count - expected) ** 2 / expected for count in cells)
        assert chi2 < 37.7  # 0.999 quantile, 15 dof

    def test_avalanche(self):
        hash_fn = TabulationHash(seed=6)
        flips = bin(hash_fn(1024) ^ hash_fn(1025)).count("1")
        assert flips > 12


class TestCarterWegman:
    def test_validation(self):
        with pytest.raises(ValueError):
            CarterWegmanHash(0)

    def test_range(self):
        hash_fn = CarterWegmanHash(97, seed=1)
        for i in range(500):
            assert 0 <= hash_fn(i) < 97

    def test_deterministic(self):
        assert CarterWegmanHash(50, seed=2)(123) == CarterWegmanHash(50, seed=2)(123)

    def test_collision_rate_within_universal_bound(self):
        """Empirical pair-collision rate across family members stays near
        the 1/m universality guarantee."""
        buckets = 64
        bound = collision_probability_bound(buckets)
        pairs = [(i, i + 1000) for i in range(200)]
        collisions = 0
        trials = 0
        for seed in range(60):
            hash_fn = CarterWegmanHash(buckets, seed=seed)
            for x, y in pairs:
                trials += 1
                if hash_fn(x) == hash_fn(y):
                    collisions += 1
        rate = collisions / trials
        assert rate < 2.5 * bound

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            collision_probability_bound(0)

    def test_roughly_uniform(self):
        hash_fn = CarterWegmanHash(10, seed=9)
        counts = collections.Counter(hash_fn(i) for i in range(20_000))
        for bucket in range(10):
            assert counts[bucket] / 20_000 == pytest.approx(0.1, abs=0.03)
