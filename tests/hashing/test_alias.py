"""Unit and property tests for alias / cumulative sampling tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.alias import AliasTable, CumulativeTable, build_selector, select_pair
from repro.hashing.primitives import unit_interval


WEIGHTS = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=20,
).filter(lambda values: sum(values) > 0)


class TestAliasTable:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasTable([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasTable([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])

    def test_rejects_out_of_range_draw(self):
        table = AliasTable([1.0, 1.0])
        with pytest.raises(ValueError):
            table.select(1.0)
        with pytest.raises(ValueError):
            table.select(-0.1)

    def test_single_outcome(self):
        table = AliasTable([3.0])
        assert table.select(0.0) == 0
        assert table.select(0.999) == 0

    def test_zero_weight_outcome_never_selected(self):
        table = AliasTable([1.0, 0.0, 1.0])
        for i in range(2000):
            assert table.select(unit_interval("z", i)) != 1

    @given(WEIGHTS)
    @settings(max_examples=50, deadline=None)
    def test_probabilities_reconstruct_weights(self, weights):
        table = AliasTable(weights)
        probs = table.probabilities()
        total = sum(weights)
        for weight, prob in zip(weights, probs):
            assert abs(prob - weight / total) < 1e-9

    def test_empirical_frequencies_match(self):
        weights = [5.0, 3.0, 2.0]
        table = AliasTable(weights)
        counts = [0, 0, 0]
        n = 30000
        for i in range(n):
            counts[table.select(unit_interval("freq", i))] += 1
        for weight, count in zip(weights, counts):
            assert abs(count / n - weight / 10.0) < 0.02


class TestCumulativeTable:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CumulativeTable([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CumulativeTable([-1.0, 2.0])

    def test_boundaries(self):
        table = CumulativeTable([1.0, 1.0])
        assert table.select(0.0) == 0
        assert table.select(0.49999) == 0
        assert table.select(0.5) == 1
        assert table.select(0.99999) == 1

    def test_rejects_out_of_range_draw(self):
        table = CumulativeTable([1.0])
        with pytest.raises(ValueError):
            table.select(1.0)

    @given(WEIGHTS, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_alias_in_distribution(self, weights, seed):
        """Alias and cumulative tables encode the same distribution."""
        alias = AliasTable(weights)
        probs = alias.probabilities()
        total = sum(weights)
        for index, weight in enumerate(weights):
            assert abs(probs[index] - weight / total) < 1e-9


class TestBuildSelector:
    def test_single_positive_weight_is_constant(self):
        selector = build_selector([0.0, 4.0, 0.0])
        for i in range(100):
            assert selector.select(unit_interval("c", i)) == 1

    def test_prefer_cumulative(self):
        selector = build_selector([1.0, 2.0], prefer_alias=False)
        assert isinstance(selector, CumulativeTable)

    def test_default_is_alias(self):
        selector = build_selector([1.0, 2.0])
        assert isinstance(selector, AliasTable)


class TestSelectPair:
    def test_outputs_in_range(self):
        for i in range(500):
            a, b = select_pair(unit_interval("p", i))
            assert 0.0 <= a < 1.0
            assert 0.0 <= b < 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            select_pair(1.5)

    def test_first_component_roughly_uniform(self):
        n = 10000
        mean = sum(select_pair(unit_interval("q", i))[0] for i in range(n)) / n
        assert abs(mean - 0.5) < 0.02
