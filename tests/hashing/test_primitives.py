"""Unit tests for the deterministic hashing primitives."""

import math

import pytest

from repro.hashing import primitives


class TestSplitmix64:
    def test_is_deterministic(self):
        assert primitives.splitmix64(12345) == primitives.splitmix64(12345)

    def test_known_fixed_points_differ(self):
        values = {primitives.splitmix64(i) for i in range(1000)}
        assert len(values) == 1000  # bijection: no collisions on small range

    def test_output_in_64_bit_range(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            result = primitives.splitmix64(value)
            assert 0 <= result < 2**64

    def test_avalanche_flips_many_bits(self):
        base = primitives.splitmix64(42)
        flipped = primitives.splitmix64(42 ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert differing > 16  # weak avalanche check


class TestStableU64:
    def test_deterministic_across_calls(self):
        assert primitives.stable_u64("a", 1) == primitives.stable_u64("a", 1)

    def test_part_boundaries_matter(self):
        assert primitives.stable_u64("ab", "c") != primitives.stable_u64("a", "bc")

    def test_types_are_distinguished(self):
        assert primitives.stable_u64("1") != primitives.stable_u64(1)

    def test_bytes_supported(self):
        assert primitives.stable_u64(b"abc") == primitives.stable_u64(b"abc")
        assert primitives.stable_u64(b"abc") != primitives.stable_u64(b"abd")

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            primitives.stable_u64(1.5)  # type: ignore[arg-type]

    def test_known_value_is_stable(self):
        # Pin the concrete value: placements must never change across
        # releases, or deployed systems would shuffle their data.
        assert primitives.stable_u64("anchor", 7) == primitives.stable_u64("anchor", 7)
        first = primitives.stable_u64("anchor", 7)
        assert isinstance(first, int)


class TestUnitInterval:
    def test_range(self):
        for i in range(200):
            value = primitives.unit_interval("x", i)
            assert 0.0 <= value < 1.0

    def test_open_variant_never_zero(self):
        for i in range(200):
            assert primitives.unit_interval_open("x", i) > 0.0

    def test_mean_is_near_half(self):
        n = 20000
        mean = sum(primitives.unit_interval("mean", i) for i in range(n)) / n
        assert abs(mean - 0.5) < 0.01

    def test_uniformity_chi_square(self):
        # 20 equal-width cells, 20k draws: chi^2 (19 dof) should stay well
        # under the 0.999 quantile (~43.8).
        cells = [0] * 20
        n = 20000
        for i in range(n):
            cells[int(primitives.unit_interval("chi", i) * 20)] += 1
        expected = n / 20
        chi2 = sum((count - expected) ** 2 / expected for count in cells)
        assert chi2 < 43.8


class TestHashSequence:
    def test_length_and_determinism(self):
        seq = primitives.hash_sequence(99, 10)
        assert len(seq) == 10
        assert seq == primitives.hash_sequence(99, 10)

    def test_values_distinct(self):
        seq = primitives.hash_sequence(7, 1000)
        assert len(set(seq)) == 1000

    def test_empty(self):
        assert primitives.hash_sequence(1, 0) == []


class TestHashStream:
    def test_draws_are_deterministic(self):
        first = primitives.HashStream("s", 1)
        second = primitives.HashStream("s", 1)
        assert [first.next_u64() for _ in range(5)] == [
            second.next_u64() for _ in range(5)
        ]

    def test_draws_differ_within_stream(self):
        stream = primitives.HashStream("s", 2)
        draws = [stream.next_u64() for _ in range(100)]
        assert len(set(draws)) == 100

    def test_unit_draws_in_range(self):
        stream = primitives.HashStream("s", 3)
        for _ in range(50):
            assert 0.0 <= stream.next_unit() < 1.0

    def test_draw_counter(self):
        stream = primitives.HashStream("s", 4)
        assert stream.draws_made == 0
        stream.next_unit()
        stream.next_u64()
        assert stream.draws_made == 2

    def test_streams_with_different_keys_differ(self):
        a = primitives.HashStream("k", 1)
        b = primitives.HashStream("k", 2)
        assert a.next_u64() != b.next_u64()


class TestBatchPrimitives:
    """The vectorized pipeline must match the scalars bit for bit."""

    # Edge cases: zero, small, sign boundary, top of range, negatives.
    VALUES = [0, 1, 17, 2**31, 2**63 - 1, 2**63, 2**64 - 1, -1, -2**63]

    def test_splitmix64_array_matches_scalar(self):
        result = primitives.splitmix64_array(self.VALUES)
        expected = [
            primitives.splitmix64(value & (2**64 - 1)) for value in self.VALUES
        ]
        assert [int(v) for v in result] == expected

    def test_u64s_from_base_matches_scalar(self):
        base = primitives.derive_base("batch", "test")
        result = primitives.u64s_from_base(base, self.VALUES)
        expected = [
            primitives.u64_from_base(base, value & (2**64 - 1))
            for value in self.VALUES
        ]
        assert [int(v) for v in result] == expected

    def test_units_from_base_matches_scalar(self):
        base = primitives.derive_base("batch", "units")
        result = primitives.units_from_base(base, range(2000))
        expected = [
            primitives.unit_from_base(base, value) for value in range(2000)
        ]
        assert [float(v) for v in result] == expected
        assert all(0.0 <= float(v) < 1.0 for v in result)

    def test_empty_inputs(self):
        assert list(primitives.splitmix64_array([])) == []
        assert list(primitives.u64s_from_base(5, [])) == []
        assert list(primitives.units_from_base(5, [])) == []

    def test_fallback_matches_numpy_path(self, monkeypatch):
        from repro import _compat

        base = primitives.derive_base("batch", "fallback")
        values = list(range(300)) + self.VALUES
        with_numpy = [float(v) for v in primitives.units_from_base(base, values)]
        monkeypatch.setattr(_compat, "np", None)
        assert primitives.splitmix64_array(values) == [
            primitives.splitmix64(value & (2**64 - 1)) for value in values
        ]
        assert primitives.units_from_base(base, values) == with_numpy
        assert primitives.as_u64_array(values) is None
