"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_capacity(self, capsys):
        assert main(["capacity", "--capacities", "100,6,1", "--copies", "2"]) == 0
        out = capsys.readouterr().out
        assert "max storable balls : 7" in out
        assert "False" in out

    def test_place(self, capsys):
        assert main(
            ["place", "--capacities", "5,4,3", "--count", "2", "--copies", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 2

    def test_fairness(self, capsys):
        assert main(
            ["fairness", "--capacities", "5,4,3", "--balls", "2000"]
        ) == 0
        assert "observed" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--capacities", "4,2,1,1", "--balls", "1500"]) == 0
        out = capsys.readouterr().out
        assert "redundant-share" in out
        assert "trivial" in out

    def test_adaptivity(self, capsys):
        assert main(
            ["adaptivity", "--balls", "1000", "--disks", "4", "--base", "500",
             "--step", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "het. add big" in out

    def test_bad_capacities(self):
        with pytest.raises(SystemExit):
            main(["capacity", "--capacities", "abc"])

    def test_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["place", "--strategy", "bogus"])

    def test_durability(self, capsys):
        assert main(["durability", "--mttf", "500", "--mttr", "2"]) == 0
        out = capsys.readouterr().out
        assert "mirror k=2" in out
        assert "RS 4+2" in out

    def test_fast_strategy_available(self, capsys):
        assert main(
            ["fairness", "--capacities", "5,4,3", "--strategy", "fast",
             "--balls", "1000"]
        ) == 0

    def test_growth(self, capsys):
        assert main(
            ["growth", "--balls", "1500", "--base", "500", "--step", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 Disks" in out
        assert "spread" in out

    def test_stats(self, capsys):
        assert main(
            ["stats", "--capacities", "2,1,1", "--balls", "4000",
             "--blocks", "60"]
        ) == 0
        out = capsys.readouterr().out
        assert "chi-square: ACCEPT" in out
        assert "max-deviation: ACCEPT" in out
        assert "Counters" in out
        assert "rebalance.moved_shares" in out
        assert "Trace events" in out

    def test_stats_strict_rejects_trivial(self, capsys):
        assert main(
            ["stats", "--capacities", "2,1,1", "--strategy", "trivial",
             "--balls", "4000", "--no-exercise", "--strict"]
        ) == 1
        assert "REJECT" in capsys.readouterr().out

    def test_stats_jsonl_export(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "trace.jsonl")
        assert main(
            ["stats", "--capacities", "4,3,2", "--balls", "2000",
             "--blocks", "40", "--jsonl", path]
        ) == 0
        kinds = {record["kind"] for record in read_jsonl(path)}
        assert "placement.batch" in kinds
        assert "rebalance.done" in kinds
        assert "failure.round" in kinds


class TestChaosCli:
    def test_chaos_smoke(self, capsys):
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60,60", "--blocks", "40",
             "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "repairs completed" in out
        assert "blocks at risk over time" in out
        assert "chaos.repair.completed" in out

    def test_chaos_strict_passes_on_zero_loss(self, capsys):
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60,60", "--blocks", "40",
             "--copies", "3", "--seed", "1", "--outages", "0", "--flaky", "0",
             "--strict"]
        ) == 0
        assert "blocks lost          0" in capsys.readouterr().out

    def test_chaos_strict_fails_on_data_loss(self, capsys, tmp_path):
        # k=2 with two simultaneous crashes: some blocks must be lost.
        schedule = tmp_path / "schedule.json"
        schedule.write_text(
            '{"faults": ['
            '{"time": 1.0, "kind": "crash", "device": "dev-0"},'
            '{"time": 1.0, "kind": "crash", "device": "dev-1"}]}'
        )
        assert main(
            ["chaos", "--capacities", "60,60,60,60", "--blocks", "40",
             "--copies", "2", "--schedule", str(schedule), "--strict"]
        ) == 1
        assert "data-loss events" in capsys.readouterr().out

    def test_chaos_schedule_file_round_trip(self, capsys, tmp_path):
        from repro.chaos import generate_schedule

        devices = [f"dev-{i}" for i in range(5)]
        schedule = tmp_path / "schedule.json"
        schedule.write_text(
            generate_schedule(devices, seed=3, crashes=1, outages=1).to_json()
        )
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60", "--blocks", "30",
             "--schedule", str(schedule)]
        ) == 0
        assert "schedule (2 faults" in capsys.readouterr().out

    def test_chaos_rejects_bad_schedule_file(self, tmp_path):
        schedule = tmp_path / "broken.json"
        schedule.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot load schedule"):
            main(
                ["chaos", "--capacities", "60,60,60", "--schedule",
                 str(schedule)]
            )

    def test_chaos_seed_from_environment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "23")
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60,60", "--blocks", "30"]
        ) == 0
        assert "seed=23" in capsys.readouterr().out

    def test_chaos_infeasible_shrink_aborts(self, capsys, tmp_path):
        schedule = tmp_path / "shrink.json"
        schedule.write_text(
            '{"faults": [{"time": 1.0, "kind": "shrink", "device": "dev-1"}]}'
        )
        assert main(
            ["chaos", "--capacities", "100,40,40", "--copies", "2",
             "--blocks", "20", "--schedule", str(schedule)]
        ) == 1
        assert "Lemma 2.1" in capsys.readouterr().out

    def test_chaos_jsonl_export(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "chaos.jsonl")
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60,60", "--blocks", "30",
             "--seed", "7", "--jsonl", path]
        ) == 0
        kinds = {record["kind"] for record in read_jsonl(path)}
        assert "chaos.fault" in kinds
        assert "chaos.sample" in kinds
        assert "chaos.finished" in kinds
