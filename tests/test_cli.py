"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_capacity(self, capsys):
        assert main(["capacity", "--capacities", "100,6,1", "--copies", "2"]) == 0
        out = capsys.readouterr().out
        assert "max storable balls : 7" in out
        assert "False" in out

    def test_place(self, capsys):
        assert main(
            ["place", "--capacities", "5,4,3", "--count", "2", "--copies", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 2

    def test_fairness(self, capsys):
        assert main(
            ["fairness", "--capacities", "5,4,3", "--balls", "2000"]
        ) == 0
        assert "observed" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--capacities", "4,2,1,1", "--balls", "1500"]) == 0
        out = capsys.readouterr().out
        assert "redundant-share" in out
        assert "trivial" in out

    def test_adaptivity(self, capsys):
        assert main(
            ["adaptivity", "--balls", "1000", "--disks", "4", "--base", "500",
             "--step", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "het. add big" in out

    def test_bad_capacities(self):
        with pytest.raises(SystemExit):
            main(["capacity", "--capacities", "abc"])

    def test_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["place", "--strategy", "bogus"])

    def test_durability(self, capsys):
        assert main(["durability", "--mttf", "500", "--mttr", "2"]) == 0
        out = capsys.readouterr().out
        assert "mirror k=2" in out
        assert "RS 4+2" in out

    def test_fast_strategy_available(self, capsys):
        assert main(
            ["fairness", "--capacities", "5,4,3", "--strategy", "fast",
             "--balls", "1000"]
        ) == 0

    def test_growth(self, capsys):
        assert main(
            ["growth", "--balls", "1500", "--base", "500", "--step", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 Disks" in out
        assert "spread" in out

    def test_stats(self, capsys):
        assert main(
            ["stats", "--capacities", "2,1,1", "--balls", "4000",
             "--blocks", "60"]
        ) == 0
        out = capsys.readouterr().out
        assert "chi-square: ACCEPT" in out
        assert "max-deviation: ACCEPT" in out
        assert "Counters" in out
        assert "rebalance.moved_shares" in out
        assert "Trace events" in out

    def test_stats_strict_rejects_trivial(self, capsys):
        assert main(
            ["stats", "--capacities", "2,1,1", "--strategy", "trivial",
             "--balls", "4000", "--no-exercise", "--strict"]
        ) == 1
        assert "REJECT" in capsys.readouterr().out

    def test_stats_jsonl_export(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "trace.jsonl")
        assert main(
            ["stats", "--capacities", "4,3,2", "--balls", "2000",
             "--blocks", "40", "--jsonl", path]
        ) == 0
        kinds = {record["kind"] for record in read_jsonl(path)}
        assert "placement.batch" in kinds
        assert "rebalance.done" in kinds
        assert "failure.round" in kinds


class TestChaosCli:
    def test_chaos_smoke(self, capsys):
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60,60", "--blocks", "40",
             "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "repairs completed" in out
        assert "blocks at risk over time" in out
        assert "chaos.repair.completed" in out

    def test_chaos_strict_passes_on_zero_loss(self, capsys):
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60,60", "--blocks", "40",
             "--copies", "3", "--seed", "1", "--outages", "0", "--flaky", "0",
             "--strict"]
        ) == 0
        assert "blocks lost          0" in capsys.readouterr().out

    def test_chaos_strict_fails_on_data_loss(self, capsys, tmp_path):
        # k=2 with two simultaneous crashes: some blocks must be lost.
        schedule = tmp_path / "schedule.json"
        schedule.write_text(
            '{"faults": ['
            '{"time": 1.0, "kind": "crash", "device": "dev-0"},'
            '{"time": 1.0, "kind": "crash", "device": "dev-1"}]}'
        )
        assert main(
            ["chaos", "--capacities", "60,60,60,60", "--blocks", "40",
             "--copies", "2", "--schedule", str(schedule), "--strict"]
        ) == 1
        assert "data-loss events" in capsys.readouterr().out

    def test_chaos_schedule_file_round_trip(self, capsys, tmp_path):
        from repro.chaos import generate_schedule

        devices = [f"dev-{i}" for i in range(5)]
        schedule = tmp_path / "schedule.json"
        schedule.write_text(
            generate_schedule(devices, seed=3, crashes=1, outages=1).to_json()
        )
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60", "--blocks", "30",
             "--schedule", str(schedule)]
        ) == 0
        assert "schedule (2 faults" in capsys.readouterr().out

    def test_chaos_rejects_bad_schedule_file(self, tmp_path):
        schedule = tmp_path / "broken.json"
        schedule.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot load schedule"):
            main(
                ["chaos", "--capacities", "60,60,60", "--schedule",
                 str(schedule)]
            )

    def test_chaos_seed_from_environment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "23")
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60,60", "--blocks", "30"]
        ) == 0
        assert "seed=23" in capsys.readouterr().out

    def test_chaos_infeasible_shrink_aborts(self, capsys, tmp_path):
        schedule = tmp_path / "shrink.json"
        schedule.write_text(
            '{"faults": [{"time": 1.0, "kind": "shrink", "device": "dev-1"}]}'
        )
        assert main(
            ["chaos", "--capacities", "100,40,40", "--copies", "2",
             "--blocks", "20", "--schedule", str(schedule)]
        ) == 1
        assert "Lemma 2.1" in capsys.readouterr().out

    def test_chaos_jsonl_export(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "chaos.jsonl")
        assert main(
            ["chaos", "--capacities", "60,60,60,60,60,60", "--blocks", "30",
             "--seed", "7", "--jsonl", path]
        ) == 0
        kinds = {record["kind"] for record in read_jsonl(path)}
        assert "chaos.fault" in kinds
        assert "chaos.sample" in kinds
        assert "chaos.finished" in kinds


class TestServeCli:
    """Argument validation and typed-error coverage for ``repro serve``."""

    def test_serve_bad_capacities(self):
        with pytest.raises(SystemExit, match="invalid capacity list"):
            main(["serve", "--capacities", "abc"])

    def test_serve_unknown_strategy(self):
        with pytest.raises(SystemExit, match="unknown strategy"):
            main(["serve", "--capacities", "10,10,10", "--strategy", "bogus"])

    def test_serve_infeasible_copies(self):
        # copies > devices: the registry factory's ConfigurationError
        # must surface as a CLI error before anything binds a socket.
        with pytest.raises(SystemExit, match="cannot serve"):
            main(["serve", "--capacities", "10,10,10", "--copies", "5"])

    def test_serve_zero_copies(self):
        with pytest.raises(SystemExit, match="--copies"):
            main(["serve", "--capacities", "10,10,10", "--copies", "0"])

    def test_serve_port_overflow(self):
        # the N blockstores bind port+1..port+N; no room above 65534
        with pytest.raises(SystemExit, match="--port"):
            main(["serve", "--capacities", "10,10,10", "--port", "65534"])

    def test_serve_negative_port(self):
        with pytest.raises(SystemExit, match="--port"):
            main(["serve", "--capacities", "10,10,10", "--port", "-1"])


class TestClientCli:
    """``repro client`` against a live in-process service."""

    @pytest.fixture()
    def service(self):
        from repro.service import ServiceCluster

        from .service.harness import LoopThread

        loop = LoopThread()
        cluster = ServiceCluster.from_capacities(
            [300, 200, 100], copies=3, prefix="store"
        )
        loop.run(cluster.start())
        host, port = cluster.metastore_address
        yield f"{host}:{port}", cluster, loop
        loop.run(cluster.stop())
        loop.stop()

    def test_client_bad_endpoint(self):
        with pytest.raises(SystemExit, match="host:port"):
            main(["client", "ping", "--connect", "nope"])

    def test_client_bad_port_text(self):
        with pytest.raises(SystemExit, match="invalid port"):
            main(["client", "ping", "--connect", "localhost:http"])

    def test_client_port_out_of_range(self):
        with pytest.raises(SystemExit, match="port must be"):
            main(["client", "ping", "--connect", "localhost:70000"])

    def test_client_put_requires_address(self):
        with pytest.raises(SystemExit, match="--address"):
            main(["client", "put", "--connect", "localhost:1", "--payload", "x"])

    def test_client_put_requires_payload(self):
        with pytest.raises(SystemExit, match="--payload"):
            main(["client", "put", "--connect", "localhost:1", "--address", "1"])

    def test_client_connection_refused_exits_nonzero(self, capsys):
        import socket

        # bind-then-close yields a port with no listener
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["client", "ping", "--connect", f"127.0.0.1:{port}"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_client_ping(self, service, capsys):
        endpoint, _, _ = service
        assert main(["client", "ping", "--connect", endpoint]) == 0
        out = capsys.readouterr().out
        assert "pong" in out
        assert "k=3" in out

    def test_client_put_get_where_round_trip(self, service, capsys):
        endpoint, _, _ = service
        assert main(
            ["client", "put", "--connect", endpoint, "--address", "42",
             "--payload", "hello wire"]
        ) == 0
        out = capsys.readouterr().out
        assert "stored 42 on 3/3 copies" in out

        assert main(
            ["client", "get", "--connect", endpoint, "--address", "42"]
        ) == 0
        assert "hello wire" in capsys.readouterr().out

        assert main(
            ["client", "where", "--connect", endpoint, "--address", "42"]
        ) == 0
        devices = capsys.readouterr().out.split()
        assert len(devices) == 3
        assert all(device.startswith("store-") for device in devices)

    def test_client_get_missing_block_exits_nonzero(self, service, capsys):
        endpoint, _, _ = service
        assert main(
            ["client", "get", "--connect", endpoint, "--address", "777"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_client_degraded_read_reports_fallback(self, service, capsys):
        endpoint, cluster, loop = service
        assert main(
            ["client", "put", "--connect", endpoint, "--address", "9",
             "--payload", "resilient"]
        ) == 0
        primary = capsys.readouterr()  # discard the put report
        devices = loop.run(_where(cluster, 9))
        loop.run(cluster.kill_blockstore(devices[0]))
        assert main(
            ["client", "get", "--connect", endpoint, "--address", "9"]
        ) == 0
        out = capsys.readouterr().out
        assert "resilient" in out
        assert "degraded read" in out

    def test_client_metrics(self, service, capsys):
        endpoint, _, _ = service
        assert main(["client", "ping", "--connect", endpoint]) == 0
        capsys.readouterr()
        assert main(["client", "metrics", "--connect", endpoint]) == 0
        out = capsys.readouterr().out
        assert '"metastore.requests"' in out
        assert '"metastore.request_ms"' in out


async def _where(cluster, address):
    """Placement of one address straight from the metastore's strategy."""
    return list(cluster.metastore.strategy.place(address))


class TestChaosFleetCli:
    FAST = [
        "chaos", "--fleet", "--devices", "8", "--blocks", "200",
        "--copies", "2", "--years", "1", "--epochs-per-year", "12",
        "--failure-rate", "2.0", "--repair-rate", "20.0", "--seed", "3",
    ]

    def test_fleet_smoke(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "mean-field fit" in out
        assert "copy-count timeline" in out
        assert "chaos.fleet.epochs" in out

    def test_fleet_phase_diagram(self, capsys):
        assert main(self.FAST + ["--phase", "0,5,50"]) == 0
        out = capsys.readouterr().out
        assert "durability vs repair rate" in out
        assert "lost_frac" in out

    def test_fleet_phase_rejects_bad_rates(self):
        with pytest.raises(SystemExit):
            main(self.FAST + ["--phase", "fast,slow"])

    def test_fleet_rejects_bad_options(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--fleet", "--devices", "0"])

    def test_fleet_jsonl_export(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = str(tmp_path / "fleet.jsonl")
        assert main(self.FAST + ["--jsonl", path]) == 0
        kinds = {record["kind"] for record in read_jsonl(path)}
        assert "chaos.fleet.sample" in kinds
        assert "chaos.fleet.finished" in kinds

    def test_fleet_strict_fails_on_data_loss(self, capsys):
        # k=2, brutal failure rate, no repair: loss is certain.
        assert main(
            ["chaos", "--fleet", "--devices", "6", "--blocks", "60",
             "--copies", "2", "--years", "1", "--epochs-per-year", "12",
             "--failure-rate", "12.0", "--repair-rate", "0", "--seed", "1",
             "--strict", "--tv-tolerance", "1.0"]
        ) == 1
        assert "blocks lost" in capsys.readouterr().out

    def test_fleet_strict_passes_when_calm(self, capsys):
        assert main(
            ["chaos", "--fleet", "--devices", "8", "--blocks", "200",
             "--copies", "3", "--years", "1", "--epochs-per-year", "12",
             "--failure-rate", "0.0", "--repair-rate", "20.0",
             "--strict"]
        ) == 0


class TestStrategyOptionsCli:
    """``--strategy-opt key=value`` flows through the registry schemas."""

    def test_place_accepts_new_strategies(self, capsys):
        assert main(
            ["place", "--capacities", "5,4,3", "--count", "3",
             "--strategy", "sequential-checking"]
        ) == 0
        assert capsys.readouterr().out.count("\n") == 3

    def test_rpdp_rates_parse_from_the_command_line(self, capsys):
        assert main(
            ["place", "--capacities", "5,4,3", "--count", "3",
             "--strategy", "rpdp", "--strategy-opt", "service_rates=1,2,4"]
        ) == 0
        assert capsys.readouterr().out.count("\n") == 3

    def test_striping_resolution_option(self, capsys):
        assert main(
            ["fairness", "--capacities", "5,4,3", "--balls", "500",
             "--strategy", "striping", "--strategy-opt", "resolution=8"]
        ) == 0
        assert "observed" in capsys.readouterr().out

    def test_alias_resolves_before_option_validation(self, capsys):
        assert main(
            ["place", "--capacities", "5,4,3", "--count", "1",
             "--strategy", "seq-check", "--strategy-opt", "overflow=wrap"]
        ) == 0

    def test_unknown_option_key_exits_with_declared_names(self):
        with pytest.raises(SystemExit, match="service_rates"):
            main(
                ["place", "--capacities", "5,4,3",
                 "--strategy", "rpdp", "--strategy-opt", "rates=1,2,3"]
            )

    def test_ill_typed_option_value_exits(self):
        with pytest.raises(SystemExit, match="resolution"):
            main(
                ["place", "--capacities", "5,4,3",
                 "--strategy", "striping",
                 "--strategy-opt", "resolution=wide"]
            )

    def test_option_on_optionless_strategy_exits(self):
        with pytest.raises(SystemExit, match="declares no options"):
            main(
                ["place", "--capacities", "5,4,3",
                 "--strategy", "trivial", "--strategy-opt", "resolution=8"]
            )

    def test_malformed_pair_exits(self):
        with pytest.raises(SystemExit, match="key=value"):
            main(
                ["place", "--capacities", "5,4,3",
                 "--strategy", "rpdp", "--strategy-opt", "service_rates"]
            )
