"""Regression pin of the request-balance bench's output schema.

``BENCH_sched.json`` / ``BENCH_history.jsonl`` records are consumed
downstream, so the key sets are pinned here as literals — changing the
bench payload shape must break this test first.
"""

import importlib
import pathlib
import sys

import pytest

from repro.scheduling import scheduler_names

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def bench():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        return importlib.import_module("bench_table_request_balance")
    finally:
        sys.path.remove(str(BENCH_DIR))


def test_payload_schema_is_pinned(bench):
    assert bench.PAYLOAD_KEYS == (
        "benchmark",
        "copies",
        "curve",
        "numpy",
        "requests",
        "universe",
    )
    assert bench.CURVE_KEYS == (
        "alpha",
        "lower_bound",
        "peak_count",
        "peak_load",
        "peak_share",
        "policy",
        "strategy",
    )


def test_ablation_sweeps_scheduler_registry_policies(bench):
    # Every ablation policy resolves in the registry (aliases included).
    from repro.scheduling import lookup

    for policy in bench.ABLATION_POLICIES:
        assert lookup(policy).online, policy
    assert bench.ABLATION_POLICIES[0] == "primary"  # the baseline column


def test_reduced_curve_rows_match_schema(bench, monkeypatch):
    monkeypatch.setattr(bench, "REQUESTS", 2_000)
    monkeypatch.setattr(bench, "UNIVERSE", 200)
    monkeypatch.setattr(bench, "CURVE_STRATEGIES", ("redundant-share",))
    monkeypatch.setattr(bench, "CURVE_ALPHAS", (1.1,))
    rows = bench.run_skew_curve()
    assert len(rows) == len(scheduler_names())
    seen = set()
    for row in rows:
        assert tuple(sorted(row)) == bench.CURVE_KEYS
        assert row["strategy"] == "redundant-share"
        assert row["alpha"] == 1.1
        assert 0.0 < row["peak_share"] <= 1.0
        assert row["peak_count"] <= 2_000
        seen.add(row["policy"])
    assert seen == set(scheduler_names())
    # 8 curve devices <= MAX_EXACT_DEVICES, so the bound is always real.
    by_policy = {row["policy"]: row for row in rows}
    bound = by_policy["water-filling"]["lower_bound"]
    assert bound is not None and bound > 0
    for row in rows:
        assert row["peak_load"] >= bound - 1e-6, row["policy"]
