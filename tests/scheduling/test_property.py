"""Property suite for scheduler invariants.

The contracts pinned here, across random pools, replication degrees,
offline subsets and address streams:

* every choice is a position of the block's ``k`` placed copies, and the
  chosen device is available — an offline device is never selected;
* a fixed seed is fully deterministic: two fresh schedulers replay the
  same stream with identical positions and identical load state;
* ``choose_many`` is bit-for-bit the scalar ``choose`` loop — positions,
  loads, counts, rotation state and cache transitions — on the NumPy
  leg *and* the pure-Python leg (``repro._compat.np`` monkeypatched).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro._compat as compat
from repro.core import RedundantShare
from repro.exceptions import DeviceUnavailableError
from repro.scheduling import LruCacheModel, create, scheduler_names
from repro.types import bins_from_capacities

ONLINE_POLICIES = scheduler_names(online_only=True)

capacities_vectors = st.lists(
    st.integers(min_value=1, max_value=2_000), min_size=4, max_size=10
)
replication_degrees = st.integers(min_value=2, max_value=3)
address_lists = st.lists(
    st.integers(min_value=0, max_value=2**48), min_size=1, max_size=48
)
seeds = st.integers(min_value=0, max_value=2**16)


def build_placements(capacities, copies, addresses):
    """Real placements for the stream: one strategy call per block."""
    bins = bins_from_capacities(capacities)
    strategy = RedundantShare(bins, copies=copies)
    placed = {}
    rows = []
    for address in addresses:
        row = placed.get(address)
        if row is None:
            row = placed[address] = tuple(strategy.place(address))
        rows.append(row)
    return [spec.bin_id for spec in bins], rows


def draw_offline(data, device_ids, copies):
    """An offline subset small enough to keep every placement servable.

    Placements are ``copies`` distinct devices, so knocking out at most
    ``copies - 1`` devices can never strand a block.
    """
    return data.draw(
        st.lists(
            st.sampled_from(device_ids),
            max_size=copies - 1,
            unique=True,
        )
    )


@pytest.mark.parametrize("policy", ONLINE_POLICIES)
@given(
    capacities=capacities_vectors,
    copies=replication_degrees,
    addresses=address_lists,
    seed=seeds,
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_choice_is_always_an_available_copy(
    policy, capacities, copies, addresses, seed, data
):
    device_ids, rows = build_placements(capacities, copies, addresses)
    offline = draw_offline(data, device_ids, copies)
    scheduler = create(policy, device_ids, seed=seed)
    for device_id in offline:
        scheduler.mark_offline(device_id)
    for address, row in zip(addresses, rows):
        position = scheduler.choose(address, row)
        assert 0 <= position < copies
        assert scheduler.is_available(row[position])
        assert row[position] not in offline
    assert scheduler.requests == len(addresses)
    assert sum(scheduler.counts().values()) == len(addresses)


@pytest.mark.parametrize("policy", ONLINE_POLICIES)
@given(
    capacities=capacities_vectors,
    copies=replication_degrees,
    addresses=address_lists,
    seed=seeds,
)
@settings(max_examples=20, deadline=None)
def test_fixed_seed_is_deterministic(policy, capacities, copies, addresses, seed):
    device_ids, rows = build_placements(capacities, copies, addresses)
    first = create(policy, device_ids, seed=seed)
    second = create(policy, device_ids, seed=seed)
    positions_first = [first.choose(a, row) for a, row in zip(addresses, rows)]
    positions_second = [second.choose(a, row) for a, row in zip(addresses, rows)]
    assert positions_first == positions_second
    assert first.loads() == second.loads()
    assert first.counts() == second.counts()


@pytest.mark.parametrize("leg", ["numpy", "pure"])
@pytest.mark.parametrize("policy", ONLINE_POLICIES)
@given(
    capacities=capacities_vectors,
    copies=replication_degrees,
    addresses=address_lists,
    seed=seeds,
    use_cache=st.booleans(),
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_batch_matches_scalar_loop(
    leg, policy, capacities, copies, addresses, seed, use_cache, data
):
    if leg == "numpy" and compat.np is None:
        pytest.skip("NumPy unavailable")
    device_ids, rows = build_placements(capacities, copies, addresses)
    offline = draw_offline(data, device_ids, copies)
    saved = compat.np
    if leg == "pure":
        compat.np = None
    try:
        scalar_cache = LruCacheModel(4) if use_cache else None
        batch_cache = LruCacheModel(4) if use_cache else None
        scalar = create(policy, device_ids, seed=seed, cache=scalar_cache)
        batch = create(policy, device_ids, seed=seed, cache=batch_cache)
        for device_id in offline:
            scalar.mark_offline(device_id)
            batch.mark_offline(device_id)
        expected = [scalar.choose(a, row) for a, row in zip(addresses, rows)]
        got = [int(p) for p in batch.choose_many(addresses, rows)]
        assert got == expected
        assert batch.loads() == scalar.loads()
        assert batch.counts() == scalar.counts()
        assert batch.requests == scalar.requests
        if use_cache:
            assert batch_cache.hits == scalar_cache.hits
            assert batch_cache.misses == scalar_cache.misses
            assert batch_cache.device_stats() == scalar_cache.device_stats()
        # Carried state (rotation counters, loads) agrees too: the next
        # scalar choice after the batch must coincide.
        follow_up_scalar = scalar.choose(addresses[0], rows[0])
        follow_up_batch = batch.choose(addresses[0], rows[0])
        assert follow_up_batch == follow_up_scalar
    finally:
        compat.np = saved


@pytest.mark.parametrize("policy", list(ONLINE_POLICIES) + ["water-filling"])
@given(
    capacities=capacities_vectors,
    copies=replication_degrees,
    addresses=address_lists,
    seed=seeds,
)
@settings(max_examples=15, deadline=None)
def test_numpy_and_pure_legs_agree(policy, capacities, copies, addresses, seed):
    if compat.np is None:
        pytest.skip("NumPy unavailable")
    device_ids, rows = build_placements(capacities, copies, addresses)

    def run():
        scheduler = create(policy, device_ids, seed=seed)
        positions = [int(p) for p in scheduler.choose_many(addresses, rows)]
        return positions, scheduler.loads(), scheduler.counts()

    fast = run()
    saved = compat.np
    compat.np = None
    try:
        pure = run()
    finally:
        compat.np = saved
    assert pure[0] == fast[0]
    assert pure[1] == {k: float(v) for k, v in fast[1].items()}
    assert pure[2] == {k: int(v) for k, v in fast[2].items()}


@given(
    capacities=capacities_vectors,
    copies=replication_degrees,
    addresses=address_lists,
    seed=seeds,
)
@settings(max_examples=15, deadline=None)
def test_water_filling_schedule_is_valid_and_bounded(
    capacities, copies, addresses, seed
):
    device_ids, rows = build_placements(capacities, copies, addresses)
    scheduler = create("water-filling", device_ids, seed=seed)
    positions = scheduler.choose_many(addresses, rows)
    peak = 0.0
    for position, row in zip(positions, rows):
        assert 0 <= position < copies
        assert scheduler.is_available(row[position])
    peak = max(scheduler.loads().values())
    bound = scheduler.last_lower_bound
    assert bound is not None  # pools here are <= 10 devices
    # online/offline alike, no schedule beats the fractional optimum
    assert peak >= bound - 1e-9


@pytest.mark.parametrize("policy", ONLINE_POLICIES)
def test_all_copies_offline_raises(policy):
    scheduler = create(policy, ["d0", "d1", "d2"], seed=1)
    for device_id in ("d0", "d1"):
        scheduler.mark_offline(device_id)
    with pytest.raises(DeviceUnavailableError):
        scheduler.choose(7, ["d0", "d1"])
    # and the error left no partial accounting behind
    assert scheduler.requests == 0


@pytest.mark.parametrize("policy", ONLINE_POLICIES)
@given(
    capacities=capacities_vectors,
    copies=replication_degrees,
    address=st.integers(min_value=0, max_value=2**48),
    seed=seeds,
)
@settings(max_examples=15, deadline=None)
def test_order_is_a_permutation_led_by_the_choice(
    policy, capacities, copies, address, seed
):
    device_ids, rows = build_placements(capacities, copies, [address])
    probe = create(policy, device_ids, seed=seed)
    expected_first = probe.choose(address, rows[0])
    scheduler = create(policy, device_ids, seed=seed)
    order = scheduler.order(address, rows[0])
    assert order[0] == expected_first
    assert sorted(order) == list(range(copies))
    assert order[1:] == sorted(order[1:])
