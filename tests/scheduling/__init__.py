"""Tests for the read-scheduling layer."""
