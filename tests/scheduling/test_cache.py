"""Tests for the per-device LRU cache model."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scheduling import LruCacheModel


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"capacity": -3},
            {"capacity": 4, "hit_cost": -0.1},
            {"capacity": 4, "miss_cost": 0.0},
            {"capacity": 4, "hit_cost": 2.0, "miss_cost": 1.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LruCacheModel(**kwargs)


class TestCosts:
    def test_miss_then_hit(self):
        cache = LruCacheModel(4, hit_cost=0.25, miss_cost=1.0)
        assert cache.cost("d0", 7) == 1.0
        assert cache.cost("d0", 7) == 0.25
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_devices_have_independent_caches(self):
        cache = LruCacheModel(4)
        cache.cost("d0", 7)
        # Same address on another device is a fresh miss.
        assert cache.cost("d1", 7) == cache.miss_cost
        assert cache.resident_on("d0") == 1
        assert cache.resident_on("d1") == 1

    def test_hit_rate_zero_before_any_access(self):
        assert LruCacheModel(1).hit_rate() == 0.0


class TestEviction:
    def test_lru_entry_is_evicted(self):
        cache = LruCacheModel(2)
        cache.cost("d0", 1)
        cache.cost("d0", 2)
        cache.cost("d0", 3)  # evicts 1
        assert cache.resident_on("d0") == 2
        assert cache.cost("d0", 1) == cache.miss_cost  # gone
        assert cache.cost("d0", 3) == cache.hit_cost  # still resident

    def test_hit_refreshes_recency(self):
        cache = LruCacheModel(2)
        cache.cost("d0", 1)
        cache.cost("d0", 2)
        cache.cost("d0", 1)  # 1 is now most recent
        cache.cost("d0", 3)  # evicts 2, not 1
        assert cache.cost("d0", 1) == cache.hit_cost
        assert cache.cost("d0", 2) == cache.miss_cost


class TestAccounting:
    def test_device_stats(self):
        cache = LruCacheModel(4)
        cache.cost("d0", 1)
        cache.cost("d0", 1)
        cache.cost("d1", 2)
        assert cache.device_stats() == {
            "d0": {"hits": 1, "misses": 1},
            "d1": {"hits": 0, "misses": 1},
        }

    def test_reset_clears_everything(self):
        cache = LruCacheModel(4)
        cache.cost("d0", 1)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.resident_on("d0") == 0
        assert cache.device_stats() == {}
        assert cache.cost("d0", 1) == cache.miss_cost
