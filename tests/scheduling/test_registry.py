"""Tests for the scheduler registry: names, aliases, factories."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scheduling import (
    LruCacheModel,
    ReadScheduler,
    WaterFillingScheduler,
    create,
    lookup,
    registered_schedulers,
    scheduler_names,
)

DEVICES = ["d0", "d1", "d2", "d3"]


class TestLookup:
    def test_canonical_names_resolve(self):
        for name in scheduler_names():
            assert lookup(name).name == name

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("first", "primary"),
            ("rotate", "round-robin"),
            ("round_robin", "round-robin"),
            ("ll", "least-loaded"),
            ("least_loaded", "least-loaded"),
            ("po2", "power-of-two"),
            ("power_of_two", "power-of-two"),
            ("power-of-two-choices", "power-of-two"),
            ("wf", "water-filling"),
            ("water_filling", "water-filling"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert lookup(alias) is lookup(canonical)

    def test_unknown_name_lists_registered_policies(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            lookup("no-such-policy")

    def test_unknown_name_message_lists_canonical_names_once(self):
        with pytest.raises(
            ConfigurationError, match="unknown scheduling policy"
        ) as info:
            lookup("no-such-policy")
        message = str(info.value)
        assert "'round-robin'" in message
        # Aliases never pad the choices list out.
        assert "po2" not in message and "rotate" not in message


class TestNames:
    def test_water_filling_is_offline(self):
        assert not lookup("water-filling").online
        assert all(
            lookup(name).online for name in scheduler_names(online_only=True)
        )

    def test_online_only_excludes_offline_baselines(self):
        names = scheduler_names(online_only=True)
        assert "water-filling" not in names
        assert "power-of-two" in names

    def test_include_aliases(self):
        names = scheduler_names(include_aliases=True)
        assert "po2" in names and "rotate" in names

    def test_registration_order_is_stable(self):
        assert scheduler_names() == tuple(
            entry.name for entry in registered_schedulers()
        )


class TestCreate:
    def test_builds_named_scheduler(self):
        for name in scheduler_names():
            scheduler = create(name, DEVICES, seed=3)
            assert isinstance(scheduler, ReadScheduler)
            assert scheduler.name == name
            assert scheduler.device_ids == DEVICES
            assert scheduler.seed == 3

    def test_alias_builds_canonical_policy(self):
        assert create("po2", DEVICES).name == "power-of-two"
        assert isinstance(create("wf", DEVICES), WaterFillingScheduler)

    def test_cache_is_threaded_through(self):
        cache = LruCacheModel(8)
        scheduler = create("least-loaded", DEVICES, cache=cache)
        assert scheduler.cache is cache

    def test_offline_baseline_refuses_per_request_choose(self):
        scheduler = create("water-filling", DEVICES)
        with pytest.raises(ConfigurationError, match="offline"):
            scheduler.choose(1, DEVICES[:3])


class TestOptions:
    """The scheduler registry mirrors the placement registry's typed
    option schemas: declared keys with defaults, everything else a
    :class:`ConfigurationError` naming the offender."""

    def test_randomized_policies_declare_namespace(self):
        for name in ("random", "round-robin", "power-of-two"):
            specs = {spec.name: spec for spec in lookup(name).options}
            assert set(specs) == {"namespace"}
            assert specs["namespace"].default == ""

    def test_namespace_option_threads_through_create(self):
        tagged = create("power-of-two", DEVICES, seed=7, namespace="bench")
        plain = create("power-of-two", DEVICES, seed=7)
        assert tagged.name == plain.name == "power-of-two"
        # A distinct namespace reshuffles the per-request draws.
        picks = lambda s: [s.choose(a, DEVICES) for a in range(64)]
        assert picks(tagged) != picks(plain)

    def test_unknown_option_key_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown option"):
            create("random", DEVICES, namespc="typo")

    def test_wrong_option_type_is_rejected(self):
        with pytest.raises(ConfigurationError, match="namespace"):
            create("round-robin", DEVICES, namespace=7)

    def test_options_to_none_declaring_policy_are_rejected(self):
        assert lookup("least-loaded").options == ()
        with pytest.raises(ConfigurationError, match="declares no options"):
            create("least-loaded", DEVICES, namespace="x")
