"""Statistical acceptance tests for the scheduling policies.

Everything here is deterministic (fixed seeds, derived randomness), so
these are acceptance *pins*, not flake-prone samples:

* under uniform traffic on a mirrored homogeneous pool, per-device
  request shares pass the chi-square fairness test against capacity
  shares — the paper's fairness definition extended from data to
  requests;
* under Zipf ``alpha = 1.1``, the load-feedback policies (least-loaded,
  power-of-two) never lose to blind random on peak device load, and no
  online policy beats the water-filling fractional optimum (a theorem,
  so the gate cannot flake);
* a flash crowd — the worst case for copy scheduling — is flattened by
  two choices to a fraction of the primary-copy peak.
"""

import pytest

from repro.core import RedundantShare
from repro.metrics import chi_square_fairness
from repro.scheduling import create, fractional_lower_bound, run_reads
from repro.types import bins_from_capacities
from repro.workloads import ZipfGenerator, flash_crowd_sample, uniform_sample

MIRROR_CAPACITIES = [1000] * 8
SKEW_CAPACITIES = [1500, 1500, 1000, 1000, 800, 800]
REQUESTS = 20_000
UNIVERSE = 2_000


def make_pool(capacities, copies):
    bins = bins_from_capacities(capacities, prefix="disk")
    strategy = RedundantShare(bins, copies=copies)
    return strategy, [spec.bin_id for spec in bins]


def peak_load(strategy, device_ids, policy, addresses, seed=7):
    scheduler = create(policy, device_ids, seed=seed)
    return run_reads(strategy, scheduler, addresses).peak_load()


class TestUniformFairness:
    """Chi-square: request shares track capacity shares (Section 1)."""

    @pytest.mark.parametrize(
        "policy", ["random", "round-robin", "least-loaded", "power-of-two"]
    )
    def test_request_shares_accepted_on_mirrored_pool(self, policy):
        strategy, device_ids = make_pool(MIRROR_CAPACITIES, copies=2)
        addresses = uniform_sample(6_000, 3_000, seed=11)
        scheduler = create(policy, device_ids, seed=5)
        outcome = run_reads(strategy, scheduler, addresses)
        expected = {device: 1 / len(device_ids) for device in device_ids}
        verdict = chi_square_fairness(outcome.device_counts, expected)
        assert verdict.accepted, verdict.summary()

    def test_chi_square_has_power_to_reject_hotspots(self):
        """The same test rejects primary-copy scheduling under Zipf —
        the acceptance above is not vacuous."""
        strategy, device_ids = make_pool(SKEW_CAPACITIES, copies=3)
        addresses = ZipfGenerator(UNIVERSE, alpha=1.1, seed=13).sample(REQUESTS)
        outcome = run_reads(strategy, create("primary", device_ids, seed=7), addresses)
        total = sum(SKEW_CAPACITIES)
        expected = {
            spec.bin_id: spec.capacity / total for spec in strategy.bins
        }
        verdict = chi_square_fairness(outcome.device_counts, expected)
        assert not verdict.accepted, verdict.summary()


class TestZipfPeakOrdering:
    """Peak-load ordering under Zipf(1.1): feedback <= blind <= primary,
    and everything >= the offline fractional optimum."""

    @pytest.fixture(scope="class")
    def peaks(self):
        strategy, device_ids = make_pool(SKEW_CAPACITIES, copies=3)
        addresses = ZipfGenerator(UNIVERSE, alpha=1.1, seed=13).sample(REQUESTS)
        loads = {
            policy: peak_load(strategy, device_ids, policy, addresses)
            for policy in (
                "primary",
                "random",
                "round-robin",
                "least-loaded",
                "power-of-two",
                "water-filling",
            )
        }
        bound = fractional_lower_bound(strategy, addresses)
        return loads, bound

    def test_feedback_policies_beat_random(self, peaks):
        loads, _ = peaks
        assert loads["least-loaded"] <= loads["random"]
        assert loads["power-of-two"] <= loads["random"]

    def test_every_spreading_policy_beats_primary(self, peaks):
        loads, _ = peaks
        for policy in ("random", "round-robin", "least-loaded", "power-of-two"):
            assert loads[policy] < loads["primary"], policy

    def test_no_schedule_beats_the_fractional_optimum(self, peaks):
        loads, bound = peaks
        assert bound is not None and bound > 0
        for policy, load in loads.items():
            assert load >= bound - 1e-6, policy

    def test_water_filling_is_the_best_realized_schedule(self, peaks):
        loads, bound = peaks
        best_online = min(
            load for policy, load in loads.items() if policy != "water-filling"
        )
        assert loads["water-filling"] <= best_online
        # and the hindsight schedule sits within one request of the
        # fractional optimum on this stream
        assert loads["water-filling"] <= bound + 1.0


class TestFlashCrowd:
    def test_two_choices_flatten_the_crowd(self):
        strategy, device_ids = make_pool(SKEW_CAPACITIES, copies=3)
        addresses = flash_crowd_sample(
            REQUESTS, UNIVERSE, crowd_weight=0.7, crowd_size=2, seed=21
        )
        primary = peak_load(strategy, device_ids, "primary", addresses)
        po2 = peak_load(strategy, device_ids, "power-of-two", addresses)
        # The crowd window melts the primary copy; two choices spread it
        # over the replica sets (under a third of the primary peak).
        assert po2 < primary / 3
        assert po2 < 0.25 * REQUESTS
