"""Tests for the shared report rendering."""

from repro.reporting import (
    format_percent,
    print_table,
    render_table,
    share_table,
)


class TestRenderTable:
    def test_contains_title_and_cells(self):
        text = render_table("My Title", ["a", "b"], [[1, 2], [30, 40]])
        assert "=== My Title ===" in text
        assert "30" in text
        assert "b" in text

    def test_columns_aligned(self):
        text = render_table("t", ["col"], [["x"], ["longer-value"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # header rule and rows share the width

    def test_empty_rows(self):
        text = render_table("t", ["a"], [])
        assert "=== t ===" in text

    def test_print_table(self, capsys):
        print_table("t", ["a"], [[5]])
        assert "5" in capsys.readouterr().out


class TestFormatters:
    def test_format_percent(self):
        assert format_percent(0.1234) == "12.34%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_share_table_merges_keys(self):
        text = share_table("s", {"alpha": 0.5}, {"alpha": 0.4, "beta": 0.6})
        assert "50.00%" in text
        assert "60.00%" in text
        assert text.index("alpha") < text.index("beta")  # sorted keys
        # Missing observed value renders as zero.
        assert "0.00%" in text
