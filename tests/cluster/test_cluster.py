"""Integration-grade tests for the Cluster (write/read, reconfig, failure)."""

import pytest

from repro.cluster import Cluster, FailureInjector
from repro.core import RedundantShare
from repro.erasure import MirrorCode, ReedSolomonCode
from repro.exceptions import (
    BlockNotFoundError,
    ConfigurationError,
    DecodingError,
    DeviceNotFoundError,
)
from repro.types import BinSpec, bins_from_capacities


def make_cluster(capacities=(2000, 1600, 1200, 800), copies=2, code=None):
    return Cluster(
        bins_from_capacities(list(capacities)),
        lambda bins: RedundantShare(bins, copies=copies),
        code=code,
    )


def fill(cluster, blocks):
    for address in range(blocks):
        cluster.write(address, f"payload-{address}".encode())


class TestDataPath:
    def test_write_read_round_trip(self):
        cluster = make_cluster()
        fill(cluster, 200)
        for address in range(200):
            assert cluster.read(address) == f"payload-{address}".encode()
        cluster.verify()

    def test_unknown_block_raises(self):
        with pytest.raises(BlockNotFoundError):
            make_cluster().read(5)

    def test_overwrite(self):
        cluster = make_cluster()
        cluster.write(1, b"old")
        cluster.write(1, b"new-and-longer")
        assert cluster.read(1) == b"new-and-longer"
        cluster.verify()

    def test_delete(self):
        cluster = make_cluster()
        cluster.write(1, b"x")
        cluster.delete(1)
        with pytest.raises(BlockNotFoundError):
            cluster.read(1)
        with pytest.raises(BlockNotFoundError):
            cluster.delete(1)
        cluster.verify()

    def test_code_share_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cluster(copies=2, code=MirrorCode(3))

    def test_usage_tracks_map(self):
        cluster = make_cluster()
        fill(cluster, 100)
        stats = cluster.stats()
        assert sum(stats.devices.values()) == 200  # 2 shares per block


class TestReconfiguration:
    def test_add_device_migrates_and_stays_consistent(self):
        cluster = make_cluster()
        fill(cluster, 300)
        report = cluster.add_device(BinSpec("bin-new", 1500))
        assert report.trigger == "add"
        assert report.moved_shares > 0
        assert report.used_on_affected > 0
        cluster.verify()
        for address in range(300):
            assert cluster.read(address) == f"payload-{address}".encode()

    def test_add_duplicate_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ConfigurationError):
            cluster.add_device(BinSpec("bin-0", 10))

    def test_remove_device_drains(self):
        cluster = make_cluster()
        fill(cluster, 300)
        report = cluster.remove_device("bin-3")
        assert report.trigger == "remove"
        assert "bin-3" not in cluster.device_ids()
        cluster.verify()
        for address in range(300):
            assert cluster.read(address) == f"payload-{address}".encode()

    def test_remove_unknown_rejected(self):
        with pytest.raises(DeviceNotFoundError):
            make_cluster().remove_device("ghost")

    def test_movement_factor_is_bounded(self):
        cluster = make_cluster((1000,) * 8)
        fill(cluster, 500)
        report = cluster.add_device(BinSpec("zz-new", 1000))
        # Lemma 3.2: expected 4-competitive for k=2.
        assert report.movement_factor < 6.0

    def test_events_logged(self):
        cluster = make_cluster()
        fill(cluster, 10)
        cluster.add_device(BinSpec("bin-new", 500))
        cluster.remove_device("bin-new")
        assert len(cluster.log.of_kind("device-added")) == 1
        assert len(cluster.log.of_kind("device-removed")) == 1


class TestFailures:
    def test_read_survives_single_failure(self):
        cluster = make_cluster()
        fill(cluster, 200)
        cluster.fail_device("bin-0")
        for address in range(200):
            assert cluster.read(address) == f"payload-{address}".encode()

    def test_double_failure_loses_some_blocks_k2(self):
        cluster = make_cluster()
        fill(cluster, 300)
        cluster.fail_device("bin-0")
        cluster.fail_device("bin-1")
        lost = 0
        for address in range(300):
            try:
                cluster.read(address)
            except DecodingError:
                lost += 1
        assert lost > 0

    def test_repair_restores_everything(self):
        cluster = make_cluster()
        fill(cluster, 200)
        cluster.fail_device("bin-1")
        rebuilt = cluster.repair_device("bin-1")
        assert rebuilt > 0
        cluster.verify()
        for address in range(200):
            assert cluster.read(address) == f"payload-{address}".encode()

    def test_injector_round_trip(self):
        cluster = make_cluster()
        fill(cluster, 150)
        injector = FailureInjector(seed=42)
        report = injector.crash(cluster, 1, repair=True)
        assert report.lost_blocks == 0
        assert report.readable_blocks == 150
        assert report.rebuilt_shares > 0
        cluster.verify()

    def test_injector_victim_count_validated(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            FailureInjector().choose_victims(cluster, 10)

    def test_degraded_write_then_repair(self):
        """Writes during a failure skip the dead device; repair backfills.

        Regression test for the bug found by the stateful model test: a
        write whose placement includes a failed device used to crash.
        """
        cluster = make_cluster()
        cluster.fail_device("bin-0")
        for address in range(120):
            cluster.write(address, f"degraded-{address}".encode())
        # Everything is readable from the surviving copies.
        for address in range(120):
            assert cluster.read(address) == f"degraded-{address}".encode()
        rebuilt = cluster.repair_device("bin-0")
        assert rebuilt > 0  # the skipped shares were backfilled
        cluster.verify()
        # Full redundancy restored: bin-0 alone can now cover a different
        # single failure.
        cluster.fail_device("bin-1")
        for address in range(120):
            assert cluster.read(address) == f"degraded-{address}".encode()


class TestWithReedSolomon:
    def test_rs_cluster_round_trip_and_rebuild(self):
        # 3 data + 2 parity = 5 shares placed on 6 devices.
        cluster = Cluster(
            bins_from_capacities([1000] * 6),
            lambda bins: RedundantShare(bins, copies=5),
            code=ReedSolomonCode(3, 2),
        )
        for address in range(100):
            cluster.write(address, f"rs-{address}".encode() * 3)
        cluster.fail_device("bin-2")
        cluster.fail_device("bin-4")
        for address in range(100):
            assert cluster.read(address) == f"rs-{address}".encode() * 3
        cluster.repair_device("bin-2")
        cluster.repair_device("bin-4")
        cluster.verify()

    def test_rs_migration_rebuilds_from_parity(self):
        cluster = Cluster(
            bins_from_capacities([1000] * 6),
            lambda bins: RedundantShare(bins, copies=5),
            code=ReedSolomonCode(3, 2),
        )
        for address in range(60):
            cluster.write(address, bytes([address % 251]) * 48)
        cluster.add_device(BinSpec("bin-new", 1000))
        cluster.verify()
        for address in range(60):
            assert cluster.read(address) == bytes([address % 251]) * 48
