"""Tests for cluster snapshot/restore."""

import pytest

from repro.cluster import (
    Cluster,
    restore_from_json,
    restore_snapshot,
    snapshot_to_json,
    take_snapshot,
)
from repro.core import RedundantShare
from repro.erasure import ReedSolomonCode
from repro.exceptions import ConfigurationError
from repro.types import BinSpec, bins_from_capacities


def factory(bins):
    return RedundantShare(bins, copies=2)


def make_cluster():
    cluster = Cluster(bins_from_capacities([2000, 1500, 1000]), factory)
    for address in range(120):
        cluster.write(address, f"snap-{address}".encode())
    return cluster


class TestSnapshotRoundTrip:
    def test_restores_all_data(self):
        original = make_cluster()
        restored = restore_snapshot(take_snapshot(original), factory)
        assert restored.block_count == 120
        for address in range(120):
            assert restored.read(address) == f"snap-{address}".encode()
        restored.verify()

    def test_json_round_trip(self):
        original = make_cluster()
        restored = restore_from_json(snapshot_to_json(original), factory)
        assert restored.read(7) == b"snap-7"

    def test_preserves_failed_state(self):
        original = make_cluster()
        original.fail_device("bin-1")
        restored = restore_snapshot(take_snapshot(original), factory)
        assert not restored.device("bin-1").is_active
        # Reads still work through the surviving copies.
        for address in range(120):
            assert restored.read(address) == f"snap-{address}".encode()

    def test_restored_cluster_reconfigures_identically(self):
        """After restore, further migrations match the original cluster."""
        original = make_cluster()
        restored = restore_snapshot(take_snapshot(original), factory)
        report_a = original.add_device(BinSpec("bin-new", 1800))
        report_b = restored.add_device(BinSpec("bin-new", 1800))
        assert report_a.moved_shares == report_b.moved_shares
        for address in range(120):
            assert original.placement_of(address) == restored.placement_of(
                address
            )

    def test_version_mismatch_rejected(self):
        snapshot = take_snapshot(make_cluster())
        snapshot["version"] = 999
        with pytest.raises(ConfigurationError):
            restore_snapshot(snapshot, factory)

    def test_copies_mismatch_rejected(self):
        snapshot = take_snapshot(make_cluster())
        with pytest.raises(ConfigurationError):
            restore_snapshot(
                snapshot, lambda bins: RedundantShare(bins, copies=3)
            )

    def test_code_mismatch_rejected(self):
        cluster = Cluster(
            bins_from_capacities([1000] * 6),
            lambda bins: RedundantShare(bins, copies=5),
            code=ReedSolomonCode(3, 2),
        )
        cluster.write(0, b"x" * 30)
        snapshot = take_snapshot(cluster)
        with pytest.raises(ConfigurationError):
            restore_snapshot(
                snapshot,
                lambda bins: RedundantShare(bins, copies=5),
                code=ReedSolomonCode(4, 1),
            )

    def test_erasure_coded_snapshot(self):
        cluster = Cluster(
            bins_from_capacities([1000] * 6),
            lambda bins: RedundantShare(bins, copies=5),
            code=ReedSolomonCode(3, 2),
        )
        for address in range(40):
            cluster.write(address, f"rs-{address}".encode() * 2)
        restored = restore_snapshot(
            take_snapshot(cluster),
            lambda bins: RedundantShare(bins, copies=5),
            code=ReedSolomonCode(3, 2),
        )
        restored.fail_device("bin-0")
        for address in range(40):
            assert restored.read(address) == f"rs-{address}".encode() * 2
