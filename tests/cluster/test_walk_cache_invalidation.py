"""Walk-cache freshness across cluster membership and capacity changes.

``RedundantShare.place_copy`` memoizes full walk orders per address.  The
cache is safe only because strategies are immutable snapshots: every
cluster reconfiguration (add, remove, capacity change via re-add) must
swap in a *new* strategy instance rather than mutate the old one, or
``place_copy`` would keep serving walks over a dead bin vector.  These
tests pin that contract from the outside: warm the caches hard, mutate
the cluster, and require placements identical to a cold instance.
"""

import pytest

from repro.cluster import Cluster
from repro.core import LinMirror, RedundantShare
from repro.types import BinSpec, bins_from_capacities

ADDRESSES = range(120)


def make_cluster(copies=2):
    bins = bins_from_capacities([50, 40, 30, 20], prefix="dev")
    return Cluster(bins, lambda b: RedundantShare(b, copies=copies))


def warm(strategy, copies):
    """Drive every address through the per-address walk cache."""
    for address in ADDRESSES:
        for position in range(copies):
            strategy.place_copy(address, position)
    return strategy


def assert_matches_cold_instance(strategy):
    """The (possibly cache-warm) strategy must agree with a cold clone."""
    cold = RedundantShare(strategy.ordered_bins, copies=strategy.copies)
    for address in ADDRESSES:
        assert strategy.place(address) == cold.place(address)
        for position in range(strategy.copies):
            assert strategy.place_copy(address, position) == cold.place_copy(
                address, position
            )


class TestReconfigurationInvalidates:
    def test_add_device_swaps_the_strategy_instance(self):
        cluster = make_cluster()
        stale = warm(cluster.strategy, cluster.strategy.copies)
        assert stale.cache_info()["entries"] == len(ADDRESSES)
        cluster.add_device(BinSpec("dev-9", 60))
        assert cluster.strategy is not stale
        assert cluster.strategy.cache_info()["entries"] == 0
        assert "dev-9" in {spec.bin_id for spec in cluster.strategy.ordered_bins}
        assert_matches_cold_instance(cluster.strategy)

    def test_remove_device_swaps_the_strategy_instance(self):
        cluster = make_cluster()
        for address in range(20):
            cluster.write(address, b"x")
        stale = warm(cluster.strategy, cluster.strategy.copies)
        cluster.remove_device("dev-1")
        assert cluster.strategy is not stale
        assert "dev-1" not in {
            spec.bin_id for spec in cluster.strategy.ordered_bins
        }
        assert_matches_cold_instance(cluster.strategy)

    def test_capacity_change_via_readd_uses_fresh_walks(self):
        cluster = make_cluster()
        warm(cluster.strategy, cluster.strategy.copies)
        before = {
            address: cluster.strategy.place(address) for address in ADDRESSES
        }
        cluster.remove_device("dev-0")
        # Same id, very different capacity: any stale per-address walk
        # would reproduce the old ordering.
        cluster.add_device(BinSpec("dev-0", 5))
        warm(cluster.strategy, cluster.strategy.copies)
        assert_matches_cold_instance(cluster.strategy)
        changed = sum(
            1
            for address in ADDRESSES
            if cluster.strategy.place(address) != before[address]
        )
        assert changed > 0  # the shrink must actually reshuffle something

    def test_cluster_placements_stay_readable_after_churn(self):
        cluster = make_cluster()
        payloads = {address: bytes([address % 256]) * 3 for address in range(40)}
        for address, payload in payloads.items():
            cluster.write(address, payload)
        warm(cluster.strategy, cluster.strategy.copies)
        cluster.add_device(BinSpec("dev-8", 70))
        cluster.remove_device("dev-2")
        warm(cluster.strategy, cluster.strategy.copies)
        for address, payload in payloads.items():
            assert cluster.read(address) == payload
        cluster.verify()


class TestCacheApi:
    def test_cache_info_reports_fill_and_capacity(self):
        strategy = RedundantShare(bins_from_capacities([4, 3, 2]), copies=2)
        info = strategy.cache_info()
        assert info["entries"] == 0
        assert info["capacity"] > 0
        warm(strategy, 2)
        assert strategy.cache_info()["entries"] == len(ADDRESSES)

    def test_clear_walk_cache_preserves_placements(self):
        strategy = LinMirror(bins_from_capacities([5, 4, 3]))
        warm(strategy, 2)
        before = [
            strategy.place_copy(address, 1) for address in ADDRESSES
        ]
        strategy.clear_walk_cache()
        assert strategy.cache_info()["entries"] == 0
        after = [strategy.place_copy(address, 1) for address in ADDRESSES]
        assert after == before

    def test_cache_is_bounded(self):
        strategy = RedundantShare(bins_from_capacities([4, 3, 2]), copies=2)
        capacity = strategy.cache_info()["capacity"]
        for address in range(capacity + 50):
            strategy.place_copy(address, 0)
        assert strategy.cache_info()["entries"] <= capacity

    def test_place_copy_agrees_with_place_despite_cache(self):
        strategy = RedundantShare(
            bins_from_capacities([9, 7, 5, 3, 1]), copies=3
        )
        for address in ADDRESSES:
            placement = strategy.place(address)
            walked = [strategy.place_copy(address, p) for p in range(3)]
            assert tuple(walked) == placement
