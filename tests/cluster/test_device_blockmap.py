"""Tests for StorageDevice and BlockMap."""

import pytest

from repro.cluster import BlockMap, DeviceState, StorageDevice
from repro.exceptions import BlockNotFoundError, CapacityExceededError


class TestStorageDevice:
    def test_store_and_fetch(self):
        device = StorageDevice("d", 4)
        device.store((1, 0), b"abc")
        assert device.fetch((1, 0)) == b"abc"
        assert device.used == 1

    def test_capacity_enforced(self):
        device = StorageDevice("d", 1)
        device.store((1, 0), b"a")
        with pytest.raises(CapacityExceededError):
            device.store((2, 0), b"b")

    def test_overwrite_does_not_grow(self):
        device = StorageDevice("d", 1)
        device.store((1, 0), b"a")
        device.store((1, 0), b"b")
        assert device.used == 1
        assert device.fetch((1, 0)) == b"b"

    def test_missing_share_raises(self):
        device = StorageDevice("d", 2)
        with pytest.raises(BlockNotFoundError):
            device.fetch((9, 0))

    def test_discard_idempotent(self):
        device = StorageDevice("d", 2)
        device.store((1, 0), b"a")
        device.discard((1, 0))
        device.discard((1, 0))
        assert device.used == 0

    def test_fail_loses_contents(self):
        device = StorageDevice("d", 2)
        device.store((1, 0), b"a")
        device.fail()
        assert device.state is DeviceState.FAILED
        with pytest.raises(IOError):
            device.fetch((1, 0))
        with pytest.raises(IOError):
            device.store((2, 0), b"b")

    def test_replace_resets(self):
        device = StorageDevice("d", 2)
        device.store((1, 0), b"a")
        device.fail()
        device.replace()
        assert device.is_active
        assert device.used == 0

    def test_fill_fraction(self):
        device = StorageDevice("d", 4)
        device.store((1, 0), b"a")
        assert device.fill_fraction == pytest.approx(0.25)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StorageDevice("d", 0)


class TestBlockMap:
    def test_record_and_lookup(self):
        block_map = BlockMap()
        block_map.record(7, ("a", "b"))
        assert block_map.lookup(7) == ("a", "b")
        assert block_map.contains(7)
        assert len(block_map) == 1

    def test_lookup_missing_raises(self):
        with pytest.raises(BlockNotFoundError):
            BlockMap().lookup(1)

    def test_reverse_index(self):
        block_map = BlockMap()
        block_map.record(1, ("a", "b"))
        block_map.record(2, ("b", "c"))
        assert block_map.shares_on("b") == [(1, 1), (2, 0)]
        assert block_map.share_count("b") == 2
        assert block_map.share_count("zz") == 0

    def test_rerecord_replaces(self):
        block_map = BlockMap()
        block_map.record(1, ("a", "b"))
        block_map.record(1, ("c", "d"))
        assert block_map.shares_on("a") == []
        assert block_map.lookup(1) == ("c", "d")
        assert len(block_map) == 1

    def test_forget(self):
        block_map = BlockMap()
        block_map.record(1, ("a", "b"))
        block_map.forget(1)
        block_map.forget(1)  # idempotent
        assert not block_map.contains(1)
        assert block_map.shares_on("a") == []

    def test_addresses_snapshot(self):
        block_map = BlockMap()
        block_map.record(3, ("a",))
        block_map.record(1, ("b",))
        assert sorted(block_map.addresses()) == [1, 3]
