"""Precompute-cache freshness across cluster reconfigurations.

:class:`FastRedundantShare` shares its Section 3.3 state tables between
instances through the epoch-keyed cache in
:mod:`repro.placement.precompute`.  That sharing is safe only under the
same immutable-snapshot contract the walk cache relies on: every cluster
reconfiguration swaps in a new strategy *and* advances the global
placement epoch, so a post-swap strategy can never gather from tables
built for the pre-swap world — even when the configuration fingerprint
looks identical.  These tests pin the contract from the outside: warm
the cache hard, mutate the cluster, and require placements identical to
a cold instance.
"""

import pytest

from repro.cluster import Cluster
from repro.core import FastRedundantShare
from repro.placement import precompute
from repro.types import BinSpec, bins_from_capacities

ADDRESSES = list(range(240))


def make_cluster(copies=3):
    bins = bins_from_capacities([50, 40, 30, 20], prefix="dev")
    return Cluster(bins, lambda b: FastRedundantShare(b, copies=copies))


def warm(strategy):
    """Drive the batch engine so the precompute bundle is fully built."""
    strategy.place_many(ADDRESSES)
    return strategy


def assert_matches_cold_instance(strategy):
    """The (cache-warm) strategy must agree with a cold clone."""
    cold = FastRedundantShare(strategy.bins, copies=strategy.copies)
    assert (
        warm(strategy).place_many(ADDRESSES).tuples()
        == cold.place_many(ADDRESSES).tuples()
    )
    for address in ADDRESSES[:60]:
        assert strategy.place(address) == cold.place(address)


class TestEpochAdvancesOnSwap:
    def test_construction_bumps_epoch(self):
        before = precompute.current_epoch()
        cluster = make_cluster()
        assert cluster.epoch == precompute.current_epoch() == before + 1
        assert cluster.strategy.cache_info()["epoch"] == cluster.epoch

    def test_add_device_bumps_epoch(self):
        cluster = make_cluster()
        epoch = cluster.epoch
        cluster.add_device(BinSpec("dev-4", 60))
        assert cluster.epoch == epoch + 1
        assert cluster.strategy.cache_info()["epoch"] == cluster.epoch

    def test_lazy_add_bumps_epoch(self):
        cluster = make_cluster()
        epoch = cluster.epoch
        cluster.add_device(BinSpec("dev-4", 60), rebalance=False)
        assert cluster.epoch == epoch + 1

    def test_remove_device_bumps_epoch(self):
        cluster = make_cluster()
        epoch = cluster.epoch
        cluster.remove_device("dev-3")
        assert cluster.epoch == epoch + 1


class TestWarmCacheNeverLeaksAcrossSwaps:
    def test_add_then_place(self):
        cluster = make_cluster()
        warm(cluster.strategy)
        cluster.add_device(BinSpec("dev-4", 60))
        assert_matches_cold_instance(cluster.strategy)

    def test_remove_then_place(self):
        cluster = make_cluster()
        warm(cluster.strategy)
        cluster.remove_device("dev-1")
        assert_matches_cold_instance(cluster.strategy)

    def test_capacity_change_behind_same_id_set(self):
        # The fingerprint of (ids, capacities) differs here, but epoch
        # isolation must hold even for an identical-looking fingerprint:
        # remove and re-add the same spec and require a fresh bundle.
        cluster = make_cluster()
        bundle_before = None
        warm(cluster.strategy)
        bundle_before = cluster.strategy._precompute
        cluster.remove_device("dev-2")
        cluster.add_device(BinSpec("dev-2", 30))
        warm(cluster.strategy)
        assert cluster.strategy._precompute is not bundle_before
        assert_matches_cold_instance(cluster.strategy)

    def test_sequence_of_swaps_stays_fresh(self):
        cluster = make_cluster()
        warm(cluster.strategy)
        for step in range(3):
            cluster.add_device(BinSpec(f"extra-{step}", 25 + 5 * step))
            warm(cluster.strategy)
        cluster.remove_device("extra-1")
        assert_matches_cold_instance(cluster.strategy)
