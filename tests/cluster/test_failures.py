"""Tests for the deterministic failure injector (victim choice)."""

import pytest

from repro.cluster import Cluster, FailureInjector
from repro.core import RedundantShare
from repro.types import bins_from_capacities


def make_cluster(devices=8):
    return Cluster(
        bins_from_capacities([1000] * devices),
        lambda bins: RedundantShare(bins, copies=2),
    )


class TestChooseVictims:
    def test_same_seed_same_victims(self):
        cluster = make_cluster()
        picks = [
            FailureInjector(seed=42).choose_victims(cluster, 3)
            for _ in range(3)
        ]
        assert picks[0] == picks[1] == picks[2]

    def test_deterministic_across_seeds(self):
        cluster = make_cluster()
        by_seed = {
            seed: FailureInjector(seed=seed).choose_victims(cluster, 3)
            for seed in range(8)
        }
        # Re-running any seed reproduces its picks exactly...
        for seed, victims in by_seed.items():
            assert FailureInjector(seed=seed).choose_victims(cluster, 3) == victims
        # ...and the seeds actually spread over different victim sets.
        assert len({tuple(v) for v in by_seed.values()}) > 1

    def test_rounds_replay_identically(self):
        # Two same-seed injectors replay the same multi-round campaign:
        # the round counter is part of the hash, not hidden state.
        campaigns = []
        for _ in range(2):
            cluster = make_cluster()
            injector = FailureInjector(seed=1)
            rounds = []
            for _ in range(3):
                report = injector.crash(cluster, 1)
                rounds.append(tuple(report.failed))
                for victim in report.failed:
                    cluster.repair_device(victim)
            campaigns.append(rounds)
        assert campaigns[0] == campaigns[1]

    def test_exclude_removes_devices_from_the_pool(self):
        cluster = make_cluster()
        excluded = ["bin-0", "bin-1", "bin-2"]
        victims = FailureInjector(seed=0).choose_victims(
            cluster, 4, exclude=excluded
        )
        assert not set(victims) & set(excluded)
        assert len(victims) == len(set(victims)) == 4

    def test_victims_are_distinct(self):
        cluster = make_cluster()
        victims = FailureInjector(seed=3).choose_victims(cluster, 8)
        assert len(set(victims)) == 8

    def test_raises_when_pool_is_too_small(self):
        cluster = make_cluster(devices=3)
        with pytest.raises(ValueError, match="eligible"):
            FailureInjector().choose_victims(cluster, 4)
        with pytest.raises(ValueError, match="eligible"):
            FailureInjector().choose_victims(
                cluster, 3, exclude=["bin-0"]
            )

    def test_failed_devices_are_not_eligible(self):
        cluster = make_cluster(devices=4)
        cluster.fail_device("bin-2")
        victims = FailureInjector(seed=5).choose_victims(cluster, 3)
        assert "bin-2" not in victims
