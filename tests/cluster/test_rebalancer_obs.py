"""Event-bus move counts must agree with the adaptivity metrics.

The observability layer and ``metrics/adaptivity.py`` count the same
physical quantity from opposite ends: the trace counters tally shares as
``migrate_block`` moves them, while ``compare_strategies`` predicts the
positional diff between the two configuration snapshots.  If they ever
disagree, one of the two books is cooked.
"""

import pytest

from repro import obs
from repro.cluster import Cluster, Rebalancer
from repro.core import RedundantShare
from repro.metrics import compare_strategies
from repro.types import BinSpec, bins_from_capacities

BLOCKS = 60


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


def build_cluster(copies):
    # Enough devices for k=4 plus headroom to survive a removal.
    bins = bins_from_capacities([90, 80, 70, 60, 50, 40], prefix="dev")
    cluster = Cluster(bins, lambda b: RedundantShare(b, copies=copies))
    for address in range(BLOCKS):
        cluster.write(address, bytes([address % 251]) * 2)
    return cluster


@pytest.mark.parametrize("copies", [2, 4])
class TestAddDevice:
    def test_rebalancer_counter_matches_compare_strategies(self, copies):
        cluster = build_cluster(copies)
        before = cluster.strategy
        with obs.capture() as trace:
            cluster.add_device(BinSpec("dev-new", 85), rebalance=False)
            progress = Rebalancer(cluster).run_to_completion(step_size=9)
        predicted = compare_strategies(
            before,
            cluster.strategy,
            range(BLOCKS),
            affected_bins=["dev-new"],
        )
        counters = obs.metrics().counters()
        assert counters["rebalance.moved_shares"] == predicted.moved_positional
        assert progress.moved_shares == predicted.moved_positional
        done = trace.of_kind("rebalance.done")[0].fields
        assert done["moved_shares"] == predicted.moved_positional

    def test_eager_add_migration_event_matches(self, copies):
        cluster = build_cluster(copies)
        before = cluster.strategy
        with obs.capture() as trace:
            cluster.add_device(BinSpec("dev-new", 85))
        predicted = compare_strategies(
            before,
            cluster.strategy,
            range(BLOCKS),
            affected_bins=["dev-new"],
        )
        migration = trace.of_kind("cluster.migration")[0].fields
        assert migration["trigger"] == "add"
        assert migration["moved"] == predicted.moved_positional
        assert (
            obs.metrics().counters()["cluster.moved_shares"]
            == predicted.moved_positional
        )


@pytest.mark.parametrize("copies", [2, 4])
class TestRemoveDevice:
    def test_migration_event_matches_compare_strategies(self, copies):
        cluster = build_cluster(copies)
        before = cluster.strategy
        with obs.capture() as trace:
            report = cluster.remove_device("dev-2")
        predicted = compare_strategies(
            before,
            cluster.strategy,
            range(BLOCKS),
            affected_bins=["dev-2"],
        )
        migration = trace.of_kind("cluster.migration")[0].fields
        assert migration["trigger"] == "remove"
        assert migration["moved"] + migration["rebuilt"] == (
            predicted.moved_positional
        )
        assert report.moved_shares == migration["moved"]
        removed = trace.of_kind("device.removed")[0].fields
        assert removed["device"] == "dev-2"
