"""Tests for checksum scrubbing (silent-corruption detection/repair)."""

import pytest

from repro.cluster import (
    ChecksumIndex,
    Cluster,
    Scrubber,
    corrupt_share,
)
from repro.core import RedundantShare
from repro.erasure import ReedSolomonCode
from repro.types import bins_from_capacities


def make_cluster(copies=2, code=None, capacities=(2000, 1600, 1200, 800)):
    return Cluster(
        bins_from_capacities(list(capacities)),
        lambda bins: RedundantShare(bins, copies=copies),
        code=code,
    )


def fill(cluster, blocks=100):
    for address in range(blocks):
        cluster.write(address, f"data-{address}".encode() * 2)


class TestChecksumIndex:
    def test_capture_counts_all_shares(self):
        cluster = make_cluster()
        fill(cluster, 50)
        index = ChecksumIndex()
        assert index.capture(cluster) == 100  # 50 blocks * 2 copies
        assert len(index) == 100

    def test_expected_raises_for_unknown(self):
        with pytest.raises(KeyError):
            ChecksumIndex().expected((1, 0))


class TestScrubber:
    def test_clean_cluster_scrubs_clean(self):
        cluster = make_cluster()
        fill(cluster)
        index = ChecksumIndex()
        index.capture(cluster)
        report = Scrubber(cluster, index).scrub()
        assert report.scanned == 200
        assert report.corrupt == 0
        assert report.repaired == 0

    def test_detects_and_repairs_mirror_corruption(self):
        cluster = make_cluster()
        fill(cluster)
        index = ChecksumIndex()
        index.capture(cluster)

        victim_address = 7
        placement = cluster.placement_of(victim_address)
        corrupt_share(cluster, placement[0], (victim_address, 0))

        report = Scrubber(cluster, index).scrub()
        assert report.corrupt == 1
        assert report.repaired == 1
        assert report.unrepairable == 0
        assert report.corrupt_keys == [(placement[0], (victim_address, 0))]
        # The block now reads back clean from either copy.
        assert cluster.read(victim_address) == b"data-7" * 2
        # A second scrub is clean.
        assert Scrubber(cluster, index).scrub().corrupt == 0

    def test_detect_only_mode(self):
        cluster = make_cluster()
        fill(cluster)
        index = ChecksumIndex()
        index.capture(cluster)
        placement = cluster.placement_of(3)
        corrupt_share(cluster, placement[1], (3, 1))
        report = Scrubber(cluster, index).scrub(repair=False)
        assert report.corrupt == 1
        assert report.repaired == 0
        # Still corrupt afterwards.
        assert Scrubber(cluster, index).scrub(repair=False).corrupt == 1

    def test_detect_only_reports_every_corrupt_unrepaired_share(self):
        cluster = make_cluster()
        fill(cluster)
        index = ChecksumIndex()
        index.capture(cluster)
        victims = []
        for address in (2, 9, 17):
            placement = cluster.placement_of(address)
            corrupt_share(cluster, placement[0], (address, 0))
            victims.append((placement[0], (address, 0)))
        report = Scrubber(cluster, index).scrub(repair=False)
        # Every corruption is named, none is touched, none is written off
        # as unrepairable — detect-only defers the decision to the caller.
        assert report.corrupt == 3
        assert report.repaired == 0
        assert report.unrepairable == 0
        assert sorted(report.corrupt_keys) == sorted(victims)
        # A repairing scrub afterwards heals exactly those shares.
        healing = Scrubber(cluster, index).scrub()
        assert healing.corrupt == 3
        assert healing.repaired == 3
        for address in (2, 9, 17):
            assert cluster.read(address) == f"data-{address}".encode() * 2

    def test_repairs_rs_shares_from_parity(self):
        code = ReedSolomonCode(3, 2)
        cluster = Cluster(
            bins_from_capacities([1500] * 6),
            lambda bins: RedundantShare(bins, copies=5),
            code=code,
        )
        fill(cluster, 60)
        index = ChecksumIndex()
        index.capture(cluster)
        placement = cluster.placement_of(11)
        corrupt_share(cluster, placement[4], (11, 4))  # a parity share
        corrupt_share(cluster, placement[0], (11, 0))  # a data share
        report = Scrubber(cluster, index).scrub()
        assert report.corrupt == 2
        assert report.repaired == 2
        assert cluster.read(11) == b"data-11" * 2

    def test_writes_after_capture_are_ignored(self):
        cluster = make_cluster()
        fill(cluster, 10)
        index = ChecksumIndex()
        index.capture(cluster)
        cluster.write(99, b"late block")
        report = Scrubber(cluster, index).scrub()
        assert report.scanned == 20  # only captured shares are verified
        assert report.corrupt == 0
