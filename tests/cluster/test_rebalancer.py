"""Tests for lazy device addition and throttled rebalancing."""

import pytest

from repro.cluster import Cluster, Rebalancer
from repro.core import RedundantShare
from repro.types import BinSpec, bins_from_capacities


def make_cluster(blocks=300):
    cluster = Cluster(
        bins_from_capacities([2000, 1600, 1200, 800]),
        lambda bins: RedundantShare(bins, copies=2),
    )
    for address in range(blocks):
        cluster.write(address, f"blk-{address}".encode())
    return cluster


class TestLazyAdd:
    def test_lazy_add_moves_nothing(self):
        cluster = make_cluster()
        report = cluster.add_device(BinSpec("bin-new", 1500), rebalance=False)
        assert report.moved_shares == 0
        assert cluster.device("bin-new").used == 0
        # Reads still work from the recorded placements.
        for address in range(300):
            assert cluster.read(address) == f"blk-{address}".encode()
        cluster.verify()

    def test_backlog_reported(self):
        cluster = make_cluster()
        assert cluster.out_of_place() == []
        cluster.add_device(BinSpec("bin-new", 1500), rebalance=False)
        backlog = cluster.out_of_place()
        assert 0 < len(backlog) < 300

    def test_new_writes_use_new_layout(self):
        cluster = make_cluster(blocks=0)
        cluster.add_device(BinSpec("bin-new", 100_000), rebalance=False)
        for address in range(200):
            cluster.write(address, b"x")
        # The huge new device must attract most copies of fresh writes.
        assert cluster.device("bin-new").used > 150

    def test_migrate_block_is_idempotent(self):
        cluster = make_cluster()
        cluster.add_device(BinSpec("bin-new", 1500), rebalance=False)
        backlog = cluster.out_of_place()
        address = backlog[0]
        assert cluster.migrate_block(address) > 0
        assert cluster.migrate_block(address) == 0


class TestRebalancer:
    def test_step_bounds_work(self):
        cluster = make_cluster()
        cluster.add_device(BinSpec("bin-new", 1500), rebalance=False)
        rebalancer = Rebalancer(cluster)
        total = rebalancer.progress.total_blocks
        assert total > 0
        moved = rebalancer.step(max_blocks=10)
        assert moved == 10
        assert rebalancer.progress.migrated_blocks == 10
        assert rebalancer.progress.remaining == total - 10
        assert not rebalancer.progress.done
        with pytest.raises(ValueError):
            rebalancer.step(0)

    def test_run_to_completion_converges(self):
        cluster = make_cluster()
        cluster.add_device(BinSpec("bin-new", 1500), rebalance=False)
        progress = Rebalancer(cluster).run_to_completion(step_size=25)
        assert progress.done
        assert progress.fraction == 1.0
        assert cluster.out_of_place() == []
        cluster.verify()
        for address in range(300):
            assert cluster.read(address) == f"blk-{address}".encode()

    def test_reads_and_writes_ok_mid_migration(self):
        cluster = make_cluster()
        cluster.add_device(BinSpec("bin-new", 1500), rebalance=False)
        rebalancer = Rebalancer(cluster)
        rebalancer.step(max_blocks=40)
        # Interleave client traffic with the half-done migration.
        cluster.write(999, b"written-mid-migration")
        assert cluster.read(999) == b"written-mid-migration"
        for address in range(0, 300, 17):
            assert cluster.read(address) == f"blk-{address}".encode()
        cluster.verify()
        rebalancer.run_to_completion()
        cluster.verify()

    def test_deleted_block_in_backlog_is_skipped(self):
        cluster = make_cluster()
        cluster.add_device(BinSpec("bin-new", 1500), rebalance=False)
        rebalancer = Rebalancer(cluster)
        for address in cluster.out_of_place():
            cluster.delete(address)
        progress = rebalancer.run_to_completion()
        assert progress.done

    def test_empty_backlog_progress(self):
        cluster = make_cluster()
        rebalancer = Rebalancer(cluster)
        assert rebalancer.progress.done
        assert rebalancer.progress.fraction == 1.0

    def test_lazy_matches_eager_final_state(self):
        """Lazy + full drain lands exactly where an eager rebalance does."""
        eager = make_cluster()
        lazy = make_cluster()
        eager.add_device(BinSpec("bin-new", 1500))
        lazy.add_device(BinSpec("bin-new", 1500), rebalance=False)
        Rebalancer(lazy).run_to_completion()
        for address in range(300):
            assert eager.placement_of(address) == lazy.placement_of(address)
