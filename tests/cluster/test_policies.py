"""Tests for multi-policy storage over a shared device pool."""

import pytest

from repro.cluster import PolicyStore, StoragePolicy
from repro.core import RedundantShare
from repro.erasure import ReedSolomonCode
from repro.exceptions import ConfigurationError, DeviceNotFoundError
from repro.types import BinSpec, bins_from_capacities


def make_store():
    policies = [
        StoragePolicy(
            "hot-mirror", lambda bins: RedundantShare(bins, copies=3)
        ),
        StoragePolicy(
            "cold-ec",
            lambda bins: RedundantShare(bins, copies=5),
            code=ReedSolomonCode(3, 2),
        ),
    ]
    return PolicyStore(bins_from_capacities([3000] * 6), policies)


def fill(store, blocks=80):
    for address in range(blocks):
        store.write("hot-mirror", address, f"hot-{address}".encode())
        store.write("cold-ec", address, f"cold-{address}".encode() * 3)


class TestConstruction:
    def test_requires_policies(self):
        with pytest.raises(ConfigurationError):
            PolicyStore(bins_from_capacities([5, 5]), [])

    def test_duplicate_names_rejected(self):
        policy = StoragePolicy("p", lambda bins: RedundantShare(bins, copies=2))
        with pytest.raises(ConfigurationError):
            PolicyStore(bins_from_capacities([5, 5]), [policy, policy])

    def test_policy_names(self):
        assert make_store().policy_names() == ["cold-ec", "hot-mirror"]

    def test_unknown_policy_rejected(self):
        store = make_store()
        with pytest.raises(ConfigurationError):
            store.write("warm", 0, b"x")
        with pytest.raises(ConfigurationError):
            store.cluster_for("warm")


class TestDataPath:
    def test_policies_are_independent_namespaces(self):
        store = make_store()
        store.write("hot-mirror", 7, b"hot-payload")
        store.write("cold-ec", 7, b"cold-payload-xyz")
        assert store.read("hot-mirror", 7) == b"hot-payload"
        assert store.read("cold-ec", 7) == b"cold-payload-xyz"
        store.delete("hot-mirror", 7)
        assert store.read("cold-ec", 7) == b"cold-payload-xyz"
        store.verify()

    def test_shared_capacity_accounting(self):
        store = make_store()
        fill(store, 50)
        usage = store.device_usage()
        # 50 * 3 mirror shares + 50 * 5 ec shares across 6 devices.
        assert sum(usage.values()) == 50 * 3 + 50 * 5
        store.verify()

    def test_address_range_validated(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.write("hot-mirror", 1 << 60, b"x")


class TestPoolManagement:
    def test_add_device_rebalances_all_policies(self):
        store = make_store()
        fill(store, 60)
        moved = store.add_device(BinSpec("bin-new", 3000))
        assert moved["hot-mirror"] > 0
        assert moved["cold-ec"] > 0
        store.verify()
        for address in range(60):
            assert store.read("hot-mirror", address) == f"hot-{address}".encode()
            assert store.read("cold-ec", address) == f"cold-{address}".encode() * 3

    def test_duplicate_device_rejected(self):
        store = make_store()
        with pytest.raises(ConfigurationError):
            store.add_device(BinSpec("bin-0", 100))

    def test_fail_and_repair_crosses_policies(self):
        store = make_store()
        fill(store, 60)
        store.fail_device("bin-2")
        # Both policies tolerate the loss (k=3 mirror; RS 3+2).
        for address in range(60):
            assert store.read("hot-mirror", address) == f"hot-{address}".encode()
            assert store.read("cold-ec", address) == f"cold-{address}".encode() * 3
        rebuilt = store.repair_device("bin-2")
        assert sum(rebuilt.values()) > 0
        store.verify()

    def test_unknown_device(self):
        with pytest.raises(DeviceNotFoundError):
            make_store().fail_device("ghost")
