"""The statistical machinery: special functions and acceptance verdicts."""

import math

import pytest

from repro.metrics.stats import (
    FairnessVerdict,
    chi_square_fairness,
    chi_square_quantile,
    chi_square_sf,
    fair_copy_shares,
    max_deviation_fairness,
    normal_quantile,
    normal_sf,
    sample_copy_counts,
)


class TestSpecialFunctions:
    def test_chi_square_quantiles_match_tables(self):
        # Standard textbook critical values.
        assert chi_square_quantile(1, 0.05) == pytest.approx(3.8415, abs=1e-3)
        assert chi_square_quantile(2, 0.01) == pytest.approx(9.2103, abs=1e-3)
        assert chi_square_quantile(5, 0.05) == pytest.approx(11.0705, abs=1e-3)
        assert chi_square_quantile(10, 0.001) == pytest.approx(29.588, abs=1e-2)

    def test_sf_is_inverse_of_quantile(self):
        for df in (1, 3, 7):
            for alpha in (0.2, 0.05, 0.01):
                x = chi_square_quantile(df, alpha)
                assert chi_square_sf(x, df) == pytest.approx(alpha, rel=1e-6)

    def test_sf_edge_cases(self):
        assert chi_square_sf(0.0, 3) == 1.0
        assert chi_square_sf(-1.0, 3) == 1.0
        assert chi_square_sf(math.inf, 3) == 0.0
        with pytest.raises(ValueError):
            chi_square_sf(1.0, 0)

    def test_quantile_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            chi_square_quantile(2, 0.0)
        with pytest.raises(ValueError):
            chi_square_quantile(2, 1.0)

    def test_normal_quantile_matches_tables(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_quantile(0.001) == pytest.approx(-3.090232, abs=1e-5)

    def test_normal_quantile_inverts_sf(self):
        for p in (0.01, 0.3, 0.77, 0.9995):
            z = normal_quantile(p)
            assert 1.0 - normal_sf(z) == pytest.approx(p, rel=1e-9)
        with pytest.raises(ValueError):
            normal_quantile(0.0)


class TestChiSquareFairness:
    def test_accepts_exact_proportions(self):
        counts = {"a": 500, "b": 300, "c": 200}
        shares = {"a": 0.5, "b": 0.3, "c": 0.2}
        verdict = chi_square_fairness(counts, shares, alpha=0.01)
        assert verdict.accepted
        assert verdict.statistic == pytest.approx(0.0)
        assert verdict.df == 2
        assert verdict.p_value == pytest.approx(1.0)

    def test_rejects_gross_imbalance(self):
        counts = {"a": 900, "b": 50, "c": 50}
        shares = {"a": 0.5, "b": 0.25, "c": 0.25}
        verdict = chi_square_fairness(counts, shares, alpha=0.01)
        assert not verdict.accepted
        assert verdict.p_value < 1e-10

    def test_requires_two_positive_bins_and_valid_alpha(self):
        with pytest.raises(ValueError):
            chi_square_fairness({"a": 1}, {"a": 1.0}, alpha=0.01)
        with pytest.raises(ValueError):
            chi_square_fairness(
                {"a": 1, "b": 1}, {"a": 0.5, "b": 0.5}, alpha=0.0
            )

    def test_summary_mentions_verdict(self):
        verdict = chi_square_fairness(
            {"a": 10, "b": 10}, {"a": 0.5, "b": 0.5}
        )
        assert "chi-square: ACCEPT" in verdict.summary()


class TestMaxDeviationFairness:
    def test_accepts_small_noise(self):
        counts = {"a": 5030, "b": 4970}
        shares = {"a": 0.5, "b": 0.5}
        verdict = max_deviation_fairness(counts, shares, alpha=0.01)
        assert verdict.accepted
        assert verdict.statistic == pytest.approx(0.6, abs=0.01)

    def test_rejects_systematic_deficit(self):
        counts = {"a": 4200, "b": 2900, "c": 2900}
        shares = {"a": 0.5, "b": 0.25, "c": 0.25}
        verdict = max_deviation_fairness(counts, shares, alpha=0.01)
        assert not verdict.accepted
        assert verdict.detail["__worst__"] == verdict.statistic

    def test_degenerate_share_requires_exact_match(self):
        accepted = max_deviation_fairness(
            {"a": 100, "b": 0}, {"a": 1.0, "b": 0.0}
        )
        assert accepted.accepted
        rejected = max_deviation_fairness(
            {"a": 99, "b": 1}, {"a": 1.0, "b": 0.0}
        )
        assert not rejected.accepted
        assert rejected.p_value == 0.0

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            max_deviation_fairness({}, {"a": 0.5, "b": 0.5})


class TestFairShares:
    def test_matches_redundant_share_expected_shares(self):
        from repro.core import RedundantShare
        from repro.types import bins_from_capacities

        # An inefficient vector: the big bin must be clipped (Lemma 2.2).
        bins = bins_from_capacities([100, 6, 1, 1], prefix="bin")
        strategy = RedundantShare(bins, copies=2)
        fair = fair_copy_shares(
            {spec.bin_id: float(spec.capacity) for spec in bins}, 2
        )
        for bin_id, share in strategy.expected_shares().items():
            assert fair[bin_id] == pytest.approx(share)

    def test_figure1_example(self):
        fair = fair_copy_shares({"big": 2.0, "s1": 1.0, "s2": 1.0}, 2)
        assert fair == {"big": 0.5, "s1": 0.25, "s2": 0.25}


class TestSampling:
    def test_deterministic_and_seed_sensitive(self):
        from repro.core import RedundantShare
        from repro.types import bins_from_capacities

        strategy = RedundantShare(bins_from_capacities([4, 3, 2]), copies=2)
        first = sample_copy_counts(strategy, 500, seed=1)
        again = sample_copy_counts(strategy, 500, seed=1)
        other = sample_copy_counts(strategy, 500, seed=2)
        assert first == again
        assert first != other
        assert sum(first.values()) == 1000  # balls * copies
        with pytest.raises(ValueError):
            sample_copy_counts(strategy, 0)


class TestVerdictDataclass:
    def test_frozen(self):
        verdict = FairnessVerdict(
            test="chi-square", statistic=1.0, threshold=2.0, p_value=0.5,
            alpha=0.01, df=1, accepted=True,
        )
        with pytest.raises(AttributeError):
            verdict.accepted = False
