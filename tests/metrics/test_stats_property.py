"""Property tests pinning Lemma 2.4's quantitative waste on [2, 1, 1].

The paper's Figure 1 example: two copies over capacities ``[2, 1, 1]``.
A fair strategy gives the big bin half of all copies.  The trivial
strategy — k independent fair single-copy draws with collision
resampling — misses the big bin with probability 1/6 per ball, leaving
it only 5/12 of the copies and wasting 1/6 of its capacity.  Redundant
Share places a copy on the big bin for *every* ball (its clipped hazard
is 1.0), so it is exactly fair.

Both facts must hold for every seed, not a lucky one: the chi-square
acceptance test accepts Redundant Share and rejects the trivial strategy
across the whole seed range at alpha = 0.01.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core import RedundantShare
from repro.metrics.stats import (
    chi_square_fairness,
    fair_copy_shares,
    max_deviation_fairness,
    sample_copy_counts,
)
from repro.placement import TrivialReplication
from repro.types import bins_from_capacities

CAPACITIES = [2, 1, 1]
COPIES = 2
ALPHA = 0.01

seeds = st.integers(min_value=0, max_value=63)
ball_counts = st.sampled_from([2000, 5000])


def lemma_example(strategy_cls):
    bins = bins_from_capacities(CAPACITIES, prefix="bin")
    return strategy_cls(bins, copies=COPIES)


def expected_shares():
    bins = bins_from_capacities(CAPACITIES, prefix="bin")
    return fair_copy_shares(
        {spec.bin_id: float(spec.capacity) for spec in bins}, COPIES
    )


class TestRedundantShareIsFair:
    @given(seed=seeds, balls=ball_counts)
    @settings(max_examples=30, deadline=None)
    def test_chi_square_accepts(self, seed, balls):
        counts = sample_copy_counts(lemma_example(RedundantShare), balls, seed=seed)
        verdict = chi_square_fairness(counts, expected_shares(), alpha=ALPHA)
        assert verdict.accepted, verdict.summary()

    @given(seed=seeds, balls=ball_counts)
    @settings(max_examples=30, deadline=None)
    def test_max_deviation_accepts(self, seed, balls):
        counts = sample_copy_counts(lemma_example(RedundantShare), balls, seed=seed)
        verdict = max_deviation_fairness(counts, expected_shares(), alpha=ALPHA)
        assert verdict.accepted, verdict.summary()

    @given(seed=seeds, balls=ball_counts)
    @settings(max_examples=10, deadline=None)
    def test_big_bin_share_is_exactly_half(self, seed, balls):
        # Lemma 2.1/2.4: the clipped hazard of the big bin is 1.0, so it
        # receives a copy of *every* ball — fairness is deterministic,
        # not merely statistical.
        counts = sample_copy_counts(lemma_example(RedundantShare), balls, seed=seed)
        assert counts["bin-0"] == balls


class TestTrivialStrategyWastesTheBigBin:
    @given(seed=seeds, balls=ball_counts)
    @settings(max_examples=30, deadline=None)
    def test_chi_square_rejects(self, seed, balls):
        counts = sample_copy_counts(
            lemma_example(TrivialReplication), balls, seed=seed
        )
        verdict = chi_square_fairness(counts, expected_shares(), alpha=ALPHA)
        assert not verdict.accepted, verdict.summary()

    @given(seed=seeds, balls=ball_counts)
    @settings(max_examples=30, deadline=None)
    def test_max_deviation_rejects(self, seed, balls):
        counts = sample_copy_counts(
            lemma_example(TrivialReplication), balls, seed=seed
        )
        verdict = max_deviation_fairness(counts, expected_shares(), alpha=ALPHA)
        assert not verdict.accepted, verdict.summary()

    @given(seed=seeds, balls=ball_counts)
    @settings(max_examples=20, deadline=None)
    def test_big_bin_miss_probability_is_one_sixth(self, seed, balls):
        # The quantitative content of Lemma 2.4: both copies land among
        # the small bins with probability (1/2)(1/3) + (1/4)(2/3) = 1/6,
        # so the big bin's copy share is 5/12 instead of the fair 1/2.
        counts = sample_copy_counts(
            lemma_example(TrivialReplication), balls, seed=seed
        )
        miss_rate = 1.0 - counts["bin-0"] / balls
        tolerance = 4.0 * math.sqrt((1 / 6) * (5 / 6) / balls)
        assert abs(miss_rate - 1 / 6) < tolerance, miss_rate
        big_share = counts["bin-0"] / (balls * COPIES)
        assert abs(big_share - 5 / 12) < tolerance / COPIES
