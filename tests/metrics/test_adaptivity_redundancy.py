"""Tests for the adaptivity and redundancy metrics."""

import pytest

from repro.core import RedundantShare
from repro.metrics import (
    compare_strategies,
    count_violations,
    data_loss_fraction,
    movement_series,
    optimal_moved_copies,
    survivable_failure_count,
    worst_failure_pairs,
)
from repro.types import BinSpec, bins_from_capacities


def make(capacities, copies=2):
    return RedundantShare(bins_from_capacities(capacities), copies=copies)


class TestCompareStrategies:
    def test_identical_strategies_move_nothing(self):
        before = make([5, 4, 3])
        after = make([5, 4, 3])
        report = compare_strategies(before, after, range(500), [])
        assert report.moved_positional == 0
        assert report.moved_set == 0

    def test_mismatched_copies_rejected(self):
        with pytest.raises(ValueError):
            compare_strategies(
                make([5, 4, 3], 2), make([5, 4, 3], 1), range(10), []
            )

    def test_addition_counts_usage_in_after(self):
        bins = bins_from_capacities([1000] * 4)
        before = RedundantShare(bins, copies=2)
        after = RedundantShare(bins + [BinSpec("bin-new", 1000)], copies=2)
        report = compare_strategies(before, after, range(2000), ["bin-new"])
        # New bin deserves 1/5 of all copies.
        assert report.used_on_affected / (2000 * 2) == pytest.approx(0.2, abs=0.03)
        assert report.moved_positional >= report.used_on_affected
        assert report.moved_set <= report.moved_positional

    def test_removal_counts_usage_in_before(self):
        bins = bins_from_capacities([1000] * 4)
        before = RedundantShare(bins, copies=2)
        after = RedundantShare(bins[:3], copies=2)
        report = compare_strategies(before, after, range(2000), ["bin-3"])
        assert report.used_on_affected > 0
        assert report.factor_positional >= 1.0

    def test_factor_zero_when_unaffected(self):
        before = make([5, 4, 3])
        report = compare_strategies(before, before, range(100), ["ghost"])
        assert report.factor_positional == 0.0
        assert report.factor_set == 0.0

    def test_optimal_bound(self):
        before = make([5, 4, 3])
        after = make([5, 4, 3])
        report = compare_strategies(before, after, range(100), [])
        assert optimal_moved_copies(report) == report.used_on_affected


class TestMovementSeries:
    def test_series_length(self):
        snapshots = [make([5, 4, 3]), make([5, 4, 3]), make([5, 4, 3])]
        reports = movement_series(snapshots, list(range(50)), [[], []])
        assert len(reports) == 2

    def test_affected_mismatch_rejected(self):
        snapshots = [make([5, 4, 3]), make([5, 4, 3])]
        with pytest.raises(ValueError):
            movement_series(snapshots, list(range(10)), [[], []])


class TestRedundancyMetrics:
    def test_no_violations_for_redundant_share(self):
        strategy = make([9, 7, 5, 3], copies=3)
        assert count_violations(strategy, range(1000)) == 0

    def test_loss_fraction_zero_below_tolerance(self):
        strategy = make([5, 4, 3, 2], copies=2)
        loss = data_loss_fraction(strategy, list(range(1000)), {"bin-0"})
        assert loss == 0.0

    def test_loss_fraction_positive_when_pair_fails(self):
        strategy = make([5, 4, 3, 2], copies=2)
        loss = data_loss_fraction(
            strategy, list(range(1000)), {"bin-0", "bin-1"}
        )
        assert 0.0 < loss < 1.0

    def test_loss_requires_addresses(self):
        with pytest.raises(ValueError):
            data_loss_fraction(make([5, 4, 3]), [], {"bin-0"})

    def test_worst_pairs_ordered(self):
        strategy = make([5, 4, 3, 2], copies=2)
        pairs = worst_failure_pairs(strategy, list(range(2000)), limit=3)
        assert len(pairs) == 3
        fractions = [fraction for _, fraction in pairs]
        assert fractions == sorted(fractions, reverse=True)

    def test_survivable_failures(self):
        assert survivable_failure_count(make([5, 4, 3], copies=3)) == 2
