"""Unit tests for the fairness metrics."""

import math

import pytest

from repro.metrics import fairness


class TestUsageShares:
    def test_normalises(self):
        shares = fairness.usage_shares({"a": 3, "b": 1})
        assert shares == {"a": 0.75, "b": 0.25}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fairness.usage_shares({})


class TestFillPercentages:
    def test_basic(self):
        fills = fairness.fill_percentages({"a": 5}, {"a": 10.0, "b": 20.0})
        assert fills["a"] == pytest.approx(50.0)
        assert fills["b"] == pytest.approx(0.0)

    def test_zero_capacity_raises(self):
        with pytest.raises(ValueError):
            fairness.fill_percentages({"a": 1}, {"a": 0.0})

    def test_spread(self):
        spread = fairness.max_fill_spread(
            {"a": 5, "b": 10}, {"a": 10.0, "b": 10.0}
        )
        assert spread == pytest.approx(50.0)


class TestDeviation:
    def test_max_deviation(self):
        deviation = fairness.max_share_deviation(
            {"a": 0.6, "b": 0.4}, {"a": 0.5, "b": 0.5}
        )
        assert deviation == pytest.approx(0.1)

    def test_missing_keys_count(self):
        deviation = fairness.max_share_deviation({"a": 1.0}, {"b": 1.0})
        assert deviation == pytest.approx(1.0)


class TestChiSquare:
    def test_perfect_fit_is_zero(self):
        statistic = fairness.chi_square_statistic(
            {"a": 50, "b": 50}, {"a": 0.5, "b": 0.5}
        )
        assert statistic == pytest.approx(0.0)

    def test_impossible_bin_is_infinite(self):
        statistic = fairness.chi_square_statistic(
            {"a": 1, "b": 1}, {"a": 1.0, "b": 0.0}
        )
        assert math.isinf(statistic)

    def test_no_counts_raises(self):
        with pytest.raises(ValueError):
            fairness.chi_square_statistic({}, {"a": 1.0})


class TestJain:
    def test_equal_is_one(self):
        assert fairness.jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_hot_spot(self):
        assert fairness.jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero(self):
        assert fairness.jain_index([0.0, 0.0]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fairness.jain_index([])


class TestGini:
    def test_even_is_zero(self):
        assert fairness.gini_coefficient([2.0, 2.0, 2.0]) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_concentration_increases(self):
        even = fairness.gini_coefficient([1, 1, 1, 1])
        skewed = fairness.gini_coefficient([4, 0, 0, 0])
        assert skewed > even

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fairness.gini_coefficient([-1.0, 2.0])

    def test_all_zero_is_zero(self):
        assert fairness.gini_coefficient([0.0, 0.0]) == 0.0


class TestCountCopies:
    def test_tallies(self):
        counts = fairness.count_copies([("a", "b"), ("a", "c")])
        assert counts == {"a": 2, "b": 1, "c": 1}

    def test_empty(self):
        assert fairness.count_copies([]) == {}
