"""Tests for GF(256) arithmetic and linear algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import gf256

ELEMENTS = st.integers(min_value=0, max_value=255)
NONZERO = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(ELEMENTS, ELEMENTS)
    @settings(max_examples=200, deadline=None)
    def test_mul_commutes(self, a, b):
        assert gf256.mul(a, b) == gf256.mul(b, a)

    @given(ELEMENTS, ELEMENTS, ELEMENTS)
    @settings(max_examples=200, deadline=None)
    def test_mul_associates(self, a, b, c):
        assert gf256.mul(gf256.mul(a, b), c) == gf256.mul(a, gf256.mul(b, c))

    @given(ELEMENTS, ELEMENTS, ELEMENTS)
    @settings(max_examples=200, deadline=None)
    def test_distributivity(self, a, b, c):
        left = gf256.mul(a, gf256.add(b, c))
        right = gf256.add(gf256.mul(a, b), gf256.mul(a, c))
        assert left == right

    @given(NONZERO)
    @settings(max_examples=100, deadline=None)
    def test_inverse(self, a):
        assert gf256.mul(a, gf256.inv(a)) == 1

    @given(ELEMENTS)
    @settings(max_examples=50, deadline=None)
    def test_identity_elements(self, a):
        assert gf256.mul(a, 1) == a
        assert gf256.add(a, 0) == a
        assert gf256.add(a, a) == 0  # characteristic 2

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.inv(0)
        with pytest.raises(ZeroDivisionError):
            gf256.div(1, 0)

    @given(ELEMENTS, NONZERO)
    @settings(max_examples=100, deadline=None)
    def test_div_is_mul_inverse(self, a, b):
        assert gf256.div(a, b) == gf256.mul(a, gf256.inv(b))

    def test_power(self):
        assert gf256.power(2, 0) == 1
        assert gf256.power(0, 5) == 0
        assert gf256.power(3, 2) == gf256.mul(3, 3)


class TestMatrices:
    def test_identity_mul(self):
        matrix = [[3, 7], [1, 9]]
        assert gf256.mat_mul(matrix, gf256.identity(2)) == matrix

    def test_invert_round_trip(self):
        matrix = [[1, 2, 3], [4, 5, 6], [7, 8, 10]]
        inverse = gf256.mat_invert(matrix)
        assert gf256.mat_mul(matrix, inverse) == gf256.identity(3)

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            gf256.mat_invert([[1, 1], [1, 1]])

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf256.mat_invert([[1, 2, 3], [4, 5, 6]])

    def test_mat_vec(self):
        assert gf256.mat_vec(gf256.identity(3), [9, 8, 7]) == [9, 8, 7]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf256.mat_mul([[1, 2]], [[1, 2]])


class TestVandermonde:
    def test_shape(self):
        matrix = gf256.vandermonde(5, 3)
        assert len(matrix) == 5
        assert all(len(row) == 3 for row in matrix)

    def test_too_many_rows(self):
        with pytest.raises(ValueError):
            gf256.vandermonde(300, 2)

    def test_any_square_subset_invertible(self):
        import itertools

        matrix = gf256.vandermonde(6, 3)
        for rows in itertools.combinations(range(6), 3):
            subset = [matrix[row] for row in rows]
            gf256.mat_invert(subset)  # must not raise


class TestSystematicGenerator:
    def test_top_is_identity(self):
        generator = gf256.systematic_generator(4, 7)
        assert generator[:4] == gf256.identity(4)

    def test_any_subset_invertible(self):
        import itertools

        generator = gf256.systematic_generator(3, 6)
        for rows in itertools.combinations(range(6), 3):
            subset = [generator[row] for row in rows]
            gf256.mat_invert(subset)  # must not raise

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            gf256.systematic_generator(0, 3)
        with pytest.raises(ValueError):
            gf256.systematic_generator(4, 3)
