"""Tests for the RAID-4/5 single-parity code."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import SingleParityCode
from repro.erasure.base import pad_block
from repro.exceptions import DecodingError


class TestSingleParity:
    def test_validation(self):
        with pytest.raises(ValueError):
            SingleParityCode(0)

    def test_shape(self):
        code = SingleParityCode(4)
        assert code.total_shares == 5
        assert code.data_shares == 4
        assert code.tolerance == 1
        assert code.storage_overhead == pytest.approx(1.25)

    def test_round_trip_all_single_erasures(self):
        code = SingleParityCode(4)
        payload = bytes(range(200))
        expected = pad_block(payload, 4)
        shares = dict(enumerate(code.encode(payload)))
        assert code.decode(shares) == expected
        for lost in range(code.total_shares):
            survivors = {k: v for k, v in shares.items() if k != lost}
            assert code.decode(survivors) == expected, f"lost {lost}"

    def test_double_erasure_fails(self):
        code = SingleParityCode(4)
        shares = dict(enumerate(code.encode(b"x" * 40)))
        survivors = {k: v for k, v in shares.items() if k not in (0, 2)}
        with pytest.raises(DecodingError):
            code.decode(survivors)

    def test_mismatched_lengths_rejected(self):
        code = SingleParityCode(2)
        shares = dict(enumerate(code.encode(b"abcdef")))
        shares[0] = shares[0] + b"!"
        with pytest.raises(DecodingError):
            code.decode(shares)

    def test_parity_is_xor_of_data(self):
        code = SingleParityCode(3)
        shares = code.encode(bytes(range(30)))
        parity = bytearray(len(shares[0]))
        for share in shares[:3]:
            for index, value in enumerate(share):
                parity[index] ^= value
        assert bytes(parity) == shares[3]

    @given(st.binary(min_size=1, max_size=100), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, payload, data):
        code = SingleParityCode(data)
        shares = dict(enumerate(code.encode(payload)))
        lost = len(shares) - 1
        survivors = {k: v for k, v in shares.items() if k != lost}
        assert code.decode(survivors)[: len(payload)] == payload
