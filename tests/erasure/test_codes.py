"""Round-trip and erasure-recovery tests for every erasure code."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import (
    EvenOddCode,
    MirrorCode,
    ReedSolomonCode,
    RowDiagonalParityCode,
)
from repro.erasure.base import pad_block
from repro.exceptions import DecodingError

CODES = [
    MirrorCode(2),
    MirrorCode(3),
    ReedSolomonCode(2, 1),
    ReedSolomonCode(4, 2),
    ReedSolomonCode(6, 3),
    EvenOddCode(3),
    EvenOddCode(5),
    EvenOddCode(7),
    RowDiagonalParityCode(3),
    RowDiagonalParityCode(5),
    RowDiagonalParityCode(7),
]

PAYLOAD = bytes(range(256)) * 3


def padded_for(code, payload):
    if code.name == "mirror":
        return payload
    if code.name == "reed-solomon":
        return pad_block(payload, code.data_shares)
    if code.name == "evenodd":
        p = code.prime
        return pad_block(payload, p * (p - 1))
    p = code.prime
    return pad_block(payload, (p - 1) * (p - 1))


@pytest.mark.parametrize("code", CODES, ids=lambda code: code.describe())
class TestRoundTrip:
    def test_all_shares_decode(self, code):
        shares = code.encode(PAYLOAD)
        assert len(shares) == code.total_shares
        full = {position: share for position, share in enumerate(shares)}
        assert code.decode(full) == padded_for(code, PAYLOAD)

    def test_single_erasures(self, code):
        shares = dict(enumerate(code.encode(PAYLOAD)))
        expected = padded_for(code, PAYLOAD)
        for lost in range(code.total_shares):
            survivors = {k: v for k, v in shares.items() if k != lost}
            assert code.decode(survivors) == expected, f"lost share {lost}"

    def test_all_tolerated_erasure_patterns(self, code):
        shares = dict(enumerate(code.encode(PAYLOAD)))
        expected = padded_for(code, PAYLOAD)
        for lost in itertools.combinations(
            range(code.total_shares), code.tolerance
        ):
            survivors = {
                k: v for k, v in shares.items() if k not in set(lost)
            }
            assert code.decode(survivors) == expected, f"lost shares {lost}"

    def test_too_many_erasures_raise(self, code):
        shares = dict(enumerate(code.encode(PAYLOAD)))
        keep = sorted(shares)[: code.data_shares - 1]
        survivors = {k: shares[k] for k in keep}
        with pytest.raises(DecodingError):
            code.decode(survivors)

    def test_overhead_accounting(self, code):
        assert code.storage_overhead == pytest.approx(
            code.total_shares / code.data_shares
        )
        assert code.tolerance == code.total_shares - code.data_shares

    def test_empty_block(self, code):
        shares = code.encode(b"")
        decoded = code.decode(dict(enumerate(shares)))
        assert decoded == b""


class TestMirrorSpecifics:
    def test_detects_divergent_copies(self):
        code = MirrorCode(2)
        with pytest.raises(DecodingError):
            code.decode({0: b"aaa", 1: b"bbb"})

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            MirrorCode(0)


class TestReedSolomonSpecifics:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 2)
        with pytest.raises(ValueError):
            ReedSolomonCode(200, 100)

    def test_mismatched_share_lengths(self):
        code = ReedSolomonCode(2, 1)
        shares = dict(enumerate(code.encode(b"abcdef")))
        shares[0] = shares[0] + b"x"
        with pytest.raises(DecodingError):
            code.decode(shares)

    def test_share_position_out_of_range(self):
        code = ReedSolomonCode(2, 1)
        shares = dict(enumerate(code.encode(b"abcdef")))
        shares[9] = shares.pop(2)
        with pytest.raises(DecodingError):
            code.decode(shares)

    def test_reconstruct_share(self):
        code = ReedSolomonCode(3, 2)
        shares = code.encode(PAYLOAD)
        survivors = {k: v for k, v in enumerate(shares) if k != 4}
        assert code.reconstruct_share(survivors, 4) == shares[4]

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, payload):
        code = ReedSolomonCode(3, 2)
        shares = dict(enumerate(code.encode(payload)))
        decoded = code.decode({k: shares[k] for k in (1, 3, 4)})
        assert decoded[: len(payload)] == payload


class TestParityCodesSpecifics:
    def test_evenodd_requires_prime(self):
        with pytest.raises(ValueError):
            EvenOddCode(4)
        with pytest.raises(ValueError):
            EvenOddCode(2)

    def test_rdp_requires_prime(self):
        with pytest.raises(ValueError):
            RowDiagonalParityCode(9)

    @given(st.binary(min_size=1, max_size=120), st.sampled_from([3, 5, 7]))
    @settings(max_examples=40, deadline=None)
    def test_evenodd_property_double_erasure(self, payload, prime):
        code = EvenOddCode(prime)
        shares = dict(enumerate(code.encode(payload)))
        lost = (0, min(prime, 2))
        survivors = {k: v for k, v in shares.items() if k not in lost}
        decoded = code.decode(survivors)
        assert decoded[: len(payload)] == payload

    @given(st.binary(min_size=1, max_size=120), st.sampled_from([3, 5, 7]))
    @settings(max_examples=40, deadline=None)
    def test_rdp_property_double_erasure(self, payload, prime):
        code = RowDiagonalParityCode(prime)
        shares = dict(enumerate(code.encode(payload)))
        lost = (0, code.total_shares - 1)
        survivors = {k: v for k, v in shares.items() if k not in lost}
        decoded = code.decode(survivors)
        assert decoded[: len(payload)] == payload
