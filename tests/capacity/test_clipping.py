"""Tests for Lemma 2.1 / Lemma 2.2 / Algorithm 1 (capacity clipping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity import clipping
from repro.exceptions import ConfigurationError


CAPACITY_VECTORS = st.lists(
    st.integers(min_value=1, max_value=10_000), min_size=2, max_size=12
).map(lambda values: sorted(values, reverse=True))


class TestLemma21:
    def test_balanced_system_is_efficient(self):
        assert clipping.is_capacity_efficient([4, 4, 4], k=2)

    def test_paper_figure1_system_is_efficient(self):
        # [2, 1, 1] with k=2: 2*2 <= 4, exactly on the boundary.
        assert clipping.is_capacity_efficient([2, 1, 1], k=2)

    def test_oversized_bin_is_not(self):
        assert not clipping.is_capacity_efficient([10, 1, 1], k=2)

    def test_validation_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            clipping.is_capacity_efficient([1, 2], k=2)  # not descending
        with pytest.raises(ConfigurationError):
            clipping.is_capacity_efficient([2], k=2)  # fewer bins than k
        with pytest.raises(ConfigurationError):
            clipping.is_capacity_efficient([2, 0], k=2)  # non-positive
        with pytest.raises(ConfigurationError):
            clipping.is_capacity_efficient([2, 1], k=0)


class TestWaterFill:
    def test_efficient_system_uses_b_over_k(self):
        assert clipping.water_fill_limit([4, 4, 4], k=2) == pytest.approx(6.0)

    def test_oversized_bin_binds(self):
        # [10, 6, 1], k=2: m* = 7 (bin 0 clipped to 7).
        assert clipping.water_fill_limit([10, 6, 1], k=2) == pytest.approx(7.0)

    def test_tie_heavy_vector(self):
        # [100, 2, 2, 2], k=3: m* = 3 — a regression test for segment
        # scanning with repeated capacities.
        assert clipping.water_fill_limit([100, 2, 2, 2], k=3) == pytest.approx(3.0)

    def test_n_equals_k_limits_to_smallest(self):
        assert clipping.water_fill_limit([5, 4, 2], k=3) == pytest.approx(2.0)

    def test_max_balls_integer(self):
        assert clipping.max_balls([10, 6, 1], k=2) == 7
        assert clipping.max_balls([100, 2, 2, 2], k=3) == 3

    @given(CAPACITY_VECTORS, st.integers(min_value=1, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_water_fill_is_the_exact_maximum(self, capacities, k):
        """m* satisfies the constraint; m*+1 does not (integer check)."""
        if len(capacities) < k:
            return
        m = clipping.max_balls(capacities, k)
        assert sum(min(b, m) for b in capacities) >= k * m
        assert sum(min(b, m + 1) for b in capacities) < k * (m + 1)


class TestOptimalWeights:
    def test_no_clipping_when_efficient(self):
        capacities = [4, 4, 3]
        assert clipping.optimal_weights(capacities, k=2) == [4.0, 4.0, 3.0]

    def test_single_clip(self):
        assert clipping.optimal_weights([10, 6, 1], k=2) == [7.0, 6.0, 1.0]

    def test_nested_clip(self):
        # k=3, [100, 100, 1, 1]: inner recursion clips bin 1 to 2, then bin 0
        # to (2+1+1)/2 = 2.
        assert clipping.optimal_weights([100, 100, 1, 1], k=3) == [2.0, 2.0, 1.0, 1.0]

    def test_k1_never_clips(self):
        assert clipping.optimal_weights([100, 1], k=1) == [100.0, 1.0]

    def test_result_stays_descending(self):
        result = clipping.optimal_weights([50, 20, 5, 5, 1], k=4)
        assert all(a >= b - 1e-9 for a, b in zip(result, result[1:]))

    @given(CAPACITY_VECTORS, st.integers(min_value=2, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_water_filling(self, capacities, k):
        """Algorithm 1 and the water-fill fixed point produce the same b̂."""
        if len(capacities) < k:
            return
        recursive = clipping.optimal_weights(capacities, k)
        filled = clipping.clip_capacities(capacities, k)
        for a, b in zip(recursive, filled):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-6)

    @given(CAPACITY_VECTORS, st.integers(min_value=2, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_clipped_vector_is_feasible(self, capacities, k):
        """After clipping, Lemma 2.1's condition holds."""
        if len(capacities) < k:
            return
        clipped = clipping.optimal_weights(capacities, k)
        assert k * clipped[0] <= sum(clipped) + 1e-6


class TestClippedShares:
    def test_shares_sum_to_one(self):
        shares = clipping.clipped_shares([10, 6, 1], k=2)
        assert sum(shares) == pytest.approx(1.0)

    def test_efficient_system_keeps_raw_shares(self):
        shares = clipping.clipped_shares([4, 4, 2], k=2)
        assert shares == pytest.approx([0.4, 0.4, 0.2])

    def test_oversized_bin_share_is_capped_at_1_over_k(self):
        shares = clipping.clipped_shares([1000, 6, 1], k=2)
        assert shares[0] == pytest.approx(0.5)


class TestWastedCapacity:
    def test_no_waste_when_efficient(self):
        lost, fraction = clipping.wasted_capacity([4, 4, 4], k=2)
        assert lost == 0.0
        assert fraction == 0.0

    def test_waste_of_oversized_bin(self):
        lost, fraction = clipping.wasted_capacity([10, 6, 1], k=2)
        assert lost == pytest.approx(3.0)
        assert fraction == pytest.approx(3.0 / 17.0)
