"""Unit tests for suffix sums and round probabilities."""

import pytest

from repro.capacity import weights


class TestSuffixSums:
    def test_simple(self):
        assert weights.suffix_sums([3, 2, 1]) == [6, 3, 1, 0]

    def test_empty(self):
        assert weights.suffix_sums([]) == [0.0]

    def test_single(self):
        assert weights.suffix_sums([5]) == [5, 0]


class TestSortedCheck:
    def test_descending_ok(self):
        assert weights.is_sorted_descending([5, 5, 3, 1])

    def test_ascending_not_ok(self):
        assert not weights.is_sorted_descending([1, 2])

    def test_empty_and_single_are_sorted(self):
        assert weights.is_sorted_descending([])
        assert weights.is_sorted_descending([7])


class TestRoundProbabilities:
    def test_paper_example_k2(self):
        # Bins [2, 1, 1]: č_0 = 2*2/4 = 1, so the big bin is always primary —
        # exactly the Figure 1 requirement the trivial strategy misses.
        probs = weights.round_probabilities([2, 1, 1], k=2)
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(1.0)
        assert probs[2] == pytest.approx(2.0)

    def test_last_round_equals_k(self):
        for k in (1, 2, 3, 5):
            probs = weights.round_probabilities([4, 3, 2, 2], k=k)
            assert probs[-1] == pytest.approx(k)

    def test_requires_descending(self):
        with pytest.raises(ValueError):
            weights.round_probabilities([1, 2], k=2)

    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            weights.round_probabilities([2, 1], k=0)

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            weights.round_probabilities([], k=2)


class TestReachProbabilities:
    def test_caps_at_one(self):
        reach = weights.reach_probabilities([0.5, 2.0, 0.5])
        assert reach == pytest.approx([1.0, 0.5, 0.0, 0.0])

    def test_monotone_nonincreasing(self):
        reach = weights.reach_probabilities([0.1, 0.2, 0.3])
        assert all(a >= b for a, b in zip(reach, reach[1:]))


class TestPrimaryProbabilities:
    def test_sum_to_one_when_saturated(self):
        probs = weights.primary_probabilities([5, 4, 3, 2, 1], k=2)
        assert sum(probs) == pytest.approx(1.0)

    def test_biggest_bin_gets_its_demand(self):
        # č_0 = k*b_0/B is exactly the required primary probability for bin 0.
        capacities = [5.0, 4.0, 3.0, 2.0, 1.0]
        probs = weights.primary_probabilities(capacities, k=2)
        assert probs[0] == pytest.approx(2 * 5 / 15)

    def test_all_nonnegative(self):
        probs = weights.primary_probabilities([9, 7, 5, 3, 1], k=3)
        assert all(p >= 0 for p in probs)


class TestFirstSaturatedIndex:
    def test_finds_stop(self):
        probs = [0.4, 0.9, 1.0, 2.0]
        assert weights.first_saturated_index(probs) == 2

    def test_no_stop_raises(self):
        with pytest.raises(ValueError):
            weights.first_saturated_index([0.1, 0.2])


class TestNormalize:
    def test_sums_to_one(self):
        assert sum(weights.normalize([3, 1])) == pytest.approx(1.0)

    def test_zero_sum_raises(self):
        with pytest.raises(ValueError):
            weights.normalize([0.0, 0.0])
