"""Lemmas 2.1/2.2 — capacity efficiency of strategies vs the optimum.

For a set of heterogeneous capacity vectors this bench reports:

* ``B_max`` — the provable maximum number of storable balls (Lemma 2.2,
  computed both by Algorithm 1 and by water-filling, asserted equal);
* the expected *achievable* balls under the trivial strategy — reduced by
  the Lemma 2.4 under-loading of big bins;
* the expected achievable balls under Redundant Share — equal to ``B_max``
  because the clipped shares are met exactly.

"Achievable balls" for a strategy: the ball count at which the first bin
overflows in expectation, i.e. ``min_i capacity_i / (k * share_i)``.
"""

import pytest

from _tables import emit
from repro.capacity import clip_capacities, max_balls, optimal_weights
from repro.core import RedundantShare
from repro.placement import TrivialReplication
from repro.types import bins_from_capacities

VECTORS = [
    [2, 1, 1],
    [4, 2, 1, 1],
    [10, 6, 1],
    [8, 8, 8, 8],
    [100, 6, 1],
    [12, 9, 6, 3, 2],
]
COPIES = 2


def achievable_balls(capacities, shares):
    """Balls storable before the first bin overflows in expectation."""
    best = float("inf")
    for capacity, share in zip(capacities, shares):
        if share <= 0:
            continue
        best = min(best, capacity / (COPIES * share))
    return best


def run_table():
    rows = []
    for capacities in VECTORS:
        ordered = sorted(capacities, reverse=True)
        bins = bins_from_capacities(ordered)
        optimum = max_balls(ordered, COPIES)
        assert clip_capacities(ordered, COPIES) == pytest.approx(
            optimal_weights(ordered, COPIES)
        )

        trivial = TrivialReplication(bins, copies=COPIES)
        trivial_shares = [
            trivial.expected_shares()[spec.bin_id] for spec in bins
        ]
        redundant = RedundantShare(bins, copies=COPIES)
        redundant_shares = [
            redundant.expected_shares()[spec.bin_id] for spec in bins
        ]
        rows.append(
            (
                ordered,
                optimum,
                achievable_balls(ordered, trivial_shares),
                achievable_balls(ordered, redundant_shares),
            )
        )
    return rows


def test_capacity_efficiency_table(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)

    emit(
        "Capacity efficiency (k=2): balls storable before first overflow",
        ["capacities", "B_max (Lemma 2.2)", "trivial", "redundant share"],
        [
            (str(vector), optimum, f"{trivial:.2f}", f"{redundant:.2f}")
            for vector, optimum, trivial, redundant in rows
        ],
    )

    for vector, optimum, trivial, redundant in rows:
        # Redundant Share achieves the Lemma 2.2 optimum (up to rounding).
        assert redundant == pytest.approx(optimum, rel=0.02), vector
        # The trivial strategy never beats it ...
        assert trivial <= redundant + 1e-6, vector
        heterogenous = len(set(vector)) > 1
        if heterogenous:
            # ... and strictly under-uses heterogeneous systems (Lemma 2.4).
            assert trivial < optimum * 0.999, vector
