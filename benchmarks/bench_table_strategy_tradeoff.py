"""Full-zoo trade-off table: movement vs fairness vs throughput.

One row per registered placement strategy, three axes the paper's
Table 1 trades against each other:

* **movement** — copies whose whole replica set changes when one device
  joins the fleet (via :func:`repro.metrics.compare_scale_out`), as a
  fraction of all stored copies.  The registry's declared
  ``movement_class`` must be honest: a ``"zero"`` strategy moves exactly
  nothing, a ``"bounded"``/``"proportional"`` one stays well under a
  full reshuffle, and only ``"full"`` strategies may approach 1.
* **fairness** — Pearson chi-square and max share deviation of realised
  copy counts against the Lemma 2.2 fair shares of the fleet.
* **throughput** — ``place_many`` addresses/second on the same
  population (the batch engine, whatever leg is available).

Two headline gates anchor the new strategies:

* ``sequential-checking`` moves **exactly zero** copies on scale-out —
  the reallocation-free guarantee is asserted as an integer equality,
  not a tolerance.
* ``rpdp`` with skewed service rates has peak *load* (copies held over
  rate share) no worse than the capacity-only trivial placement on the
  same fleet — the residual-performance claim.

Results go to ``BENCH_tradeoff.json`` (latest run) plus a timestamped
``BENCH_history.jsonl`` record.  ``REPRO_BENCH_TRADEOFF_ADDRESSES``
scales the population for smoke runs (CI uses 4000).  The payload key
sets are pinned by ``tests/placement/test_bench_tradeoff_schema.py``.
"""

import json
import os
import pathlib
import time

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.capacity import max_balls
from repro.metrics import (
    chi_square_statistic,
    compare_scale_out,
    count_copies,
    fair_copy_shares,
    max_share_deviation,
    usage_shares,
)
from repro.placement import utilization
from repro.placement.registry import create, registered_strategies
from repro.simulation import heterogeneous_bins
from repro.types import bins_from_capacities

#: Address population for the fairness and throughput columns; the
#: movement column additionally clamps to the smaller fleet's Lemma 2.2
#: capacity so sequential-checking's guarantee is exercised in-range.
ADDRESSES = int(os.environ.get("REPRO_BENCH_TRADEOFF_ADDRESSES", "") or 50_000)
#: Replication degree for strategies that honour ``copies``.
COPIES = 3
#: The paper's heterogeneous fleet, before and after one device joins.
FLEET_SIZE = 10

#: The RPDP gate's fleet: capacity and serving power anti-correlated, so
#: a capacity-proportional placement overloads the big slow devices.
SKEWED_CAPACITIES = (4000, 3000, 2000, 1000)
SKEWED_RATES = (1.0, 2.0, 4.0, 8.0)

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_tradeoff.json"
HISTORY = ROOT / "BENCH_history.jsonl"

#: Pinned output schema (see tests/placement/test_bench_tradeoff_schema.py).
PAYLOAD_KEYS = (
    "benchmark",
    "copies",
    "fleet",
    "gates",
    "numpy",
    "population",
    "strategies",
)
ROW_KEYS = (
    "batch_per_sec",
    "chi_square",
    "kernel",
    "max_share_deviation",
    "moved_fraction",
    "moved_set",
    "movement_class",
    "supports_scale_out",
    "vectorized",
)
GATE_KEYS = ("rpdp_peak_load", "sequential_checking_zero_move")


def _movement_population(before_bins, copies):
    descending = sorted((spec.capacity for spec in before_bins), reverse=True)
    return range(min(ADDRESSES, max_balls(descending, copies)))


def measure(entry, before_bins, after_bins):
    """One table row: movement, fairness and throughput for one entry."""
    copies = entry.effective_copies(COPIES)
    population = _movement_population(before_bins, copies)
    report = compare_scale_out(
        entry.name, before_bins, after_bins, population, copies=COPIES
    )
    stored_copies = len(population) * copies

    strategy = create(entry.name, after_bins, copies=COPIES)
    addresses = list(range(ADDRESSES))
    strategy.place_many(addresses[:64])  # warm lazy vector tables
    start = time.perf_counter()
    batch = strategy.place_many(addresses)
    batch_seconds = time.perf_counter() - start

    counts = count_copies(batch)
    capacities = {spec.bin_id: float(spec.capacity) for spec in after_bins}
    expected = fair_copy_shares(capacities, copies)
    return {
        "movement_class": entry.movement_class,
        "supports_scale_out": entry.supports_scale_out,
        "vectorized": entry.vectorized,
        "kernel": entry.kernel,
        "moved_set": report.moved_set,
        "moved_fraction": round(report.moved_set / stored_copies, 4),
        "chi_square": round(chi_square_statistic(counts, expected), 2),
        "max_share_deviation": round(
            max_share_deviation(usage_shares(counts), expected), 4
        ),
        "batch_per_sec": round(ADDRESSES / batch_seconds),
    }


def run_gates():
    """The two headline guarantees, measured on their canonical fleets."""
    # Gate 1: sequential checking moves exactly nothing on scale-out.
    before = heterogeneous_bins(FLEET_SIZE)
    after = heterogeneous_bins(FLEET_SIZE + 1)
    population = _movement_population(before, COPIES)
    zero = compare_scale_out(
        "sequential-checking", before, after, population, copies=COPIES
    )

    # Gate 2: RPDP peak load <= capacity-only placement on a skewed fleet.
    bins = bins_from_capacities(SKEWED_CAPACITIES)
    rates = {
        spec.bin_id: rate for spec, rate in zip(bins, SKEWED_RATES)
    }
    addresses = list(range(ADDRESSES))
    rpdp = create("rpdp", bins, copies=COPIES, service_rates=SKEWED_RATES)
    trivial = create("trivial", bins, copies=COPIES)
    rpdp_peak = max(
        utilization(count_copies(rpdp.place_many(addresses)), rates).values()
    )
    trivial_peak = max(
        utilization(
            count_copies(trivial.place_many(addresses)), rates
        ).values()
    )
    return {
        "sequential_checking_zero_move": {
            "population": len(population),
            "moved_set": zero.moved_set,
            "moved_positional": zero.moved_positional,
        },
        "rpdp_peak_load": {
            "rpdp": round(rpdp_peak, 3),
            "capacity_only": round(trivial_peak, 3),
        },
    }


def test_strategy_tradeoff_table(benchmark):
    """Regenerates BENCH_tradeoff.json and asserts both headline gates."""
    before_bins = heterogeneous_bins(FLEET_SIZE)
    after_bins = heterogeneous_bins(FLEET_SIZE + 1)

    def experiment():
        rows = {
            entry.name: measure(entry, before_bins, after_bins)
            for entry in registered_strategies()
        }
        return rows, run_gates()

    results, gates = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        "Strategy trade-off (movement vs fairness vs throughput, "
        f"{FLEET_SIZE}→{FLEET_SIZE + 1} disks, k={COPIES})",
        [
            "strategy", "movement", "moved", "moved%",
            "chi²", "max dev", "batch/s",
        ],
        [
            [
                name,
                row["movement_class"],
                row["moved_set"],
                f"{100 * row['moved_fraction']:.1f}%",
                row["chi_square"],
                f"{row['max_share_deviation']:.4f}",
                row["batch_per_sec"],
            ]
            for name, row in results.items()
        ],
    )

    payload = {
        "benchmark": "bench_table_strategy_tradeoff",
        "copies": COPIES,
        "fleet": [FLEET_SIZE, FLEET_SIZE + 1],
        "gates": gates,
        "numpy": HAVE_NUMPY,
        "population": ADDRESSES,
        "strategies": results,
    }
    assert tuple(sorted(payload)) == PAYLOAD_KEYS
    for row in results.values():
        assert tuple(sorted(row)) == ROW_KEYS
    assert tuple(sorted(gates)) == GATE_KEYS
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    record = dict(payload, timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    with HISTORY.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")

    benchmark.extra_info["numpy"] = HAVE_NUMPY
    for name, row in results.items():
        benchmark.extra_info[f"{name}_moved_fraction"] = row["moved_fraction"]

    # Coverage: the table must sweep the whole registry, every row full.
    assert set(results) == {
        entry.name for entry in registered_strategies()
    }

    # Gate 1: the reallocation-free guarantee is exact, not approximate.
    zero = gates["sequential_checking_zero_move"]
    assert zero["moved_set"] == 0, zero
    assert zero["moved_positional"] == 0, zero
    assert results["sequential-checking"]["moved_set"] == 0

    # Gate 2: residual-performance placement beats capacity-only load.
    load = gates["rpdp_peak_load"]
    assert load["rpdp"] <= load["capacity_only"], load

    # Honesty of the declared movement classes, against a full reshuffle.
    for name, row in results.items():
        if row["movement_class"] == "zero":
            assert row["moved_set"] == 0, name
        elif row["movement_class"] in ("bounded", "proportional"):
            assert row["moved_fraction"] < 0.75, name
