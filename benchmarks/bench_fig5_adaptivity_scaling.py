"""Figure 5 — adaptivity of k-replication (k = 4) vs number of bins.

Paper setup: homogeneous systems of 4..60 bins; add one bin either as the
biggest or as the smallest; measure replaced blocks / blocks on the new
bin.

Paper result: "For adding bins at the beginning of the list, we get nearly
a constant factor.  For adding it as smallest bin ... the more disks are
inside the environment, the worse the competitiveness becomes", while
Lemma 3.5's k² = 16 bound is never approached ("the graph lets us assume
that there is a much lower bound").
"""

import pytest

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.core import RedundantShare
from repro.simulation import run_adaptivity, scaling_cases

BALLS = 4_000
COPIES = 4
SIZES = (4, 8, 16, 24, 36, 48, 60)


def run_figure5():
    cases = scaling_cases(SIZES, capacity=5_000)
    results = run_adaptivity(
        cases,
        lambda bins: RedundantShare(bins, copies=COPIES),
        balls=BALLS,
    )
    table = {}
    for case_result in results:
        # labels look like "n=16 add biggest"
        parts = case_result.label.split()
        n = int(parts[0][2:])
        kind = parts[2]
        table.setdefault(n, {})[kind] = case_result.factor
    return table


def test_fig5_adaptivity_scaling_k4(benchmark):
    table = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    # Movement comparison runs over batch placements; record the engine.
    benchmark.extra_info["batch_backend"] = "numpy" if HAVE_NUMPY else "python"

    emit(
        "Figure 5: replaced/used factor, k=4, homogeneous bins "
        "(paper: biggest ~ constant, smallest grows; bound k^2 = 16)",
        ["bins", "add as biggest", "add as smallest"],
        [
            (n, f"{table[n]['biggest']:.2f}", f"{table[n]['smallest']:.2f}")
            for n in sorted(table)
        ],
    )
    for n in sorted(table):
        benchmark.extra_info[f"n={n}"] = {
            kind: round(value, 3) for kind, value in table[n].items()
        }

    biggest = [table[n]["biggest"] for n in sorted(table)]
    smallest = [table[n]["smallest"] for n in sorted(table)]

    # Biggest stays nearly constant: bounded range over the whole sweep.
    assert max(biggest) - min(biggest) < 1.2, biggest
    # Smallest grows with n and exceeds biggest at scale.
    assert smallest[-1] > smallest[0], smallest
    for n in sorted(table)[2:]:
        assert table[n]["smallest"] > table[n]["biggest"]
    # Far below the k^2 = 16 worst case (the paper's "much lower bound").
    assert max(smallest) < 10.0
    assert max(biggest) < 5.0
