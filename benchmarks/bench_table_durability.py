"""Durability value of the redundancy property (extension table).

The paper motivates replication by data loss on device failure; this bench
quantifies it: MTTDL (mean time to data loss) for the redundancy schemes
the library implements, from the exact Markov model, cross-checked by
discrete-event simulation.  Units: days, with MTTF = 1000 days and
MTTR = 1 day per device.
"""

import pytest

from _tables import emit
from repro.analysis import DurabilityModel, mttdl, simulate_mttdl
from repro.chaos import (
    ChaosOptions,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FleetOptions,
    FleetSimulator,
    RepairPolicy,
    crash_epochs,
    run_chaos,
)
from repro.cluster import Cluster
from repro.hashing.primitives import stable_u64
from repro.placement.registry import create
from repro.types import bins_from_capacities

MTTF = 1000.0
MTTR = 1.0

SCHEMES = {
    "no redundancy (k=1)": DurabilityModel(1, 0, MTTF, MTTR),
    "mirror k=2": DurabilityModel(2, 1, MTTF, MTTR),
    "mirror k=3": DurabilityModel(3, 2, MTTF, MTTR),
    "single parity (4+1)": DurabilityModel(5, 1, MTTF, MTTR),
    "RS / EVENODD / RDP (4+2)": DurabilityModel(6, 2, MTTF, MTTR),
}


def run_table():
    return {name: mttdl(model) for name, model in SCHEMES.items()}


def test_durability_table(benchmark):
    values = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit(
        f"MTTDL per redundancy group (MTTF={MTTF:.0f}d, MTTR={MTTR:.0f}d)",
        ["scheme", "MTTDL (days)", "MTTDL (years)"],
        [
            (name, f"{days:,.0f}", f"{days / 365.25:,.1f}")
            for name, days in values.items()
        ],
    )
    benchmark.extra_info.update(
        {name: round(days, 1) for name, days in values.items()}
    )

    # Qualitative shape: each added failure tolerance buys orders of
    # magnitude; parity codes sit between the mirrors of equal tolerance
    # (more devices => more exposure).
    assert values["no redundancy (k=1)"] == pytest.approx(MTTF)
    assert values["mirror k=2"] > 100 * values["no redundancy (k=1)"]
    assert values["mirror k=3"] > 100 * values["mirror k=2"]
    assert (
        values["mirror k=2"]
        > values["single parity (4+1)"]
        > values["no redundancy (k=1)"]
    )
    assert values["mirror k=3"] > values["RS / EVENODD / RDP (4+2)"]
    assert values["RS / EVENODD / RDP (4+2)"] > values["mirror k=2"]


def test_simulation_validates_model(benchmark):
    model = DurabilityModel(2, 1, 100.0, 10.0)

    def experiment():
        return mttdl(model), simulate_mttdl(model, runs=400, seed=9)

    analytic, simulated = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "Markov model vs discrete-event simulation (mirror k=2, "
        "MTTF=100, MTTR=10)",
        ["method", "MTTDL"],
        [("analytic", f"{analytic:.1f}"), ("simulated", f"{simulated:.1f}")],
    )
    benchmark.extra_info["analytic"] = round(analytic, 2)
    benchmark.extra_info["simulated"] = round(simulated, 2)
    assert simulated == pytest.approx(analytic, rel=0.2)


@pytest.mark.parametrize("seed", [0, 5, 17])
def test_fleet_matches_event_controller_losses(benchmark, seed):
    """Zero-divergence cross-check: fleet vs event-driven controller.

    Both engines replay the same seeded crash-only :class:`FaultSchedule`
    (a simultaneous pair picked as the placement of a seeded victim
    block, plus a later single crash) on the same bins and strategy; the
    sets of lost blocks must be identical.  Any divergence means one
    engine's loss accounting is wrong — fail loudly with both sets.
    """
    devices, blocks, copies = 10, 500, 2
    bins = bins_from_capacities([blocks // 2] * devices, prefix="dev")
    device_ids = [spec.bin_id for spec in bins]
    strategy = create("striping", bins, copies=copies)
    victim = stable_u64("durability-cross-check", seed) % blocks
    pair = strategy.place(victim)
    survivors = [device for device in device_ids if device not in pair]
    single = survivors[stable_u64("durability-single", seed) % len(survivors)]
    schedule = FaultSchedule(
        [FaultEvent(2.0, FaultKind.CRASH, device) for device in pair]
        + [FaultEvent(10.0, FaultKind.CRASH, single)]
    )

    def experiment():
        cluster = Cluster(
            bins, lambda b: create("striping", b, copies=copies)
        )
        for address in range(blocks):
            cluster.write(address, b"x" * 8)
        controller = run_chaos(
            cluster,
            schedule,
            ChaosOptions(
                seed=seed,
                policy=RepairPolicy(rate=float(blocks), timeout=1000.0),
                replacement_delay=1.0,
            ),
        )
        fleet = FleetSimulator(
            FleetOptions(
                devices=devices,
                blocks=blocks,
                copies=copies,
                epochs=16,
                failure_rate=0.0,
                repair_rate=float(blocks),
                seed=seed,
                strategy="striping",
            ),
            bins=bins,
        ).run(crash_epochs(schedule, device_ids))
        return controller, fleet

    controller, fleet = benchmark.pedantic(experiment, rounds=1, iterations=1)
    controller_losses = {loss.address for loss in controller.loss_events}
    fleet_losses = set(fleet.lost_addresses)
    assert victim in controller_losses, (
        "cross-check scenario degenerate: the victim block survived the "
        "simultaneous pair crash"
    )
    if controller_losses != fleet_losses:
        pytest.fail(
            "LOSS DIVERGENCE between the event-driven controller and the "
            f"fleet engine (seed={seed}):\n"
            f"  controller lost {sorted(controller_losses)}\n"
            f"  fleet lost      {sorted(fleet_losses)}\n"
            f"  only controller {sorted(controller_losses - fleet_losses)}\n"
            f"  only fleet      {sorted(fleet_losses - controller_losses)}"
        )
    assert controller.faults.get("crash", 0) == fleet.device_failures
