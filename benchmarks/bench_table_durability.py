"""Durability value of the redundancy property (extension table).

The paper motivates replication by data loss on device failure; this bench
quantifies it: MTTDL (mean time to data loss) for the redundancy schemes
the library implements, from the exact Markov model, cross-checked by
discrete-event simulation.  Units: days, with MTTF = 1000 days and
MTTR = 1 day per device.
"""

import pytest

from _tables import emit
from repro.analysis import DurabilityModel, mttdl, simulate_mttdl

MTTF = 1000.0
MTTR = 1.0

SCHEMES = {
    "no redundancy (k=1)": DurabilityModel(1, 0, MTTF, MTTR),
    "mirror k=2": DurabilityModel(2, 1, MTTF, MTTR),
    "mirror k=3": DurabilityModel(3, 2, MTTF, MTTR),
    "single parity (4+1)": DurabilityModel(5, 1, MTTF, MTTR),
    "RS / EVENODD / RDP (4+2)": DurabilityModel(6, 2, MTTF, MTTR),
}


def run_table():
    return {name: mttdl(model) for name, model in SCHEMES.items()}


def test_durability_table(benchmark):
    values = benchmark.pedantic(run_table, rounds=1, iterations=1)
    emit(
        f"MTTDL per redundancy group (MTTF={MTTF:.0f}d, MTTR={MTTR:.0f}d)",
        ["scheme", "MTTDL (days)", "MTTDL (years)"],
        [
            (name, f"{days:,.0f}", f"{days / 365.25:,.1f}")
            for name, days in values.items()
        ],
    )
    benchmark.extra_info.update(
        {name: round(days, 1) for name, days in values.items()}
    )

    # Qualitative shape: each added failure tolerance buys orders of
    # magnitude; parity codes sit between the mirrors of equal tolerance
    # (more devices => more exposure).
    assert values["no redundancy (k=1)"] == pytest.approx(MTTF)
    assert values["mirror k=2"] > 100 * values["no redundancy (k=1)"]
    assert values["mirror k=3"] > 100 * values["mirror k=2"]
    assert (
        values["mirror k=2"]
        > values["single parity (4+1)"]
        > values["no redundancy (k=1)"]
    )
    assert values["mirror k=3"] > values["RS / EVENODD / RDP (4+2)"]
    assert values["RS / EVENODD / RDP (4+2)"] > values["mirror k=2"]


def test_simulation_validates_model(benchmark):
    model = DurabilityModel(2, 1, 100.0, 10.0)

    def experiment():
        return mttdl(model), simulate_mttdl(model, runs=400, seed=9)

    analytic, simulated = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(
        "Markov model vs discrete-event simulation (mirror k=2, "
        "MTTF=100, MTTR=10)",
        ["method", "MTTDL"],
        [("analytic", f"{analytic:.1f}"), ("simulated", f"{simulated:.1f}")],
    )
    benchmark.extra_info["analytic"] = round(analytic, 2)
    benchmark.extra_info["simulated"] = round(simulated, 2)
    assert simulated == pytest.approx(analytic, rel=0.2)
