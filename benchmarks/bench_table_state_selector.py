"""Section 3.3 ablation: per-state samplers of the O(k) variant.

The paper's fast construction needs, per precomputed state, "an algorithm
for the placement of a single copy".  Three realisations are compared:

* ``cdf`` — inverse CDF: O(log n) per copy, exact fairness, but CDF
  boundary shifts *cascade* under reconfiguration;
* ``rendezvous`` — exact fairness and scan-grade adaptivity, O(n) per copy;
* ``share`` — Share per state: near-O(1), adaptive, (1+eps)-fair.

Reported: fairness deviation, movement on adding a device, and lookup
latency — the memory/time/adaptivity triangle the paper alludes to with
"using more memory and additional hash functions".
"""

import time

import pytest

from _tables import emit
from repro.core import FastRedundantShare
from repro.types import BinSpec, bins_from_capacities

CAPACITIES = [1000, 900, 800, 700, 600, 500, 400, 300]
COPIES = 2
BALLS = 20_000
SELECTORS = ("cdf", "rendezvous", "share")


def evaluate(selector):
    bins = bins_from_capacities(CAPACITIES)
    strategy = FastRedundantShare(
        bins, copies=COPIES, state_selector=selector
    )
    counts = {}
    for address in range(BALLS):
        for bin_id in strategy.place(address):
            counts[bin_id] = counts.get(bin_id, 0) + 1
    total = sum(counts.values())
    deviation = max(
        abs(counts.get(bin_id, 0) / total - share)
        for bin_id, share in strategy.expected_shares().items()
    )

    grown = bins + [BinSpec("bin-new", 800)]
    after = FastRedundantShare(grown, copies=COPIES, state_selector=selector)
    moved = sum(
        1 for address in range(4000) if strategy.place(address) != after.place(address)
    ) / 4000

    start = time.perf_counter()
    for address in range(4000):
        strategy.place(address)
    latency = (time.perf_counter() - start) / 4000
    return deviation, moved, latency


def run_ablation():
    return {selector: evaluate(selector) for selector in SELECTORS}


def test_state_selector_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        "Fast-variant per-state sampler ablation (k=2, 8 bins)",
        ["selector", "fairness deviation", "balls moved on add", "lookup"],
        [
            (
                selector,
                f"{deviation:.3%}",
                f"{moved:.1%}",
                f"{latency * 1e6:.1f}us",
            )
            for selector, (deviation, moved, latency) in results.items()
        ],
    )
    for selector, values in results.items():
        benchmark.extra_info[selector] = {
            "deviation": round(values[0], 5),
            "moved": round(values[1], 4),
            "latency_us": round(values[2] * 1e6, 2),
        }

    # Exact samplers are near-exactly fair; Share is (1+eps)-fair.
    assert results["cdf"][0] < 0.012
    assert results["rendezvous"][0] < 0.012
    assert results["share"][0] < 0.05
    # Adaptive samplers beat the cascading CDF on movement.
    assert results["rendezvous"][1] < results["cdf"][1]
    assert results["share"][1] < results["cdf"][1]
