"""Failure-domain extension: rack-aware Redundant Share vs flat placement.

The paper's redundancy property is per-*device*; real deployments need it
per failure domain (rack, room, site).  The hierarchical composition
(Redundant Share over racks, fair rendezvous within) keeps device-level
fairness while guaranteeing one copy per rack.  This bench quantifies both
halves:

* device fairness of flat vs hierarchical vs CRUSH-chooseleaf;
* fraction of blocks lost when an entire rack burns down (k = 2).
"""

import collections

import pytest

from _tables import emit
from repro.core import HierarchicalRedundantShare, RedundantShare
from repro.placement import ChooseleafCrush
from repro.types import bins_from_capacities

RACKS = {
    "rack-a": bins_from_capacities([900, 700], prefix="a"),
    "rack-b": bins_from_capacities([800, 800], prefix="b"),
    "rack-c": bins_from_capacities([600, 500, 500], prefix="c"),
}
BALLS = 25_000
COPIES = 2


def flat_bins():
    return [spec for devices in RACKS.values() for spec in devices]


def rack_of(device_id):
    return f"rack-{device_id[0]}"


def evaluate(strategy):
    counts = collections.Counter()
    rack_losses = {rack: 0 for rack in RACKS}
    for address in range(BALLS):
        placement = strategy.place(address)
        counts.update(placement)
        racks = [rack_of(device) for device in placement]
        for rack in RACKS:
            if all(r == rack for r in racks):
                rack_losses[rack] += 1
    total_capacity = sum(spec.capacity for spec in flat_bins())
    deviation = max(
        abs(counts[spec.bin_id] / (COPIES * BALLS) - spec.capacity / total_capacity)
        for spec in flat_bins()
    )
    worst_loss = max(rack_losses.values()) / BALLS
    return deviation, worst_loss


def run_comparison():
    strategies = {
        "flat redundant-share": RedundantShare(flat_bins(), copies=COPIES),
        "hierarchical RS": HierarchicalRedundantShare(RACKS, copies=COPIES),
        "crush chooseleaf": ChooseleafCrush(RACKS, copies=COPIES),
    }
    return {name: evaluate(strategy) for name, strategy in strategies.items()}


def test_failure_domain_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        "Failure domains (3 racks, k=2): fairness vs rack-failure exposure",
        ["strategy", "device-share deviation", "worst rack: blocks lost"],
        [
            (name, f"{deviation:.3%}", f"{loss:.3%}")
            for name, (deviation, loss) in results.items()
        ],
    )
    for name, (deviation, loss) in results.items():
        benchmark.extra_info[name] = {
            "deviation": round(deviation, 5),
            "rack_loss": round(loss, 5),
        }

    # Flat placement ignores racks: a rack failure loses some blocks.
    assert results["flat redundant-share"][1] > 0.02
    # Rack-aware strategies never co-locate a block's copies in one rack.
    assert results["hierarchical RS"][1] == 0.0
    assert results["crush chooseleaf"][1] == 0.0
    # All rack-aware variants keep near-exact device fairness on this
    # well-balanced rack layout (chooseleaf's retry distortion only bites
    # under strong skew — see bench_table_baselines for that regime).
    assert results["hierarchical RS"][0] < 0.015
    assert results["flat redundant-share"][0] < 0.015
    assert results["crush chooseleaf"][0] < 0.03