"""Time efficiency (Sections 3.1-3.3) — lookup latency measurements.

Paper claims: the scan strategies run in O(n) per redundancy group; the
Section 3.3 variant runs in O(k) using precomputed per-state distributions.
This bench measures single-lookup latency across system sizes for both, and
for the baselines at a fixed size, using real pytest-benchmark timing.

Expected shape: the scan variant's latency grows with n, the fast
variant's stays ~flat; baselines sit in between depending on their own
complexity.
"""

import pytest

from repro.core import FastRedundantShare, RedundantShare
from repro.placement import (
    ConsistentHashingPlacer,
    CrushStrategy,
    RendezvousPlacer,
    SharePlacer,
    TrivialReplication,
)
from repro.types import bins_from_capacities

SIZES = (16, 64, 256, 1024)
COPIES = 3


def heterogeneous(count):
    return bins_from_capacities(
        [1000 + 37 * (index % 29) for index in range(count)]
    )


@pytest.mark.parametrize("size", SIZES)
def test_lookup_scan_redundant_share(benchmark, size):
    strategy = RedundantShare(heterogeneous(size), copies=COPIES)
    counter = iter(range(10**9))
    benchmark(lambda: strategy.place(next(counter)))
    benchmark.extra_info["bins"] = size


@pytest.mark.parametrize("size", SIZES)
def test_lookup_fast_redundant_share(benchmark, size):
    strategy = FastRedundantShare(heterogeneous(size), copies=COPIES)
    for address in range(512):
        strategy.place(address)  # warm the lazy state tables
    counter = iter(range(10**9))
    benchmark(lambda: strategy.place(next(counter)))
    benchmark.extra_info["bins"] = size
    benchmark.extra_info["states"] = strategy.state_count()


@pytest.mark.parametrize("size", SIZES)
def test_batch_lookup_scan_redundant_share(benchmark, size):
    """Throughput of the vectorized batch path across system sizes.

    Complements the single-lookup latency rows above: ``place_many``
    amortises the per-address Python overhead, so addresses/sec stays
    orders of magnitude above the scalar loop until the O(n) rank scan
    itself dominates.
    """
    strategy = RedundantShare(heterogeneous(size), copies=COPIES)
    addresses = list(range(20_000))
    strategy.place_many(addresses[:64])  # warm the lazy vector tables
    result = benchmark.pedantic(
        lambda: strategy.place_many(addresses), rounds=3, iterations=1
    )
    benchmark.extra_info["bins"] = size
    benchmark.extra_info["addresses"] = len(addresses)
    assert len(result) == len(addresses)


@pytest.mark.parametrize(
    "name",
    ["trivial", "crush", "consistent-hashing", "rendezvous", "share"],
)
def test_lookup_baselines_at_64_bins(benchmark, name):
    bins = heterogeneous(64)
    if name == "trivial":
        strategy = TrivialReplication(bins, copies=COPIES)
        call = strategy.place
    elif name == "crush":
        strategy = CrushStrategy(bins, copies=COPIES)
        call = strategy.place
    elif name == "consistent-hashing":
        placer = ConsistentHashingPlacer(bins)
        call = lambda address: placer.place_successors(address, COPIES)
    elif name == "rendezvous":
        placer = RendezvousPlacer(bins)
        call = lambda address: placer.place_top(address, COPIES)
    else:
        placer = SharePlacer(bins)
        call = placer.place
    counter = iter(range(10**9))
    benchmark(lambda: call(next(counter)))


def test_fast_variant_latency_is_size_insensitive(benchmark):
    """The O(k) claim, asserted: 16x more bins must not cost ~16x time.

    Measured inside one test to compare apples to apples.
    """
    import time

    def mean_latency(strategy, rounds=4000):
        for address in range(256):
            strategy.place(address)
        start = time.perf_counter()
        for address in range(rounds):
            strategy.place(address)
        return (time.perf_counter() - start) / rounds

    small_scan = RedundantShare(heterogeneous(32), copies=COPIES)
    large_scan = RedundantShare(heterogeneous(512), copies=COPIES)
    small_fast = FastRedundantShare(heterogeneous(32), copies=COPIES)
    large_fast = FastRedundantShare(heterogeneous(512), copies=COPIES)

    def experiment():
        return {
            "scan_32": mean_latency(small_scan),
            "scan_512": mean_latency(large_scan),
            "fast_32": mean_latency(small_fast),
            "fast_512": mean_latency(large_fast),
        }

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    scan_growth = result["scan_512"] / result["scan_32"]
    fast_growth = result["fast_512"] / result["fast_32"]
    benchmark.extra_info.update(
        {key: round(value * 1e6, 2) for key, value in result.items()}
    )
    benchmark.extra_info["scan_growth_16x_bins"] = round(scan_growth, 2)
    benchmark.extra_info["fast_growth_16x_bins"] = round(fast_growth, 2)
    # O(n) scan: grows substantially with 16x bins.  O(k log n) fast
    # variant: grows far less.
    assert scan_growth > 4.0, result
    assert fast_growth < scan_growth / 2, result
