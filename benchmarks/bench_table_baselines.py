"""Section 1.2/2.2 baseline comparison — fairness, redundancy, adaptivity.

One table across all replication strategies on a small, strongly
heterogeneous pool (where the paper says prior schemes break):

* max deviation of observed copy shares from the fair (clipped) targets;
* redundancy violations (balls with two copies on one device);
* copies moved when one device is added, as a multiple of the optimum.

Expected shape (the paper's core claim): Redundant Share is the only
strategy that is simultaneously near-exactly fair, violation-free and
bounded-adaptive.  RAID striping is fair only by weight-pattern
approximation and reshuffles nearly everything; the trivial baseline and
CRUSH under-load the big device.
"""

import pytest

from _tables import emit
from repro.core import FastRedundantShare, RedundantShare
from repro.metrics import compare_strategies, count_violations
from repro.placement import (
    CrushStrategy,
    TrivialReplication,
    WeightedStripingStrategy,
)
from repro.types import BinSpec, bins_from_capacities

CAPACITIES = [1000, 400, 300, 200, 100]
COPIES = 2
BALLS = 25_000


def fair_targets(bins):
    total = sum(spec.capacity for spec in bins)
    return {
        spec.bin_id: min(1.0, COPIES * spec.capacity / total) / COPIES
        for spec in bins
    }


def evaluate(factory):
    bins = bins_from_capacities(CAPACITIES)
    strategy = factory(bins)
    targets = fair_targets(bins)

    counts = {}
    for address in range(BALLS):
        for bin_id in strategy.place(address):
            counts[bin_id] = counts.get(bin_id, 0) + 1
    total = sum(counts.values())
    deviation = max(
        abs(counts.get(bin_id, 0) / total - share)
        for bin_id, share in targets.items()
    )
    violations = count_violations(strategy, range(5000))

    grown = bins + [BinSpec("bin-new", 500)]
    report = compare_strategies(
        strategy, factory(grown), range(5000), ["bin-new"]
    )
    movement = (
        report.moved_positional / report.used_on_affected
        if report.used_on_affected
        else float("inf")
    )
    return deviation, violations, movement


def run_comparison():
    factories = {
        "redundant-share": lambda bins: RedundantShare(bins, copies=COPIES),
        "fast-variant": lambda bins: FastRedundantShare(bins, copies=COPIES),
        "trivial": lambda bins: TrivialReplication(bins, copies=COPIES),
        "crush-straw2": lambda bins: CrushStrategy(bins, copies=COPIES),
        "weighted-raid": lambda bins: WeightedStripingStrategy(
            bins, copies=COPIES
        ),
    }
    return {name: evaluate(factory) for name, factory in factories.items()}


def test_baseline_comparison_table(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    emit(
        f"Baselines on capacities {CAPACITIES}, k={COPIES} "
        "(deviation: lower is fairer; movement: x optimum)",
        ["strategy", "max share deviation", "violations", "movement factor"],
        [
            (name, f"{dev:.3%}", violations, f"{move:.2f}")
            for name, (dev, violations, move) in results.items()
        ],
    )
    for name, (dev, violations, move) in results.items():
        benchmark.extra_info[name] = {
            "deviation": round(dev, 5),
            "violations": violations,
            "movement": round(move, 3),
        }

    # Redundancy holds for every implemented strategy.
    for name, (_, violations, _) in results.items():
        assert violations == 0, name

    rs_dev = results["redundant-share"][0]
    # Redundant Share is near-exactly fair ...
    assert rs_dev < 0.01
    assert results["fast-variant"][0] < 0.01
    # ... and clearly fairer than the trivial baseline and CRUSH, which
    # under-load the big device on this pool (Lemma 2.4 territory).
    assert results["trivial"][0] > 5 * rs_dev
    assert results["crush-straw2"][0] > 5 * rs_dev

    # RAID striping reshuffles (close to) everything on growth; Redundant
    # Share stays within the Lemma 3.2 regime.
    assert results["weighted-raid"][2] > results["redundant-share"][2]
    assert results["redundant-share"][2] < 4.5
