"""The conclusion's open problem, measured.

"We also believe that it should be possible to construct placement
strategies that are O(k)-competitive for arbitrary insertions and removals
of storage devices.  Is this true and is this the best bound one can
achieve?"

This bench pits :class:`repro.core.BalancedRendezvous` (calibrated top-k
rendezvous with pinned saturated bins) against Redundant Share on the
heterogeneous pool, measuring fairness residual and *set-based* movement
(copies that must physically move under optimal position relabeling) for a
device insertion and a removal.  Expected shape: balanced rendezvous moves
close to the optimum (factor ~1), at the cost of a small fairness residual
and of positional churn — evidence that the conjectured bound is
achievable when positions may be relabeled, while Redundant Share keeps
exact fairness and stable positions.
"""

import collections

import pytest

from _tables import emit
from repro.core import BalancedRendezvous, RedundantShare
from repro.metrics import compare_strategies
from repro.types import BinSpec, bins_from_capacities

CAPACITIES = [800, 700, 600, 500, 400, 300]
COPIES = 2
BALLS = 20_000


def evaluate(factory):
    bins = bins_from_capacities(CAPACITIES)
    strategy = factory(bins)
    counts = collections.Counter()
    for address in range(BALLS):
        counts.update(strategy.place(address))
    deviation = max(
        abs(counts[bin_id] / (COPIES * BALLS) - share)
        for bin_id, share in strategy.expected_shares().items()
    )

    grown = factory(bins + [BinSpec("bin-new", 600)])
    add = compare_strategies(strategy, grown, range(5000), ["bin-new"])
    shrunk = factory(bins[:-1])
    remove = compare_strategies(strategy, shrunk, range(5000), ["bin-5"])

    def set_factor(report):
        return report.moved_set / max(1, report.used_on_affected)

    def pos_factor(report):
        return report.moved_positional / max(1, report.used_on_affected)

    return (
        deviation,
        set_factor(add),
        set_factor(remove),
        pos_factor(add),
    )


def run_comparison():
    return {
        "redundant-share": evaluate(
            lambda bins: RedundantShare(bins, copies=COPIES)
        ),
        "balanced-rendezvous": evaluate(
            lambda bins: BalancedRendezvous(bins, copies=COPIES)
        ),
    }


def test_future_work_open_problem(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        "Open problem (conclusion): set-movement competitiveness "
        "(optimum = 1.0) vs fairness residual",
        [
            "strategy",
            "fairness deviation",
            "add: set x-opt",
            "remove: set x-opt",
            "add: positional x-opt",
        ],
        [
            (
                name,
                f"{deviation:.3%}",
                f"{add_set:.2f}",
                f"{rem_set:.2f}",
                f"{add_pos:.2f}",
            )
            for name, (deviation, add_set, rem_set, add_pos) in results.items()
        ],
    )
    for name, values in results.items():
        benchmark.extra_info[name] = [round(v, 4) for v in values]

    rs = results["redundant-share"]
    br = results["balanced-rendezvous"]
    # Redundant Share: exact fairness.
    assert rs[0] < 0.01
    # Balanced rendezvous: small residual, much lower set movement.
    assert br[0] < 0.03
    assert br[1] < rs[1]  # insertion set-movement beats Redundant Share
    assert br[1] < 1.7  # ... and approaches the optimum of 1.0
    assert br[2] < 2.2
