"""Shared table formatting for the benchmark harness.

Thin wrapper over :mod:`repro.reporting` so benches and the library render
identically.  Every bench prints the rows/series of the paper artifact it
reproduces (run ``pytest benchmarks/ --benchmark-only -s`` to see them) and
records the headline numbers in ``benchmark.extra_info`` so they land in
the pytest-benchmark JSON as well.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.reporting import render_table


def emit(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a table (visible with ``pytest -s`` and in failure output)."""
    print(render_table(title, header, rows))
