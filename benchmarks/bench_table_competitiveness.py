"""Section 3.1 in-text competitiveness constants for LinMirror.

Paper claim: "we added a bin to 4 up to 60 bins and measured the factor of
replaced blocks divided by the blocks used on the newest disk ... we get
nearly constant competitive ratios of about 1.5 for adding the biggest
disk and 2.5 for adding the smallest disk."

This bench runs exactly that sweep at k = 2 and asserts both near-constancy
and the approximate levels.
"""

import statistics

import pytest

from _tables import emit
from repro.core import LinMirror
from repro.simulation import run_adaptivity, scaling_cases

BALLS = 5_000
SIZES = (4, 8, 16, 28, 40, 60)


def run_sweep():
    cases = scaling_cases(SIZES, capacity=5_000)
    results = run_adaptivity(cases, lambda bins: LinMirror(bins), balls=BALLS)
    table = {}
    for result in results:
        parts = result.label.split()
        n = int(parts[0][2:])
        table.setdefault(n, {})[parts[2]] = result.factor
    return table


def test_linmirror_competitive_constants(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    emit(
        "LinMirror competitive ratios vs n (paper: ~1.5 biggest, ~2.5 "
        "smallest, both ~constant)",
        ["bins", "add as biggest", "add as smallest"],
        [
            (n, f"{table[n]['biggest']:.2f}", f"{table[n]['smallest']:.2f}")
            for n in sorted(table)
        ],
    )

    biggest = [table[n]["biggest"] for n in sorted(table)]
    smallest = [table[n]["smallest"] for n in sorted(table)]
    mean_big = statistics.mean(biggest)
    benchmark.extra_info["mean_biggest"] = round(mean_big, 3)
    benchmark.extra_info["smallest_series"] = [round(v, 3) for v in smallest]

    # Paper level ~1.5 for the biggest case, nearly constant over the sweep.
    assert mean_big == pytest.approx(1.5, abs=0.45), biggest
    assert max(biggest) - min(biggest) < 0.5, biggest
    # Paper level ~2.5 for the smallest case at the paper's own scale
    # (n ~ 8-16 disks, the Figure 3 setting) ...
    paper_scale = [table[n]["smallest"] for n in sorted(table) if 8 <= n <= 16]
    assert statistics.mean(paper_scale) == pytest.approx(2.5, abs=0.6)
    # ... while over the wide sweep it saturates towards the Lemma 3.2
    # bound of 4 — see EXPERIMENTS.md for the discussion of this deviation
    # from the paper's "nearly constant".  The bound holds in expectation;
    # allow sampling jitter around it.
    assert all(b >= a - 0.25 for a, b in zip(smallest, smallest[1:]))
    assert max(smallest) < 4.3
    # Ordering: the big end is always cheaper.
    assert all(
        table[n]["biggest"] < table[n]["smallest"] for n in sorted(table)
    )
