"""Figure 3 — adaptivity of LinMirror (k = 2).

Paper setup: eight tests — {heterogeneous, homogeneous} x {add, remove} x
{biggest, smallest} — measuring the blocks placed on the affected bin
("used") and the blocks replaced across the whole system ("replaced").

Paper result: "For changing the biggest bin we replaced about 1.5 times of
the blocks affected by the disk, while changing the smallest bin gives us a
factor of about 2.5" — and Lemma 3.2 bounds the factor by 4.
"""

import pytest

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.core import LinMirror
from repro.simulation import add_remove_cases, run_adaptivity

BALLS = 12_000
DISKS = 8
BASE = 5_000
STEP = 1_000


def run_figure3():
    cases = add_remove_cases(count=DISKS, base=BASE, step=STEP)
    return run_adaptivity(cases, lambda bins: LinMirror(bins), balls=BALLS)


def test_fig3_adaptivity_linmirror(benchmark):
    results = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    # Movement comparison runs over batch placements; record the engine.
    benchmark.extra_info["batch_backend"] = "numpy" if HAVE_NUMPY else "python"

    emit(
        "Figure 3: adaptivity of LinMirror (k=2); paper: ~1.5 big / ~2.5 "
        "small, bound 4",
        ["case", "used", "replaced", "factor"],
        [
            (r.label, r.used, r.replaced, f"{r.factor:.2f}")
            for r in results
        ],
    )
    for result in results:
        benchmark.extra_info[result.label] = round(result.factor, 3)

    by_label = {result.label: result for result in results}
    for flavor in ("het", "hom"):
        for change in ("add", "rem."):
            big = by_label[f"{flavor}. {change} big"].factor
            small = by_label[f"{flavor}. {change} small"].factor
            # Paper shape: changing at the big end is markedly cheaper.
            assert big < small, f"{flavor} {change}: big {big} !< small {small}"
            assert 1.0 <= big < 2.1, f"{flavor} {change} big factor {big}"
            assert 1.6 <= small < 3.6, f"{flavor} {change} small factor {small}"
    # Lemma 3.2: 4-competitive in expectation.
    for result in results:
        assert result.factor < 4.5, f"{result.label}: {result.factor}"
