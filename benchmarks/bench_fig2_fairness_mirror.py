"""Figure 2 — LinMirror distribution over heterogeneous bins (k = 2).

Paper setup: 8 bins of 500k..1.2M blocks (step 100k), grown to 10 and 12
bins by adding bigger disks, then shrunk back to 10 and 8 by removing the
smallest — measuring the *percent used* of every bin after each step.
Paper result: "the distribution for heterogeneous bins is fair" — all bars
in each group have (near-)equal height.

This bench replays the scenario at 1/100 scale (identical ratios) and
asserts per-step flatness: every bin's fill stays within a few percent of
the step mean, i.e. the bars are level.
"""

import pytest

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.core import LinMirror
from repro.simulation import paper_growth_steps, run_fairness

BALLS = 30_000
BASE = 5_000
STEP = 1_000


def run_figure2():
    steps = paper_growth_steps(base=BASE, step=STEP)
    return steps, run_fairness(
        steps, lambda bins: LinMirror(bins), balls=BALLS
    )


def test_fig2_fairness_heterogeneous_k2(benchmark):
    steps, results = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    # The runner places each step's ball population via place_many; record
    # which engine produced this timing so the perf trajectory is comparable.
    benchmark.extra_info["batch_backend"] = "numpy" if HAVE_NUMPY else "python"

    disks = sorted({disk for result in results for disk in result.fills})
    rows = []
    for disk in disks:
        row = [disk]
        for result in results:
            row.append(
                f"{result.fills[disk]:.2f}" if disk in result.fills else "-"
            )
        rows.append(row)
    rows.append(["(spread)"] + [f"{result.spread:.2f}" for result in results])
    emit(
        "Figure 2: % used per bin, LinMirror k=2 "
        "(columns: 8 -> 10 -> 12 -> 10 -> 8 disks)",
        ["disk"] + [step.label for step in steps],
        rows,
    )

    for result in results:
        mean = sum(result.fills.values()) / len(result.fills)
        benchmark.extra_info[result.label] = round(result.spread / mean, 4)
        # Paper: visually flat bars.  Monte-Carlo noise at 30k balls is
        # ~1-2% relative; require the spread to stay below 12% of the mean.
        assert result.spread < 0.12 * mean, (
            f"{result.label}: fill spread {result.spread:.2f}% vs mean "
            f"{mean:.2f}%"
        )

    # Growing the system must lower every surviving disk's fill level
    # (same data over more capacity).
    first, second = results[0], results[1]
    for disk in first.fills:
        assert second.fills[disk] < first.fills[disk]
