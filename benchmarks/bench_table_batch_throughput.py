"""Batch placement throughput — the perf trajectory's anchor table.

Measures addresses/second for the scalar ``place`` loop vs. the batch
``place_many`` engine for **every strategy in the placement registry**,
on the paper's heterogeneous 12-disk configuration.  The
machine-readable result goes to ``BENCH_placement.json`` (latest run)
and a timestamped record is appended to ``BENCH_history.jsonl`` so the
trajectory across commits is queryable, not just the endpoint.

Headline assertions (NumPy installed, full scale): every strategy with a
shared-kernel batch engine must clear its per-strategy speedup target on
a ≥100k-address batch — 10x for the score-matrix and table engines, 3x
for CRUSH (whose collision retries keep a scalar-ish tail).  At any
scale, a registry entry flagged ``vectorized`` must never lose to the
scalar loop — a speedup below 1x is the regression this table exists to
catch, and it both warns loudly and fails.

``REPRO_BENCH_ADDRESSES`` scales the population down for smoke runs
(CI uses 20000); the 10x headline is only asserted at full scale.
Without NumPy the batch engines fall back to the scalar loop, so only
equivalence (not speedup) is asserted.
"""

import json
import os
import pathlib
import sys
import time
import warnings

import pytest

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.placement.registry import create, registered_strategies
from repro.simulation import heterogeneous_bins

#: ≥100k addresses — the acceptance scale for the 10x headline claims.
ADDRESSES = int(os.environ.get("REPRO_BENCH_ADDRESSES", "") or 100_000)
#: Baselines without a vectorized engine get a smaller population so the
#: table stays cheap to regenerate; their speedup is ~1x by construction.
LOOP_ADDRESSES = min(20_000, ADDRESSES)
#: Replication degree for strategies that honour ``copies``.
COPIES = 3

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_placement.json"
HISTORY = ROOT / "BENCH_history.jsonl"

#: Minimum full-scale speedup per vectorized strategy.  The score-matrix
#: and table-gather engines must clear 10x; CRUSH's masked-reselection
#: engine re-draws a shrinking collision tail per retry, so its floor is
#: 3x.
SPEEDUP_TARGETS = {
    "redundant-share-k3": 10.0,
    "fast-redundant-share-k3": 10.0,
    "trivial-k3": 10.0,
    "balanced-rendezvous-k3": 10.0,
    "weighted-striping-k3": 10.0,
    "crush-k3": 3.0,
}


def _row_name(entry):
    if entry.fixed_copies is not None:
        return entry.name
    return f"{entry.name}-k{COPIES}"


def measure(entry):
    """Time the scalar loop and the batch engine over the same addresses."""
    addresses = ADDRESSES if entry.vectorized else LOOP_ADDRESSES
    strategy = create(entry.name, heterogeneous_bins(12), copies=COPIES)
    population = list(range(addresses))
    start = time.perf_counter()
    scalar = [strategy.place(address) for address in population]
    scalar_seconds = time.perf_counter() - start
    strategy.place_many(population[:64])  # warm lazy vector tables
    start = time.perf_counter()
    batch = strategy.place_many(population)
    batch_seconds = time.perf_counter() - start
    assert batch.tuples() == scalar, (
        f"{entry.name}: batch engine diverged from scalar scan"
    )
    return {
        "addresses": addresses,
        "copies": entry.effective_copies(COPIES),
        "vectorized": entry.vectorized,
        "kernel": entry.kernel,
        "scalar_per_sec": round(addresses / scalar_seconds),
        "batch_per_sec": round(addresses / batch_seconds),
        "speedup": round(scalar_seconds / batch_seconds, 2),
    }


def test_batch_throughput_table(benchmark):
    """Regenerates BENCH_placement.json and asserts the speedup gates."""

    def experiment():
        return {
            _row_name(entry): measure(entry)
            for entry in registered_strategies()
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        "Batch placement throughput (addresses/sec, 12 heterogeneous disks)",
        ["strategy", "kernel", "addresses", "scalar/s", "batch/s", "speedup"],
        [
            [
                name,
                row["kernel"] or "-",
                row["addresses"],
                row["scalar_per_sec"],
                row["batch_per_sec"],
                f"{row['speedup']:.2f}x",
            ]
            for name, row in results.items()
        ],
    )

    payload = {
        "benchmark": "bench_table_batch_throughput",
        "numpy": HAVE_NUMPY,
        "strategies": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    record = dict(payload, timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    with HISTORY.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")

    for name, row in results.items():
        benchmark.extra_info[f"{name}_speedup"] = row["speedup"]
    benchmark.extra_info["numpy"] = HAVE_NUMPY

    if not HAVE_NUMPY:
        return

    regressions = []
    for name, row in results.items():
        if row["vectorized"] and row["speedup"] < 1.0:
            regressions.append(name)
            message = (
                f"PERF REGRESSION: {name} batch engine is SLOWER than the "
                f"scalar loop ({row['speedup']:.2f}x at "
                f"{row['addresses']} addresses)"
            )
            warnings.warn(message, stacklevel=2)
            print(f"\n*** {message} ***", file=sys.stderr)
    assert not regressions, (
        f"vectorized strategies lost to the scalar loop: {regressions}"
    )

    if ADDRESSES >= 100_000:
        for name, target in SPEEDUP_TARGETS.items():
            row = results[name]
            assert row["speedup"] >= target, (
                f"{name}: vectorized engine only {row['speedup']}x faster "
                f"(target {target}x)"
            )
