"""Batch placement throughput — the perf trajectory's anchor table.

Measures addresses/second for the scalar ``place`` loop vs. the batch
``place_many`` engine, per strategy, on the paper's heterogeneous
12-disk configuration, and writes the machine-readable result to
``BENCH_placement.json`` at the repository root so future changes have a
trajectory to compare against.

Headline assertion: with NumPy installed, the vectorized Algorithm 2/4
scan must place a ≥100k-address batch at least 10x faster than the
scalar loop for ``RedundantShare(k=3)``.  Without NumPy the fallback is
the scalar loop itself, so only equivalence (not speedup) is asserted.
"""

import json
import pathlib
import time

import pytest

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.core import FastRedundantShare, LinMirror, RedundantShare
from repro.placement import TrivialReplication
from repro.simulation import heterogeneous_bins

#: ≥100k addresses — the acceptance scale for the 10x headline claim.
ADDRESSES = 100_000
#: Baselines without a vectorized engine get a smaller population so the
#: table stays cheap to regenerate; their speedup is ~1x by construction.
LOOP_ADDRESSES = 20_000

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_placement.json"

STRATEGIES = (
    ("redundant-share-k3", lambda bins: RedundantShare(bins, copies=3), ADDRESSES),
    ("lin-mirror", lambda bins: LinMirror(bins), ADDRESSES),
    (
        "fast-redundant-share-k3",
        lambda bins: FastRedundantShare(bins, copies=3),
        LOOP_ADDRESSES,
    ),
    ("trivial-k3", lambda bins: TrivialReplication(bins, copies=3), LOOP_ADDRESSES),
)


def measure(factory, addresses):
    """Time the scalar loop and the batch engine over the same addresses."""
    strategy = factory(heterogeneous_bins(12))
    population = list(range(addresses))
    start = time.perf_counter()
    scalar = [strategy.place(address) for address in population]
    scalar_seconds = time.perf_counter() - start
    strategy.place_many(population[:64])  # warm lazy vector tables
    start = time.perf_counter()
    batch = strategy.place_many(population)
    batch_seconds = time.perf_counter() - start
    assert batch.tuples() == scalar, "batch engine diverged from scalar scan"
    return {
        "addresses": addresses,
        "scalar_per_sec": round(addresses / scalar_seconds),
        "batch_per_sec": round(addresses / batch_seconds),
        "speedup": round(scalar_seconds / batch_seconds, 2),
    }


def test_batch_throughput_table(benchmark):
    """Regenerates BENCH_placement.json and asserts the 10x headline."""

    def experiment():
        return {
            name: measure(factory, addresses)
            for name, factory, addresses in STRATEGIES
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        "Batch placement throughput (addresses/sec, 12 heterogeneous disks)",
        ["strategy", "addresses", "scalar/s", "batch/s", "speedup"],
        [
            [
                name,
                row["addresses"],
                row["scalar_per_sec"],
                row["batch_per_sec"],
                f"{row['speedup']:.2f}x",
            ]
            for name, row in results.items()
        ],
    )

    payload = {
        "benchmark": "bench_table_batch_throughput",
        "numpy": HAVE_NUMPY,
        "strategies": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for name, row in results.items():
        benchmark.extra_info[f"{name}_speedup"] = row["speedup"]
    benchmark.extra_info["numpy"] = HAVE_NUMPY

    if HAVE_NUMPY:
        headline = results["redundant-share-k3"]
        assert headline["addresses"] >= 100_000
        assert headline["speedup"] >= 10.0, (
            f"vectorized scan only {headline['speedup']}x faster"
        )
