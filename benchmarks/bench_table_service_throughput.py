"""Service lookup throughput — placement answers over real sockets.

Starts the full service topology (metastore + one blockstore per
device) in-process and drives it with concurrent clients, each on its
own TCP connection, measuring ``where_are``/``where_is`` lookups per
second.  This is the wire-tax companion to
``bench_table_batch_throughput``: the same ``place_many`` engine
answers, but every batch now pays JSON framing and a localhost round
trip, and the table shows how that amortises with batch size and
client concurrency.

Rows: batched lookups (256 addresses per RPC) at 1, 4 and 8 concurrent
clients, plus single-address ``where_is`` RPCs at 4 clients (the
per-round-trip floor).  The acceptance gate — lookups/sec under at
least 4 concurrent clients — lands in ``BENCH_history.jsonl`` next to
the placement-throughput trajectory.

``REPRO_BENCH_SERVICE_LOOKUPS`` scales the per-row lookup budget for
smoke runs.
"""

import asyncio
import json
import os
import pathlib
import time

from _tables import emit
from repro.service import RpcConnection, ServiceCluster

#: Lookups per batched row (split across the row's clients).
LOOKUPS = int(os.environ.get("REPRO_BENCH_SERVICE_LOOKUPS", "") or 100_000)
#: Addresses per where_are RPC in the batched rows.
BATCH = 256
#: Concurrency ladder for the batched rows.
CLIENT_COUNTS = (1, 4, 8)
#: Single-address RPCs are ~100x slower per lookup; scale the budget so
#: the row costs about as much wall clock as a batched one.
SINGLE_LOOKUPS = max(400, LOOKUPS // 100)

COPIES = 3
CAPACITIES = [500, 600, 700, 800, 900, 1000, 1100, 1200]
STRATEGY = "redundant-share"

ROOT = pathlib.Path(__file__).resolve().parent.parent
HISTORY = ROOT / "BENCH_history.jsonl"

#: Conservative floors (localhost, shared CI runners): batched lookups
#: must clear 10k/s under concurrency, single RPCs 200/s.
BATCHED_FLOOR_PER_SEC = 10_000
SINGLE_FLOOR_PER_SEC = 200


async def _drive(host, port, clients, batch, total_lookups):
    """Hammer the metastore from ``clients`` connections; lookups/sec."""
    per_client = max(1, total_lookups // clients)
    connections = [
        await RpcConnection.open(host, port) for _ in range(clients)
    ]

    async def worker(index, connection):
        base = index * per_client
        done = 0
        while done < per_client:
            if batch == 1:
                await connection.call("where_is", address=base + done)
                done += 1
            else:
                size = min(batch, per_client - done)
                await connection.call(
                    "where_are",
                    addresses=list(range(base + done, base + done + size)),
                )
                done += size

    start = time.perf_counter()
    await asyncio.gather(
        *(worker(i, conn) for i, conn in enumerate(connections))
    )
    elapsed = time.perf_counter() - start
    for connection in connections:
        await connection.close()
    return per_client * clients, elapsed


async def _experiment():
    async with ServiceCluster.from_capacities(
        CAPACITIES, copies=COPIES, strategy=STRATEGY
    ) as cluster:
        host, port = cluster.metastore_address
        rows = {}
        for clients in CLIENT_COUNTS:
            lookups, elapsed = await _drive(host, port, clients, BATCH, LOOKUPS)
            rows[f"where_are-b{BATCH}-c{clients}"] = {
                "clients": clients,
                "batch": BATCH,
                "lookups": lookups,
                "seconds": round(elapsed, 4),
                "lookups_per_sec": round(lookups / elapsed),
            }
        lookups, elapsed = await _drive(host, port, 4, 1, SINGLE_LOOKUPS)
        rows["where_is-b1-c4"] = {
            "clients": 4,
            "batch": 1,
            "lookups": lookups,
            "seconds": round(elapsed, 4),
            "lookups_per_sec": round(lookups / elapsed),
        }
        return rows


def test_service_throughput_table(benchmark):
    """Measures served lookup rates and appends the history record."""
    results = benchmark.pedantic(
        lambda: asyncio.run(_experiment()), rounds=1, iterations=1
    )

    emit(
        f"Service lookup throughput ({STRATEGY} k={COPIES}, "
        f"{len(CAPACITIES)} blockstores, localhost TCP)",
        ["row", "clients", "batch", "lookups", "seconds", "lookups/s"],
        [
            [
                name,
                row["clients"],
                row["batch"],
                row["lookups"],
                f"{row['seconds']:.2f}",
                row["lookups_per_sec"],
            ]
            for name, row in results.items()
        ],
    )

    record = {
        "benchmark": "bench_table_service_throughput",
        "strategy": STRATEGY,
        "copies": COPIES,
        "devices": len(CAPACITIES),
        "rows": results,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with HISTORY.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")

    for name, row in results.items():
        benchmark.extra_info[f"{name}_lookups_per_sec"] = row[
            "lookups_per_sec"
        ]

    # The acceptance gate: concurrent-client throughput is recorded and
    # clears the floor.
    concurrent = {
        name: row
        for name, row in results.items()
        if row["clients"] >= 4 and row["batch"] > 1
    }
    assert concurrent, "bench must measure >= 4 concurrent clients"
    for name, row in concurrent.items():
        assert row["lookups_per_sec"] >= BATCHED_FLOOR_PER_SEC, (
            f"{name}: {row['lookups_per_sec']}/s is below the "
            f"{BATCHED_FLOOR_PER_SEC}/s batched floor"
        )
    single = results["where_is-b1-c4"]
    assert single["lookups_per_sec"] >= SINGLE_FLOOR_PER_SEC, (
        f"single-RPC rate {single['lookups_per_sec']}/s is below the "
        f"{SINGLE_FLOOR_PER_SEC}/s floor"
    )
