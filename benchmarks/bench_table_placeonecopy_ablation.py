"""Design ablations called out in DESIGN.md.

1. ``placeonecopy`` backend (Algorithm 2 is parametric in it): rendezvous
   (exact, adaptive, O(n)) vs consistent hashing (approximate, O(log n))
   vs alias table (exact, O(1), non-adaptive).  Fairness and movement are
   measured for the literal ClassicLinMirror with each backend.

2. The b̃ boundary boost (equations 2-5): enabled vs disabled on a vector
   with a strong inhomogeneity — disabling it must starve the boundary
   bin, which is the unfairness the paper's Section 3.1 fixes.
"""

import pytest

from _tables import emit
from repro.core import ClassicLinMirror
from repro.metrics import compare_strategies
from repro.placement import make_alias, make_rendezvous, make_ring_placer
from repro.types import BinSpec, bins_from_capacities

CAPACITIES = [900, 700, 500, 300, 200]
BALLS = 25_000

BACKENDS = {
    "rendezvous": make_rendezvous,
    "ring": make_ring_placer,
    "alias": make_alias,
}


def fairness_deviation(strategy):
    counts = {}
    for address in range(BALLS):
        for bin_id in strategy.place(address):
            counts[bin_id] = counts.get(bin_id, 0) + 1
    total = sum(counts.values())
    expected = strategy.expected_shares()
    return max(
        abs(counts.get(bin_id, 0) / total - share)
        for bin_id, share in expected.items()
    )


def run_backend_ablation():
    rows = {}
    bins = bins_from_capacities(CAPACITIES)
    grown = bins + [BinSpec("bin-new", 600)]
    for name, factory in BACKENDS.items():
        before = ClassicLinMirror(bins, placer_factory=factory)
        after = ClassicLinMirror(grown, placer_factory=factory)
        deviation = fairness_deviation(before)
        report = compare_strategies(before, after, range(5000), ["bin-new"])
        rows[name] = (deviation, report.factor_positional)
    return rows


def test_placeonecopy_backend_ablation(benchmark):
    rows = benchmark.pedantic(run_backend_ablation, rounds=1, iterations=1)

    emit(
        "placeonecopy backend ablation (ClassicLinMirror, k=2)",
        ["backend", "max share deviation", "movement factor"],
        [
            (name, f"{deviation:.3%}", f"{factor:.2f}")
            for name, (deviation, factor) in rows.items()
        ],
    )
    for name, (deviation, factor) in rows.items():
        benchmark.extra_info[name] = {
            "deviation": round(deviation, 5),
            "movement": round(factor, 3),
        }

    # Exact backends: rendezvous and alias are near-exactly fair; the ring
    # backend's fairness is limited by virtual-node granularity.
    assert rows["rendezvous"][0] < 0.012
    assert rows["alias"][0] < 0.012
    # The alias backend pays for O(1) lookups with extra movement.
    assert rows["alias"][1] > rows["rendezvous"][1]
    # Rendezvous stays in the Lemma 3.2 regime.
    assert rows["rendezvous"][1] < 4.5


def run_boost_ablation():
    capacities = [10, 10, 1]
    bins = bins_from_capacities(capacities)
    boosted = ClassicLinMirror(bins, apply_boost=True)
    plain = ClassicLinMirror(bins, apply_boost=False)
    target = boosted.expected_shares()["bin-1"]

    def share_of(strategy):
        hits = 0
        for address in range(BALLS):
            hits += sum(1 for b in strategy.place(address) if b == "bin-1")
        return hits / (2 * BALLS)

    return target, share_of(boosted), share_of(plain)


def test_boundary_boost_ablation(benchmark):
    target, with_boost, without = benchmark.pedantic(
        run_boost_ablation, rounds=1, iterations=1
    )
    emit(
        "b-tilde boundary adjustment ablation on [10, 10, 1], k=2 "
        "(share of the boundary bin)",
        ["variant", "boundary-bin share"],
        [
            ("fair target", f"{target:.4f}"),
            ("with boost (paper)", f"{with_boost:.4f}"),
            ("without boost", f"{without:.4f}"),
        ],
    )
    benchmark.extra_info.update(
        {"target": target, "with": with_boost, "without": without}
    )
    assert with_boost == pytest.approx(target, abs=0.01)
    assert without < target - 0.01  # the starvation the paper describes
