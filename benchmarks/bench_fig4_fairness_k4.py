"""Figure 4 — k-replication fairness for k = 4.

Same growth scenario as Figure 2 (8 -> 10 -> 12 -> 10 -> 8 heterogeneous
disks), but with 4-fold replication: "As can be seen, all tests resulted in
completely fair distributions."
"""

import pytest

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.core import RedundantShare
from repro.simulation import paper_growth_steps, run_fairness

BALLS = 12_000
BASE = 5_000
STEP = 1_000
COPIES = 4


def run_figure4():
    steps = paper_growth_steps(base=BASE, step=STEP)
    return steps, run_fairness(
        steps,
        lambda bins: RedundantShare(bins, copies=COPIES),
        balls=BALLS,
    )


def test_fig4_fairness_heterogeneous_k4(benchmark):
    steps, results = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    # The runner places each step's ball population via place_many; record
    # which engine produced this timing so the perf trajectory is comparable.
    benchmark.extra_info["batch_backend"] = "numpy" if HAVE_NUMPY else "python"

    disks = sorted({disk for result in results for disk in result.fills})
    rows = []
    for disk in disks:
        row = [disk]
        for result in results:
            row.append(
                f"{result.fills[disk]:.2f}" if disk in result.fills else "-"
            )
        rows.append(row)
    rows.append(["(spread)"] + [f"{result.spread:.2f}" for result in results])
    emit(
        "Figure 4: % used per bin, k-replication k=4 "
        "(columns: 8 -> 10 -> 12 -> 10 -> 8 disks)",
        ["disk"] + [step.label for step in steps],
        rows,
    )

    for result in results:
        mean = sum(result.fills.values()) / len(result.fills)
        benchmark.extra_info[result.label] = round(result.spread / mean, 4)
        assert result.spread < 0.12 * mean, (
            f"{result.label}: fill spread {result.spread:.2f}% vs mean "
            f"{mean:.2f}%"
        )

    # Redundancy sanity at k=4: every placement uses 4 distinct disks.
    strategy = RedundantShare(list(steps[0].bins), copies=COPIES)
    for address in range(500):
        placement = strategy.place(address)
        assert len(set(placement)) == COPIES
