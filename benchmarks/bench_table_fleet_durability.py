"""Fleet-scale chaos throughput and mean-field durability (anchor table).

Three measurements, one pinned-schema record:

* **Matched scenario** — the event-driven :class:`ChaosController` and
  the columnar :class:`FleetSimulator` replay the *same* crash-only
  :class:`FaultSchedule` (k=2, 12 devices, one simultaneous device pair
  plus a later single crash) and must agree **exactly** on which blocks
  were lost — the zero-divergence gate the ``fleet-smoke`` CI job runs.
  Each engine's throughput is recorded as block-epochs/second (block
  population x simulated horizon / wall seconds).
* **Fleet scale** — the acceptance scenario (1000 devices x 1M blocks x
  10 years at full scale): the fleet engine's block-epochs/second must
  beat the event-driven controller's matched-scenario rate by the
  pinned multiple (50x at full scale; the controller could not run this
  scenario at all — extrapolating its matched rate, the same campaign
  would take days).
* **Stressed mean-field fit** — a high-churn regime (failure_rate=6/yr)
  where the steady-state copy-count distribution is far from a point
  mass; its total-variation distance to the mean-field prediction must
  stay within the pinned tolerance at full scale, and a small
  repair-rate sweep records the durability phase diagram (lost fraction
  must fall as repair capacity grows).

``REPRO_BENCH_FLEET_BLOCKS`` scales the block population down for smoke
runs (CI uses 20000); the 50x and tolerance gates are asserted at full
scale, with looser always-on floors.  The machine-readable result goes
to ``BENCH_fleet_durability.json`` and a timestamped record is appended
to ``BENCH_history.jsonl``.
"""

import json
import os
import pathlib
import sys
import time
import warnings

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.chaos import (
    ChaosOptions,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FleetOptions,
    FleetSimulator,
    RepairPolicy,
    crash_epochs,
    durability_phase_diagram,
    run_chaos,
)
from repro.cluster import Cluster
from repro.hashing.primitives import stable_u64
from repro.placement.registry import create
from repro.types import bins_from_capacities

#: ≥1M blocks — the acceptance scale for the 50x and tolerance gates.
FLEET_BLOCKS = int(os.environ.get("REPRO_BENCH_FLEET_BLOCKS", "") or 1_000_000)
FULL_SCALE = FLEET_BLOCKS >= 1_000_000

#: Matched scenario (both engines run it; losses must agree exactly).
MATCHED_DEVICES = 12
MATCHED_COPIES = 2
MATCHED_BLOCKS = min(20_000, FLEET_BLOCKS)
MATCHED_EPOCHS = 20

#: Pinned speedup of fleet block-epochs/sec over the controller's rate.
SPEEDUP_TARGET = 50.0 if FULL_SCALE else 10.0
#: Pinned total-variation tolerance for the stressed mean-field fit.
TV_TOLERANCE = 0.06 if FULL_SCALE else 0.20

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_fleet_durability.json"
HISTORY = ROOT / "BENCH_history.jsonl"

#: Pinned record schema — downstream tooling greps BENCH_history.jsonl
#: for these keys, so adding is fine but renaming/removing is a break.
PAYLOAD_KEYS = {"benchmark", "numpy", "full_scale", "matched", "fleet", "stressed", "phase"}
MATCHED_KEYS = {
    "devices", "blocks", "copies", "epochs",
    "controller_seconds", "controller_block_epochs_per_sec",
    "fleet_seconds", "fleet_block_epochs_per_sec",
    "controller_losses", "fleet_losses", "losses_agree",
}
FLEET_KEYS = {
    "devices", "blocks", "copies", "years", "epochs", "seconds",
    "block_epochs_per_sec", "device_failures", "repairs", "losses",
    "tv_distance", "speedup_vs_controller",
}
STRESSED_KEYS = {
    "devices", "blocks", "copies", "years", "failure_rate", "repair_rate",
    "losses", "steady_state", "mean_field", "tv_distance",
}
PHASE_KEYS = {"repair_rate", "lost_fraction", "mean_copies", "tv_distance"}


def seeded_crash_schedule(device_ids, strategy, blocks, seed):
    """Crash-only schedule both engines can replay divergence-free.

    The simultaneous crash pair is the *placement of a seeded victim
    block* — guaranteed to lose at least that block whatever the
    strategy's co-location structure looks like.  Times are integral and
    far enough apart that repairs drain in between, so the epoch
    discretization (:func:`crash_epochs`) cannot change which blocks
    are simultaneously down: the pair crashes at t=2 (the loss event)
    and one further device crashes at t=12 (repaired cleanly).
    """
    victim = stable_u64("fleet-bench-victim", seed) % blocks
    pair = strategy.place(victim)
    survivors = [device for device in device_ids if device not in pair]
    single = survivors[stable_u64("fleet-bench-single", seed) % len(survivors)]
    return FaultSchedule(
        [FaultEvent(2.0, FaultKind.CRASH, device) for device in pair]
        + [FaultEvent(12.0, FaultKind.CRASH, single)]
    )


def run_matched(seed=5):
    """Both engines on the same schedule; returns the comparison row."""
    capacity = MATCHED_BLOCKS * MATCHED_COPIES * 2 // MATCHED_DEVICES + 16
    bins = bins_from_capacities(
        [capacity] * MATCHED_DEVICES, prefix="dev"
    )
    schedule = seeded_crash_schedule(
        [spec.bin_id for spec in bins],
        create("striping", bins, copies=MATCHED_COPIES),
        MATCHED_BLOCKS,
        seed,
    )

    cluster = Cluster(
        bins, lambda b: create("striping", b, copies=MATCHED_COPIES)
    )
    for address in range(MATCHED_BLOCKS):
        cluster.write(address, b"x" * 8)
    options = ChaosOptions(
        seed=seed,
        policy=RepairPolicy(rate=float(MATCHED_BLOCKS), timeout=1000.0),
        replacement_delay=1.0,
    )
    start = time.perf_counter()
    controller_report = run_chaos(cluster, schedule, options)
    controller_seconds = time.perf_counter() - start

    fleet_options = FleetOptions(
        devices=MATCHED_DEVICES,
        blocks=MATCHED_BLOCKS,
        copies=MATCHED_COPIES,
        epochs=MATCHED_EPOCHS,
        failure_rate=0.0,
        repair_rate=float(MATCHED_BLOCKS),
        seed=seed,
        strategy="striping",
    )
    simulator = FleetSimulator(fleet_options, bins=bins)
    scheduled = crash_epochs(schedule, [spec.bin_id for spec in bins])
    start = time.perf_counter()
    fleet_report = simulator.run(scheduled)
    fleet_seconds = time.perf_counter() - start

    controller_losses = {loss.address for loss in controller_report.loss_events}
    fleet_losses = set(fleet_report.lost_addresses)
    horizon = max(controller_report.horizon, 1.0)
    return {
        "devices": MATCHED_DEVICES,
        "blocks": MATCHED_BLOCKS,
        "copies": MATCHED_COPIES,
        "epochs": MATCHED_EPOCHS,
        "controller_seconds": round(controller_seconds, 4),
        "controller_block_epochs_per_sec": round(
            MATCHED_BLOCKS * horizon / controller_seconds
        ),
        "fleet_seconds": round(fleet_seconds, 4),
        "fleet_block_epochs_per_sec": round(
            MATCHED_BLOCKS * MATCHED_EPOCHS / fleet_seconds
        ),
        "controller_losses": sorted(controller_losses),
        "fleet_losses": sorted(fleet_losses),
        "losses_agree": controller_losses == fleet_losses,
    }


def run_fleet_scale(controller_rate):
    """The acceptance scenario: ≥1000 devices x ≥1M blocks x ≥10 years."""
    options = FleetOptions(
        devices=1000 if FULL_SCALE else 100,
        blocks=FLEET_BLOCKS,
        copies=3,
        years=10.0 if FULL_SCALE else 1.0,
        seed=0,
    )
    start = time.perf_counter()
    report = FleetSimulator(options).run()
    seconds = time.perf_counter() - start
    rate = report.blocks * report.epochs / seconds
    return {
        "devices": options.devices,
        "blocks": options.blocks,
        "copies": options.copies,
        "years": options.horizon_years,
        "epochs": report.epochs,
        "seconds": round(seconds, 2),
        "block_epochs_per_sec": round(rate),
        "device_failures": report.device_failures,
        "repairs": report.repairs_completed,
        "losses": report.lost_blocks,
        "tv_distance": round(report.mean_field_deviation, 6),
        "speedup_vs_controller": round(rate / controller_rate, 1),
    }


def run_stressed():
    """High-churn regime: nontrivial steady state vs mean field + sweep."""
    options = FleetOptions(
        devices=1000 if FULL_SCALE else 250,
        blocks=100_000 if FULL_SCALE else min(FLEET_BLOCKS, 20_000),
        copies=3,
        years=3.0 if FULL_SCALE else 2.0,
        failure_rate=6.0,
        repair_rate=0.0,  # set per run below
        seed=42,
    )
    import dataclasses

    stressed_rate = 0.0125 * options.blocks
    report = FleetSimulator(
        dataclasses.replace(options, repair_rate=stressed_rate)
    ).run()
    sweep_options = dataclasses.replace(
        options,
        blocks=min(options.blocks, 20_000),
        years=min(options.years, 2.0),
    )
    sweep_rates = [
        fraction * sweep_options.blocks
        for fraction in (0.002, 0.006, 0.0125, 0.05)
    ]
    phase = durability_phase_diagram(sweep_options, sweep_rates)
    row = {
        "devices": options.devices,
        "blocks": options.blocks,
        "copies": options.copies,
        "years": options.horizon_years,
        "failure_rate": options.failure_rate,
        "repair_rate": stressed_rate,
        "losses": report.lost_blocks,
        "steady_state": [round(x, 6) for x in report.steady_state],
        "mean_field": [round(x, 6) for x in report.mean_field],
        "tv_distance": round(report.mean_field_deviation, 6),
    }
    phase_rows = [
        {
            "repair_rate": point.repair_rate,
            "lost_fraction": round(point.lost_fraction, 6),
            "mean_copies": round(point.mean_copies, 4),
            "tv_distance": round(point.mean_field_deviation, 6),
        }
        for point in phase
    ]
    return row, phase_rows


def test_fleet_durability_table(benchmark):
    """Regenerates BENCH_fleet_durability.json and asserts the gates."""

    def experiment():
        matched = run_matched()
        fleet = run_fleet_scale(matched["controller_block_epochs_per_sec"])
        stressed, phase = run_stressed()
        return matched, fleet, stressed, phase

    matched, fleet, stressed, phase = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    emit(
        "Fleet chaos throughput (block-epochs simulated per second)",
        ["engine", "devices", "blocks", "horizon", "rate", "losses"],
        [
            [
                "event-driven controller",
                matched["devices"],
                matched["blocks"],
                f"{matched['epochs']} units",
                f"{matched['controller_block_epochs_per_sec']:,}",
                len(matched["controller_losses"]),
            ],
            [
                "fleet (matched)",
                matched["devices"],
                matched["blocks"],
                f"{matched['epochs']} epochs",
                f"{matched['fleet_block_epochs_per_sec']:,}",
                len(matched["fleet_losses"]),
            ],
            [
                "fleet (full campaign)",
                fleet["devices"],
                fleet["blocks"],
                f"{fleet['years']:.0f} years",
                f"{fleet['block_epochs_per_sec']:,}",
                fleet["losses"],
            ],
        ],
    )
    emit(
        "Durability vs repair rate (stressed regime, mean-field fit)",
        ["repair rate/epoch", "lost fraction", "mean copies", "TV"],
        [
            [
                f"{point['repair_rate']:g}",
                f"{point['lost_fraction']:.4f}",
                f"{point['mean_copies']:.3f}",
                f"{point['tv_distance']:.4f}",
            ]
            for point in phase
        ],
    )

    payload = {
        "benchmark": "bench_table_fleet_durability",
        "numpy": HAVE_NUMPY,
        "full_scale": FULL_SCALE,
        "matched": matched,
        "fleet": fleet,
        "stressed": stressed,
        "phase": phase,
    }
    assert set(payload) == PAYLOAD_KEYS
    assert set(matched) == MATCHED_KEYS
    assert set(fleet) == FLEET_KEYS
    assert set(stressed) == STRESSED_KEYS
    assert all(set(point) == PHASE_KEYS for point in phase)
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    record = dict(payload, timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    with HISTORY.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")

    benchmark.extra_info["fleet_rate"] = fleet["block_epochs_per_sec"]
    benchmark.extra_info["speedup"] = fleet["speedup_vs_controller"]
    benchmark.extra_info["tv_distance"] = stressed["tv_distance"]

    # Zero-divergence gate: both engines must agree exactly on loss
    # accounting, and the matched scenario must actually lose blocks
    # (a loss-free scenario would vacuously "agree").
    assert matched["controller_losses"], (
        "matched scenario is degenerate: the simultaneous pair crash "
        "lost no blocks"
    )
    assert matched["losses_agree"], (
        "LOSS DIVERGENCE: controller lost "
        f"{matched['controller_losses']} but the fleet engine lost "
        f"{matched['fleet_losses']}"
    )

    # Phase diagram shape: more repair capacity, less loss.
    assert phase[-1]["lost_fraction"] <= phase[0]["lost_fraction"], (
        "durability phase diagram inverted: raising the repair rate "
        "increased the lost fraction"
    )

    if fleet["speedup_vs_controller"] < SPEEDUP_TARGET:
        message = (
            "PERF REGRESSION: fleet engine only "
            f"{fleet['speedup_vs_controller']:.1f}x the event-driven "
            f"controller's rate (target {SPEEDUP_TARGET:.0f}x at "
            f"{FLEET_BLOCKS} blocks)"
        )
        warnings.warn(message, stacklevel=2)
        print(f"\n*** {message} ***", file=sys.stderr)
        raise AssertionError(message)

    assert stressed["tv_distance"] <= TV_TOLERANCE, (
        "mean-field fit out of tolerance: TV="
        f"{stressed['tv_distance']:.4f} > {TV_TOLERANCE} "
        f"(full_scale={FULL_SCALE})"
    )
