"""Request fairness and read-scheduling load balance.

Section 1 defines fairness as "every storage device with x% of the
available capacity gets x% of the data *and the requests*".  The first
half of this bench checks that claim under uniform traffic; the second
half measures what happens when traffic is *not* uniform — the regime
the paper leaves open and the scheduling subsystem addresses:

* uniform reads over a mirrored pool — per-device request shares must
  track capacity shares;
* a zipf-skewed read trace through the trace player, sweeping the read
  policies registered in ``repro.scheduling.registry`` (the ablation
  that used to be a two-value ``rotate``/``primary`` knob);
* **the skew curve** — peak device load vs. Zipf α for every scheduling
  policy × several placement strategies at ``REPRO_BENCH_REQUESTS``
  requests (default one million) through the columnar batch engine,
  with the water-filling fractional optimum as the floor.  The table
  goes to ``BENCH_sched.json`` and a timestamped record is appended to
  ``BENCH_history.jsonl``; CI smoke gates assert power-of-two-choices
  and least-loaded never lose to random on peak load, and that no
  online policy beats the offline optimum (which would be a bug, not a
  triumph).
"""

import json
import os
import pathlib
import time

import pytest

from _tables import emit
from repro._compat import HAVE_NUMPY
from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.placement.registry import create as create_strategy
from repro.scheduling import create as create_scheduler, run_reads, scheduler_names
from repro.simulation import TracePlayer
from repro.types import bins_from_capacities
from repro.workloads import ZipfGenerator, mixed, write_population, zipf_reads

CAPACITIES = [4000, 3000, 2000, 1000]
BLOCKS = 2_000
READS = 8_000

#: Skew-curve scale (one million requests by default; CI smoke shrinks it
#: via REPRO_BENCH_REQUESTS).
REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "") or 1_000_000)
UNIVERSE = 20_000
COPIES = 3
SEED = 17
#: The sweep axes: every registered policy × these strategies × these skews.
CURVE_STRATEGIES = ("redundant-share", "crush", "balanced-rendezvous")
CURVE_ALPHAS = (0.8, 1.1, 1.4)
CURVE_CAPACITIES = [3000, 3000, 2000, 2000, 1500, 1500, 1000, 1000]

#: Pinned output schema (the regression test in tests/scheduling checks
#: these, so downstream BENCH_history.jsonl consumers can rely on them).
PAYLOAD_KEYS = ("benchmark", "copies", "curve", "numpy", "requests", "universe")
CURVE_KEYS = (
    "alpha",
    "lower_bound",
    "peak_count",
    "peak_load",
    "peak_share",
    "policy",
    "strategy",
)

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_sched.json"
HISTORY = ROOT / "BENCH_history.jsonl"


def run_uniform_balance():
    cluster = Cluster(
        bins_from_capacities(CAPACITIES),
        lambda bins: RedundantShare(bins, copies=2),
    )
    player = TracePlayer(cluster)
    player.play(write_population(BLOCKS))
    report = player.play(mixed(READS, BLOCKS, read_fraction=1.0, seed=11))
    shares = report.operation_shares()
    total = sum(CAPACITIES)
    return {
        spec.bin_id: (spec.capacity / total, shares.get(spec.bin_id, 0.0))
        for spec in cluster.strategy.bins
    }


def test_request_shares_track_capacity(benchmark):
    rows = benchmark.pedantic(run_uniform_balance, rounds=1, iterations=1)
    emit(
        "Request balance: uniform reads over mirrored heterogeneous pool",
        ["device", "capacity share", "request share"],
        [
            (device, f"{capacity:.2%}", f"{requests:.2%}")
            for device, (capacity, requests) in sorted(rows.items())
        ],
    )
    for device, (capacity, requests) in rows.items():
        benchmark.extra_info[device] = round(requests, 4)
        assert requests == pytest.approx(capacity, abs=0.04), device


#: The trace-player ablation sweeps the registry instead of a hard-coded
#: rotate-vs-primary knob.
ABLATION_POLICIES = ("primary", "rotate", "random", "least-loaded", "power-of-two")


def run_hotspot_ablation():
    def peak_share(policy):
        cluster = Cluster(
            bins_from_capacities([2500] * 4),
            lambda bins: RedundantShare(bins, copies=2),
        )
        player = TracePlayer(cluster, read_policy=policy)
        player.play(write_population(400))
        report = player.play(zipf_reads(6000, 40, alpha=1.4, seed=5))
        return max(report.operation_shares().values())

    return {policy: peak_share(policy) for policy in ABLATION_POLICIES}


def test_read_scheduling_flattens_hotspots(benchmark):
    peaks = benchmark.pedantic(run_hotspot_ablation, rounds=1, iterations=1)
    emit(
        "Zipf(1.4) hotspot: peak per-device request share by read policy "
        "(homogeneous 4-disk mirror; fair = 25%)",
        ["read policy", "peak device share"],
        [(policy, f"{peak:.2%}") for policy, peak in peaks.items()],
    )
    benchmark.extra_info.update(
        {policy: round(peak, 4) for policy, peak in peaks.items()}
    )
    # Every scheduling policy visibly flattens the hot device vs. primary.
    for policy in ABLATION_POLICIES[1:]:
        assert peaks[policy] < peaks["primary"] - 0.03, policy
    # Load feedback does no worse than blind spreading here.
    assert peaks["least-loaded"] <= peaks["random"] + 1e-9
    assert peaks["power-of-two"] <= peaks["random"] + 1e-9


def run_skew_curve():
    """Peak device load per scheduler × strategy × Zipf α."""
    rows = []
    device_ids = None
    for strategy_name in CURVE_STRATEGIES:
        bins = bins_from_capacities(CURVE_CAPACITIES, prefix="disk")
        strategy = create_strategy(strategy_name, bins, copies=COPIES)
        device_ids = [spec.bin_id for spec in bins]
        for alpha in CURVE_ALPHAS:
            addresses = ZipfGenerator(UNIVERSE, alpha=alpha, seed=SEED).sample(
                REQUESTS
            )
            for policy in scheduler_names():
                scheduler = create_scheduler(policy, device_ids, seed=SEED)
                outcome = run_reads(strategy, scheduler, addresses)
                rows.append(
                    {
                        "strategy": strategy_name,
                        "alpha": alpha,
                        "policy": policy,
                        "peak_count": outcome.peak_count(),
                        "peak_share": round(outcome.peak_share(), 6),
                        "peak_load": round(outcome.peak_load(), 2),
                        "lower_bound": (
                            round(outcome.lower_bound, 2)
                            if outcome.lower_bound is not None
                            else None
                        ),
                    }
                )
    return rows


def test_scheduler_skew_curve(benchmark):
    """Regenerates BENCH_sched.json and asserts the scheduling gates."""
    rows = benchmark.pedantic(run_skew_curve, rounds=1, iterations=1)

    policies = list(scheduler_names())
    table = []
    for strategy_name in CURVE_STRATEGIES:
        for alpha in CURVE_ALPHAS:
            cell = {
                row["policy"]: row
                for row in rows
                if row["strategy"] == strategy_name and row["alpha"] == alpha
            }
            bound = cell["water-filling"]["lower_bound"]
            table.append(
                [strategy_name, f"{alpha:.1f}"]
                + [f"{cell[policy]['peak_share']:.2%}" for policy in policies]
                + [f"{bound / REQUESTS:.2%}" if bound is not None else "-"]
            )
    emit(
        f"Peak device request share vs. Zipf skew "
        f"({REQUESTS} requests, {UNIVERSE} blocks, k={COPIES}, "
        f"{len(CURVE_CAPACITIES)} disks)",
        ["strategy", "alpha"] + list(policies) + ["optimum"],
        table,
    )

    payload = {
        "benchmark": "bench_table_request_balance",
        "numpy": HAVE_NUMPY,
        "requests": REQUESTS,
        "universe": UNIVERSE,
        "copies": COPIES,
        "curve": rows,
    }
    assert tuple(sorted(payload)) == PAYLOAD_KEYS
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    record = dict(payload, timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    with HISTORY.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")

    by_combo = {}
    for row in rows:
        assert tuple(sorted(row)) == CURVE_KEYS
        by_combo[(row["strategy"], row["alpha"], row["policy"])] = row

    worst_po2 = 0.0
    for strategy_name in CURVE_STRATEGIES:
        for alpha in CURVE_ALPHAS:
            def peak(policy):
                return by_combo[(strategy_name, alpha, policy)]["peak_load"]

            # The CI smoke gate: two choices beat none, feedback beats
            # blind, and nothing beats hindsight.
            assert peak("power-of-two") <= peak("random"), (strategy_name, alpha)
            assert peak("least-loaded") <= peak("random"), (strategy_name, alpha)
            bound = by_combo[(strategy_name, alpha, "water-filling")][
                "lower_bound"
            ]
            if bound is not None:
                for policy in policies:
                    assert peak(policy) >= bound - 1e-6, (
                        strategy_name, alpha, policy,
                    )
            worst_po2 = max(worst_po2, peak("power-of-two") / peak("random"))
    benchmark.extra_info["requests"] = REQUESTS
    benchmark.extra_info["po2_vs_random_worst_ratio"] = round(worst_po2, 4)
