"""Request fairness — the second half of the paper's fairness definition.

Section 1 defines fairness as "every storage device with x% of the
available capacity gets x% of the data *and the requests*".  This bench
replays request traces through the cluster simulator's trace player:

* uniform reads over a mirrored pool — per-device request shares must
  track capacity shares;
* a zipf-skewed read trace — rotating reads over the mirror copies must
  beat always-reading the primary on peak device load (the ablation knob
  the `read_policy` option provides).
"""

import pytest

from _tables import emit
from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.simulation import TracePlayer
from repro.types import bins_from_capacities
from repro.workloads import mixed, write_population, zipf_reads

CAPACITIES = [4000, 3000, 2000, 1000]
BLOCKS = 2_000
READS = 8_000


def run_uniform_balance():
    cluster = Cluster(
        bins_from_capacities(CAPACITIES),
        lambda bins: RedundantShare(bins, copies=2),
    )
    player = TracePlayer(cluster)
    player.play(write_population(BLOCKS))
    report = player.play(mixed(READS, BLOCKS, read_fraction=1.0, seed=11))
    shares = report.operation_shares()
    total = sum(CAPACITIES)
    return {
        spec.bin_id: (spec.capacity / total, shares.get(spec.bin_id, 0.0))
        for spec in cluster.strategy.bins
    }


def test_request_shares_track_capacity(benchmark):
    rows = benchmark.pedantic(run_uniform_balance, rounds=1, iterations=1)
    emit(
        "Request balance: uniform reads over mirrored heterogeneous pool",
        ["device", "capacity share", "request share"],
        [
            (device, f"{capacity:.2%}", f"{requests:.2%}")
            for device, (capacity, requests) in sorted(rows.items())
        ],
    )
    for device, (capacity, requests) in rows.items():
        benchmark.extra_info[device] = round(requests, 4)
        assert requests == pytest.approx(capacity, abs=0.04), device


def run_hotspot_ablation():
    def peak_share(policy):
        cluster = Cluster(
            bins_from_capacities([2500] * 4),
            lambda bins: RedundantShare(bins, copies=2),
        )
        player = TracePlayer(cluster, read_policy=policy)
        player.play(write_population(400))
        report = player.play(zipf_reads(6000, 40, alpha=1.4, seed=5))
        return max(report.operation_shares().values())

    return {policy: peak_share(policy) for policy in ("primary", "rotate")}


def test_read_rotation_flattens_hotspots(benchmark):
    peaks = benchmark.pedantic(run_hotspot_ablation, rounds=1, iterations=1)
    emit(
        "Zipf(1.4) hotspot: peak per-device request share by read policy "
        "(homogeneous 4-disk mirror; fair = 25%)",
        ["read policy", "peak device share"],
        [(policy, f"{peak:.2%}") for policy, peak in peaks.items()],
    )
    benchmark.extra_info.update(
        {policy: round(peak, 4) for policy, peak in peaks.items()}
    )
    # Rotating over the k copies visibly flattens the hot device.
    assert peaks["rotate"] < peaks["primary"] - 0.03
