"""Adaptivity under capacity changes (extension of Figures 3/5).

The paper's adaptivity criterion covers "any change in the set of data
blocks, storage devices, or their capacities".  The figures only exercise
whole-device arrivals/departures; this bench grows one *existing* device
(the biggest, then the smallest) by 50% and measures copies moved against
the optimum — the number of additional copies the grown device must
receive.  The expected shape follows Lemma 3.2's argument: a capacity
change at rank ``i`` only perturbs the scan probabilities of ranks
``<= i``, so growing the (already) biggest device is cheaper than growing
the smallest.
"""

import pytest

from _tables import emit
from repro.core import LinMirror
from repro.metrics import compare_strategies
from repro.simulation.scenarios import capacity_change_cases

BALLS = 10_000


def run_cases():
    rows = []
    addresses = list(range(BALLS))
    for case in capacity_change_cases(count=8, base=5_000, step=1_000):
        before = LinMirror(list(case.before))
        after = LinMirror(list(case.after))
        used_before = sum(
            1
            for address in addresses
            for bin_id in before.place(address)
            if bin_id == case.affected
        )
        used_after = sum(
            1
            for address in addresses
            for bin_id in after.place(address)
            if bin_id == case.affected
        )
        report = compare_strategies(before, after, addresses, [])
        optimum = max(1, used_after - used_before)
        rows.append(
            (
                case.label,
                used_before,
                used_after,
                report.moved_positional,
                report.moved_positional / optimum,
            )
        )
    return rows


def test_capacity_change_adaptivity(benchmark):
    rows = benchmark.pedantic(run_cases, rounds=1, iterations=1)
    emit(
        "Capacity-change adaptivity, LinMirror k=2 "
        "(grow one device by 50%; optimum = copies gained)",
        ["case", "copies before", "copies after", "moved", "x optimum"],
        [
            (label, before, after, moved, f"{factor:.2f}")
            for label, before, after, moved, factor in rows
        ],
    )
    by_label = {row[0]: row for row in rows}
    for label, _, _, moved, factor in rows:
        benchmark.extra_info[label] = round(factor, 3)
        # The change must actually route extra copies to the grown device.
        assert moved > 0
        # Bounded competitiveness.  Growing a device is remove+add in the
        # worst case, so the relevant regime is 2x the insertion bound of
        # 4; measured: ~1.4 (biggest) and ~5.9 (smallest).
        assert factor < 8.0, (label, factor)
    # Growing at the big end of the list is cheaper (fewer ranks perturbed).
    assert (
        by_label["grow biggest"][4] < by_label["grow smallest"][4]
    )
