"""Figure 1 / Lemma 2.4 — the trivial replication strategy wastes capacity.

Paper claim: on bins ``[2, 1, 1]`` with k = 2, a trivial strategy (two fair
draws) misses the big bin with probability ``1/2 * 1/3 = 1/6``, wasting
1/6 of the big bin and 1/12 of the overall capacity, while an optimal
strategy uses the big bin for *every* ball.  Lemma 2.4 generalises: any bin
(1+eps) bigger than the next is under-loaded for every eps < 1.

This bench reproduces the exact 1/6 and 1/12 numbers (analytically and
empirically), shows Redundant Share hitting the big bin every time, and
sweeps the skew to show the waste growing with heterogeneity.
"""

from collections import Counter

import pytest

from _tables import emit
from repro.core import RedundantShare
from repro.placement import (
    TrivialReplication,
    trivial_miss_probability,
    trivial_wasted_fraction,
)
from repro.types import bins_from_capacities

BALLS = 40_000


def run_figure1():
    capacities = [2, 1, 1]
    bins = bins_from_capacities(capacities)
    trivial = TrivialReplication(bins, copies=2)
    redundant = RedundantShare(bins, copies=2)

    trivial_misses = sum(
        1 for address in range(BALLS) if "bin-0" not in trivial.place(address)
    )
    redundant_misses = sum(
        1 for address in range(BALLS) if "bin-0" not in redundant.place(address)
    )
    return {
        "analytic_miss": trivial_miss_probability(capacities, 2, 0),
        "empirical_miss": trivial_misses / BALLS,
        "redundant_miss": redundant_misses / BALLS,
        "waste": trivial_wasted_fraction(capacities, 2),
    }


def test_fig1_trivial_waste(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)

    emit(
        "Figure 1: trivial strategy on bins [2, 1, 1], k=2",
        ["quantity", "paper", "measured"],
        [
            ["P(big bin missed), analytic", "1/6 = 0.1667", f"{result['analytic_miss']:.4f}"],
            ["P(big bin missed), empirical", "1/6 = 0.1667", f"{result['empirical_miss']:.4f}"],
            ["P(big bin missed), Redundant Share", "0", f"{result['redundant_miss']:.4f}"],
            ["overall capacity wasted", "1/12 = 0.0833", f"{result['waste']:.4f}"],
        ],
    )
    benchmark.extra_info.update(result)

    assert result["analytic_miss"] == pytest.approx(1 / 6)
    assert result["empirical_miss"] == pytest.approx(1 / 6, abs=0.01)
    assert result["redundant_miss"] == 0.0
    assert result["waste"] == pytest.approx(1 / 12)


def run_skew_sweep():
    rows = []
    for eps in (0.0, 0.25, 0.5, 0.75, 1.0):
        big = int(100 * (1 + eps))
        capacities = sorted([big, 100, 100, 100], reverse=True)
        rows.append(
            (eps, capacities[0], trivial_wasted_fraction(capacities, 2))
        )
    return rows


def test_fig1_waste_grows_with_skew(benchmark):
    rows = benchmark.pedantic(run_skew_sweep, rounds=1, iterations=1)
    emit(
        "Lemma 2.4: trivial-strategy waste vs biggest-bin skew (k=2)",
        ["eps", "biggest bin", "wasted fraction"],
        [(f"{eps:.2f}", big, f"{waste:.4f}") for eps, big, waste in rows],
    )
    wastes = [waste for _, _, waste in rows]
    # Waste is zero for homogeneous bins and strictly grows with eps > 0.
    assert wastes[0] == pytest.approx(0.0, abs=1e-9)
    assert all(b >= a - 1e-12 for a, b in zip(wastes, wastes[1:]))
    assert wastes[-1] > 0.01
