"""repro — a reproduction of *Dynamic and Redundant Data Placement*.

Brinkmann, Effert, Meyer auf der Heide, Scheideler — ICDCS 2007.

The library implements the paper's **Redundant Share** placement strategies
(LinMirror for mirroring, k-replication for arbitrary replication degrees,
and the O(k) precomputed variant), the capacity-efficiency theory behind
them, the baselines they are compared against (trivial replication,
consistent hashing, Share, RUSH, CRUSH, RAID striping), erasure-coding
consumers, and a storage-cluster simulator that regenerates the paper's
evaluation figures.

Quickstart::

    from repro import BinSpec, RedundantShare

    bins = [BinSpec("disk-a", 1200), BinSpec("disk-b", 800),
            BinSpec("disk-c", 500)]
    strategy = RedundantShare(bins, copies=2)
    print(strategy.place(42))   # ('disk-a', 'disk-c')  - deterministic

See ``examples/`` for full scenarios and ``benchmarks/`` for the paper's
experiments.
"""

from .exceptions import (
    BadFrameError,
    BlockNotFoundError,
    CapacityExceededError,
    ChecksumMismatchError,
    ConfigurationError,
    DecodingError,
    DeviceNotFoundError,
    DeviceUnavailableError,
    InfeasibleRedundancyError,
    InfeasibleReplicationError,
    OversizedFrameError,
    PlacementError,
    RepairTimeoutError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    TruncatedFrameError,
)
from .types import (
    Address,
    BinSpec,
    Placement,
    bins_from_capacities,
    relative_capacities,
    total_capacity,
)

__version__ = "1.0.0"

__all__ = [
    "Address",
    "BadFrameError",
    "BinSpec",
    "BlockNotFoundError",
    "CapacityExceededError",
    "ChecksumMismatchError",
    "ConfigurationError",
    "DecodingError",
    "DeviceNotFoundError",
    "DeviceUnavailableError",
    "InfeasibleRedundancyError",
    "InfeasibleReplicationError",
    "OversizedFrameError",
    "Placement",
    "PlacementError",
    "RedundantShare",
    "RepairTimeoutError",
    "ReproError",
    "ServiceError",
    "ServiceUnavailableError",
    "TruncatedFrameError",
    "__version__",
    "bins_from_capacities",
    "relative_capacities",
    "total_capacity",
]


def __getattr__(name):
    """Lazy re-exports of the heavier subsystems.

    Keeps ``import repro`` light while still offering the flat API surface
    (``repro.RedundantShare`` etc.).
    """
    if name == "RedundantShare":
        from .core.redundant_share import RedundantShare

        return RedundantShare
    if name == "FastRedundantShare":
        from .core.fast_variant import FastRedundantShare

        return FastRedundantShare
    if name == "VirtualVolume":
        from .core.virtualizer import VirtualVolume

        return VirtualVolume
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
