"""Redundancy metrics — verifying and valuing the no-colocation property.

The paper's redundancy condition says no two copies of a ball may share a
device; :func:`count_violations` checks it over a population, and
:func:`data_loss_fraction` quantifies what the property buys: the fraction
of balls that would lose *all* copies if a given device set failed.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..placement.base import ReplicationStrategy


def count_violations(
    strategy: ReplicationStrategy, addresses: Iterable[int]
) -> int:
    """Number of balls whose placement repeats a device."""
    violations = 0
    for address in addresses:
        placement = strategy.place(address)
        if len(set(placement)) != len(placement):
            violations += 1
    return violations


def data_loss_fraction(
    strategy: ReplicationStrategy,
    addresses: Sequence[int],
    failed_bins: Set[str],
) -> float:
    """Fraction of balls with every copy inside ``failed_bins``."""
    if not addresses:
        raise ValueError("need at least one address")
    lost = 0
    for address in addresses:
        placement = strategy.place(address)
        if all(bin_id in failed_bins for bin_id in placement):
            lost += 1
    return lost / len(addresses)


def worst_failure_pairs(
    strategy: ReplicationStrategy,
    addresses: Sequence[int],
    limit: int = 10,
) -> List[Tuple[Tuple[str, str], float]]:
    """Loss fraction for every device pair, worst first.

    For k = 2 this enumerates exactly the failure patterns that can lose
    data; useful for comparing placement *spread* (declustering) across
    strategies.
    """
    pair_hits: Dict[Tuple[str, str], int] = {}
    for address in addresses:
        placement = strategy.place(address)
        for pair in itertools.combinations(sorted(set(placement)), 2):
            pair_hits[pair] = pair_hits.get(pair, 0) + 1
    if strategy.copies != 2:
        # For k > 2 a pair failure cannot lose data; report co-location
        # intensity instead (still pairs, but fractions of co-hosted balls).
        pass
    total = len(addresses)
    ranked = sorted(
        ((pair, hits / total) for pair, hits in pair_hits.items()),
        key=lambda item: -item[1],
    )
    return ranked[:limit]


def survivable_failure_count(strategy: ReplicationStrategy) -> int:
    """Device losses any placement survives by construction (``k - 1``)."""
    return strategy.copies - 1
