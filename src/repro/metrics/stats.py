"""Statistical acceptance tests for the paper's fairness claims.

The fairness lemmas (2.4, 3.1–3.5) are statements about *distributions*:
Redundant Share stores a ``b̂_i / B̂`` share of all copies on bin ``i`` in
expectation, while the trivial strategy provably cannot (Lemma 2.4 — on
``[2, 1, 1]`` with ``k = 2`` the big bin is missed with probability 1/6).
This module turns those claims into reusable, quantitative acceptance
checks with a controlled false-positive rate instead of loose tolerances:

* :func:`chi_square_fairness` — Pearson chi-square of observed copy
  counts against expected shares, accepted iff the statistic is below the
  ``1 - alpha`` chi-square quantile.
* :func:`max_deviation_fairness` — per-bin share deviation against a
  Bonferroni-corrected normal bound (the "fairness within x%" view, with
  x derived from the sample size rather than hand-picked).

Everything is dependency-free: the chi-square survival function is the
regularized upper incomplete gamma (series + continued fraction), its
quantile is found by bisection, and the normal quantile uses Acklam's
rational approximation.  Results are deterministic given the sampled
counts — pair with :func:`sample_copy_counts` for seeded populations.

A statistical caveat, by design: copy counts of a k-replication strategy
are *not* a multinomial sample (the k copies of one ball anti-correlate
across bins because they must land on distinct bins).  That correlation
only *reduces* variance relative to the multinomial model, so both tests
are conservative — a fair strategy is accepted at least ``1 - alpha`` of
the time, and the Lemma 2.4 effect (a constant-share deficit) still
rejects overwhelmingly at any reasonable sample size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from ..capacity.clipping import clip_capacities
from ..hashing.primitives import stable_u64
from .fairness import chi_square_statistic

__all__ = [
    "FairnessVerdict",
    "chi_square_fairness",
    "chi_square_quantile",
    "chi_square_sf",
    "fair_copy_shares",
    "max_deviation_fairness",
    "normal_quantile",
    "normal_sf",
    "sample_copy_counts",
]


# ----------------------------------------------------------------------
# Special functions (dependency-free)
# ----------------------------------------------------------------------

_MAX_ITERATIONS = 500
_EPSILON = 3.0e-14


def _lower_gamma_series(a: float, x: float) -> float:
    """Regularized lower incomplete gamma P(a, x) by series (x < a + 1)."""
    term = 1.0 / a
    total = term
    denominator = a
    for _ in range(_MAX_ITERATIONS):
        denominator += 1.0
        term *= x / denominator
        total += term
        if abs(term) < abs(total) * _EPSILON:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))

def _upper_gamma_fraction(a: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(a, x) by continued fraction
    (x >= a + 1), Lentz's algorithm."""
    tiny = 1.0e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _regularized_gamma_q(a: float, x: float) -> float:
    """Q(a, x) = 1 - P(a, x), valid for a > 0, x >= 0."""
    if a <= 0:
        raise ValueError("shape parameter must be positive")
    if x < 0:
        raise ValueError("argument must be non-negative")
    if x == 0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _lower_gamma_series(a, x)
    return _upper_gamma_fraction(a, x)


def chi_square_sf(statistic: float, df: int) -> float:
    """Chi-square survival function P(X > statistic) for ``df`` degrees of
    freedom — the p-value of a Pearson test."""
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if statistic < 0:
        return 1.0
    if math.isinf(statistic):
        return 0.0
    return _regularized_gamma_q(df / 2.0, statistic / 2.0)


def chi_square_quantile(df: int, alpha: float) -> float:
    """The critical value ``x`` with ``P(X > x) = alpha`` (upper quantile).

    Found by bisection on the survival function; accurate to ~1e-10,
    which is far below any acceptance-test sensitivity.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    low, high = 0.0, max(4.0 * df, 16.0)
    while chi_square_sf(high, df) > alpha:
        high *= 2.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if chi_square_sf(mid, df) > alpha:
            low = mid
        else:
            high = mid
        if high - low < 1e-10 * max(1.0, high):
            break
    return 0.5 * (low + high)


def normal_sf(z: float) -> float:
    """Standard normal survival function P(Z > z)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def normal_quantile(p: float) -> float:
    """Standard normal quantile (inverse CDF), Acklam's approximation
    refined by one Halley step — ~1e-15 relative error."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Acklam's rational approximation coefficients.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    # One Halley refinement against the exact CDF.
    error = (1.0 - normal_sf(x)) - p
    u = error * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)


# ----------------------------------------------------------------------
# Acceptance verdicts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FairnessVerdict:
    """Outcome of one statistical fairness acceptance test.

    Attributes:
        test: ``"chi-square"`` or ``"max-deviation"``.
        statistic: The computed test statistic.
        threshold: Acceptance threshold the statistic is compared to.
        p_value: Probability of a statistic at least this extreme under
            the fair hypothesis (approximate for max-deviation).
        alpha: Configured false-positive rate.
        df: Degrees of freedom (chi-square) or number of compared bins.
        accepted: True iff the sample is consistent with fairness.
        detail: Per-bin diagnostics (free-form, for reports).
    """

    test: str
    statistic: float
    threshold: float
    p_value: float
    alpha: float
    df: int
    accepted: bool
    detail: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "ACCEPT" if self.accepted else "REJECT"
        return (
            f"{self.test}: {verdict} (statistic={self.statistic:.3f}, "
            f"threshold={self.threshold:.3f}, p={self.p_value:.4g}, "
            f"alpha={self.alpha:g})"
        )


def chi_square_fairness(
    copy_counts: Mapping[str, int],
    expected_shares: Mapping[str, float],
    alpha: float = 0.01,
) -> FairnessVerdict:
    """Pearson chi-square acceptance of observed counts vs expected shares.

    Accepts iff the statistic is below the ``1 - alpha`` quantile of the
    chi-square distribution with ``m - 1`` degrees of freedom, ``m`` the
    number of bins with positive expected share.  See the module caveat:
    replication correlation makes this conservative.

    Raises:
        ValueError: if no copies were counted, alpha is out of range, or
            fewer than two bins carry positive expected share.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    positive = {k: v for k, v in expected_shares.items() if v > 0.0}
    if len(positive) < 2:
        raise ValueError("need at least two bins with positive share")
    statistic = chi_square_statistic(copy_counts, expected_shares)
    df = len(positive) - 1
    threshold = chi_square_quantile(df, alpha)
    p_value = chi_square_sf(statistic, df)
    return FairnessVerdict(
        test="chi-square",
        statistic=statistic,
        threshold=threshold,
        p_value=p_value,
        alpha=alpha,
        df=df,
        accepted=statistic <= threshold,
    )


def max_deviation_fairness(
    copy_counts: Mapping[str, int],
    expected_shares: Mapping[str, float],
    alpha: float = 0.01,
) -> FairnessVerdict:
    """Largest standardized per-bin share deviation vs a Bonferroni bound.

    Each bin's observed share is compared to its expected share in units
    of the binomial standard error ``sqrt(p (1 - p) / N)``; the sample is
    accepted iff every bin stays below the two-sided normal quantile at
    ``alpha / m`` (Bonferroni over ``m`` bins).  Complements the
    chi-square: it names the *worst* bin and the deviation magnitude —
    the paper's "fairness within x%" phrasing with x implied by ``N``.

    Bins with expected share 0 or 1 have no sampling variance; any
    deviation there rejects outright.

    Raises:
        ValueError: if no copies were counted or alpha is out of range.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    total = sum(copy_counts.values())
    if total <= 0:
        raise ValueError("no copies counted")
    bins = [k for k, v in expected_shares.items() if v > 0.0]
    m = max(len(bins), 1)
    threshold = normal_quantile(1.0 - alpha / (2.0 * m))
    worst = 0.0
    worst_bin = ""
    detail: Dict[str, float] = {}
    degenerate_violation = False
    for bin_id, share in expected_shares.items():
        observed = copy_counts.get(bin_id, 0) / total
        deviation = observed - share
        if share <= 0.0 or share >= 1.0:
            if abs(deviation) > 0.0:
                degenerate_violation = True
                detail[bin_id] = math.inf
            continue
        sigma = math.sqrt(share * (1.0 - share) / total)
        standardized = abs(deviation) / sigma
        detail[bin_id] = standardized
        if standardized > worst:
            worst = standardized
            worst_bin = bin_id
    if degenerate_violation:
        worst = math.inf
    p_value = min(1.0, 2.0 * m * normal_sf(worst)) if math.isfinite(worst) else 0.0
    verdict_detail = dict(detail)
    if worst_bin:
        verdict_detail["__worst__"] = worst
    return FairnessVerdict(
        test="max-deviation",
        statistic=worst,
        threshold=threshold,
        p_value=p_value,
        alpha=alpha,
        df=m,
        accepted=worst <= threshold,
        detail=verdict_detail,
    )


# ----------------------------------------------------------------------
# Sampling helpers
# ----------------------------------------------------------------------


def fair_copy_shares(
    capacities: Mapping[str, float], copies: int
) -> Dict[str, float]:
    """The *fair* share of all copies each bin deserves: its Lemma 2.2
    clipped capacity over the clipped total.

    This is the null hypothesis both acceptance tests compare against; it
    equals ``RedundantShare.expected_shares()`` for the same bins, and is
    what the trivial strategy provably misses on heterogeneous vectors
    (Lemma 2.4).
    """
    # Clip in descending-capacity order (ties by id, matching
    # sort_bins_by_capacity) and map the result back to ids.
    ordered = sorted(capacities.items(), key=lambda item: (-item[1], item[0]))
    clipped = clip_capacities([value for _, value in ordered], copies)
    total = sum(clipped)
    if total <= 0:
        raise ValueError("total capacity must be positive")
    return {
        bin_id: value / total
        for (bin_id, _), value in zip(ordered, clipped)
    }


def sample_copy_counts(
    strategy, balls: int, seed: int = 0
) -> Dict[str, int]:
    """Place a seeded, deterministic ball population and count copies.

    Address windows for different seeds are disjoint with overwhelming
    probability (a SplitMix64-derived 62-bit window start), so hypothesis
    and CI runs can vary ``seed`` without resampling the same balls.
    Uses the strategy's batch engine; identical results with or without
    NumPy.
    """
    if balls < 1:
        raise ValueError("need at least one ball")
    start = stable_u64("stats-sample", seed) >> 2
    addresses = range(start, start + balls)
    return strategy.place_many(addresses).counts()
