"""Metrics: fairness (Figures 2/4), adaptivity (Figures 3/5), redundancy."""

from .adaptivity import (
    MovementReport,
    compare_strategies,
    movement_series,
    optimal_moved_copies,
)
from .fairness import (
    chi_square_statistic,
    count_copies,
    fill_percentages,
    gini_coefficient,
    jain_index,
    max_fill_spread,
    max_share_deviation,
    usage_shares,
)
from .redundancy import (
    count_violations,
    data_loss_fraction,
    survivable_failure_count,
    worst_failure_pairs,
)

__all__ = [
    "MovementReport",
    "chi_square_statistic",
    "compare_strategies",
    "count_copies",
    "count_violations",
    "data_loss_fraction",
    "fill_percentages",
    "gini_coefficient",
    "jain_index",
    "max_fill_spread",
    "max_share_deviation",
    "movement_series",
    "optimal_moved_copies",
    "survivable_failure_count",
    "usage_shares",
    "worst_failure_pairs",
]
