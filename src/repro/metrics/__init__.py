"""Metrics: fairness (Figures 2/4), adaptivity (Figures 3/5), redundancy."""

from .adaptivity import (
    MovementReport,
    compare_scale_out,
    compare_strategies,
    movement_series,
    optimal_moved_copies,
)
from .fairness import (
    chi_square_statistic,
    count_copies,
    fill_percentages,
    gini_coefficient,
    jain_index,
    max_fill_spread,
    max_share_deviation,
    usage_shares,
)
from .redundancy import (
    count_violations,
    data_loss_fraction,
    survivable_failure_count,
    worst_failure_pairs,
)
from .stats import (
    FairnessVerdict,
    chi_square_fairness,
    chi_square_quantile,
    chi_square_sf,
    fair_copy_shares,
    max_deviation_fairness,
    normal_quantile,
    normal_sf,
    sample_copy_counts,
)

__all__ = [
    "FairnessVerdict",
    "MovementReport",
    "chi_square_fairness",
    "chi_square_quantile",
    "chi_square_sf",
    "chi_square_statistic",
    "compare_scale_out",
    "compare_strategies",
    "count_copies",
    "count_violations",
    "data_loss_fraction",
    "fair_copy_shares",
    "fill_percentages",
    "gini_coefficient",
    "jain_index",
    "max_deviation_fairness",
    "max_fill_spread",
    "max_share_deviation",
    "movement_series",
    "normal_quantile",
    "normal_sf",
    "optimal_moved_copies",
    "sample_copy_counts",
    "survivable_failure_count",
    "usage_shares",
    "worst_failure_pairs",
]
