"""Adaptivity metrics — how much data a reconfiguration moves.

The paper's Figure 3/5 experiments measure, for a configuration change
(one bin added or removed):

* ``used``      — copies residing on the affected bin (after an insertion,
  in the new configuration; before a removal, in the old one);
* ``replaced``  — copies whose device changed between the configurations;
* ``factor``    — ``replaced / used``, the empirical competitive ratio,
  bounded by 4 for LinMirror (Lemma 3.2) and ``k²`` in general (Lemma 3.5).

Two notions of "changed" are provided: *positional* (copy ``i`` of a ball
sits on a different device — what an erasure-coded system must physically
move, and the paper's accounting) and *set-based* (the device no longer
holds any copy of the ball — the cheapest possible migration for plain
mirroring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .._compat import get_numpy
from ..placement.base import BatchPlacement, ReplicationStrategy


@dataclass(frozen=True)
class MovementReport:
    """Outcome of comparing two configurations over a ball population.

    Attributes:
        balls: Number of balls compared.
        copies: Replication degree.
        moved_positional: Copies whose (position, device) assignment changed.
        moved_set: Copies that changed device ignoring positions (optimal
            relabeling within each ball).
        used_on_affected: Copies on the affected bin (see module docstring).
        affected_bins: The bin ids whose addition/removal was measured.
    """

    balls: int
    copies: int
    moved_positional: int
    moved_set: int
    used_on_affected: int
    affected_bins: Sequence[str]

    @property
    def factor_positional(self) -> float:
        """``replaced / used`` with positional accounting (paper's figure)."""
        if self.used_on_affected == 0:
            return 0.0
        return self.moved_positional / self.used_on_affected

    @property
    def factor_set(self) -> float:
        """``replaced / used`` with set-based accounting."""
        if self.used_on_affected == 0:
            return 0.0
        return self.moved_set / self.used_on_affected


def compare_strategies(
    before: ReplicationStrategy,
    after: ReplicationStrategy,
    addresses: Iterable[int],
    affected_bins: Sequence[str] = (),
) -> MovementReport:
    """Measure movement between two configuration snapshots.

    Args:
        before: Strategy over the old configuration.
        after: Strategy over the new configuration.
        addresses: Ball population to compare (an iterable of addresses).
        affected_bins: Bins that were added (count usage in ``after``) or
            removed (absent from ``after`` — usage counted in ``before``).
    """
    if before.copies != after.copies:
        raise ValueError("strategies must share the replication degree")
    after_ids = {spec.bin_id for spec in after.bins}
    added = [bin_id for bin_id in affected_bins if bin_id in after_ids]
    removed = [bin_id for bin_id in affected_bins if bin_id not in after_ids]

    population = list(addresses)
    old_batch = before.place_many(population)
    new_batch = after.place_many(population)
    np = get_numpy()
    if np is not None and population:
        moved_positional, moved_set = _count_moves_np(
            np, old_batch, new_batch
        )
    else:
        moved_positional = 0
        moved_set = 0
        for old, new in zip(old_batch.tuples(), new_batch.tuples()):
            moved_positional += sum(
                1 for source, target in zip(old, new) if source != target
            )
            moved_set += len(set(old) - set(new))
    old_counts = old_batch.counts()
    new_counts = new_batch.counts()
    used = sum(new_counts.get(bin_id, 0) for bin_id in added)
    used += sum(old_counts.get(bin_id, 0) for bin_id in removed)
    return MovementReport(
        balls=len(population),
        copies=before.copies,
        moved_positional=moved_positional,
        moved_set=moved_set,
        used_on_affected=used,
        affected_bins=tuple(affected_bins),
    )


def _count_moves_np(np, old_batch: BatchPlacement, new_batch: BatchPlacement):
    """Movement counters over two rank-column batches, in array land.

    The columns of the two batches index *different* rank tables, so both
    are first translated into a shared global id space; ``moved_set``
    assumes the redundancy invariant (distinct bins per ball), which every
    :class:`ReplicationStrategy` guarantees.
    """
    union: Dict[str, int] = {}
    for bin_id in old_batch.rank_ids + new_batch.rank_ids:
        if bin_id not in union:
            union[bin_id] = len(union)
    old_table = np.asarray(
        [union[bin_id] for bin_id in old_batch.rank_ids], dtype=np.int64
    )
    new_table = np.asarray(
        [union[bin_id] for bin_id in new_batch.rank_ids], dtype=np.int64
    )
    old_global = [
        old_table[np.asarray(column, dtype=np.int64)]
        for column in old_batch.columns
    ]
    new_global = [
        new_table[np.asarray(column, dtype=np.int64)]
        for column in new_batch.columns
    ]
    moved_positional = sum(
        int((old != new).sum()) for old, new in zip(old_global, new_global)
    )
    moved_set = 0
    for old in old_global:
        absent = np.ones(old.shape[0], dtype=bool)
        for new in new_global:
            absent &= old != new
        moved_set += int(absent.sum())
    return moved_positional, moved_set


def compare_scale_out(
    name: str,
    before_bins: Sequence,
    after_bins: Sequence,
    addresses: Iterable[int],
    *,
    copies: int = 2,
    before_options: Optional[Dict] = None,
    after_options: Optional[Dict] = None,
    **options,
) -> MovementReport:
    """Movement a registered strategy incurs growing one fleet into another.

    Builds the before/after snapshots through the placement registry's
    canonical :func:`~repro.placement.registry.create` — same name, same
    ``copies``, same per-strategy ``options`` on both sides — so option-
    carrying strategies are compared exactly as a deployment would
    reconfigure them.  Options whose value depends on the fleet size
    (positional ``service_rates``, ``generations``) can be overridden
    per side via ``before_options`` / ``after_options``, which are
    merged over ``options``.  The affected bins are inferred as the ids
    present only in ``after_bins``.

    This is the primitive behind the trade-off bench's movement column
    and its zero-movement gate.
    """
    from ..placement.registry import create

    before_ids = {spec.bin_id for spec in before_bins}
    added = [
        spec.bin_id
        for spec in after_bins
        if spec.bin_id not in before_ids
    ]
    before = create(
        name,
        before_bins,
        copies=copies,
        **{**options, **(before_options or {})},
    )
    after = create(
        name,
        after_bins,
        copies=copies,
        **{**options, **(after_options or {})},
    )
    return compare_strategies(before, after, addresses, added)


def optimal_moved_copies(report: MovementReport) -> int:
    """Lower bound on copies *any* strategy must move for this change.

    Every copy the affected bin holds (gains or loses) necessarily moves;
    nothing else has to.  The competitive ratio in the paper compares
    against exactly this bound.
    """
    return report.used_on_affected


def movement_series(
    strategies: Sequence[ReplicationStrategy],
    addresses: Sequence[int],
    affected: Sequence[Sequence[str]],
) -> List[MovementReport]:
    """Compare consecutive snapshots of an evolving system.

    Args:
        strategies: Configuration snapshots in order.
        addresses: Ball population.
        affected: For each transition, the bins added/removed.
    """
    if len(affected) != len(strategies) - 1:
        raise ValueError("need one affected-bin list per transition")
    reports = []
    for index in range(len(strategies) - 1):
        reports.append(
            compare_strategies(
                strategies[index],
                strategies[index + 1],
                addresses,
                affected[index],
            )
        )
    return reports
