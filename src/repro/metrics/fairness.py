"""Fairness metrics — how well a placement honours capacity proportions.

The paper's headline fairness claim (Figures 2 and 4) is phrased as *fill
percentage*: after placing ``m`` balls, every bin should be filled to the
same percentage of its (usable) capacity.  This module provides that view
plus the standard statistical summaries used in the comparison benches.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence


def usage_shares(copy_counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalise per-bin copy counts to shares of the total."""
    total = sum(copy_counts.values())
    if total <= 0:
        raise ValueError("no copies counted")
    return {bin_id: count / total for bin_id, count in copy_counts.items()}


def fill_percentages(
    copy_counts: Mapping[str, int], capacities: Mapping[str, float]
) -> Dict[str, float]:
    """Percent of each bin's capacity in use — the Figure 2/4 metric."""
    result = {}
    for bin_id, capacity in capacities.items():
        if capacity <= 0:
            raise ValueError(f"bin {bin_id!r} has non-positive capacity")
        result[bin_id] = 100.0 * copy_counts.get(bin_id, 0) / capacity
    return result


def max_fill_spread(
    copy_counts: Mapping[str, int], capacities: Mapping[str, float]
) -> float:
    """Largest minus smallest fill percentage — 0 for perfect fairness."""
    fills = fill_percentages(copy_counts, capacities)
    return max(fills.values()) - min(fills.values())


def max_share_deviation(
    observed: Mapping[str, float], expected: Mapping[str, float]
) -> float:
    """Largest absolute deviation between observed and expected shares."""
    keys = set(observed) | set(expected)
    return max(
        abs(observed.get(key, 0.0) - expected.get(key, 0.0)) for key in keys
    )


def chi_square_statistic(
    copy_counts: Mapping[str, int], expected_shares: Mapping[str, float]
) -> float:
    """Pearson chi-square of counts against expected shares.

    Compared against the chi-square quantile for ``len(bins) - 1`` degrees
    of freedom in the statistical fairness tests.
    """
    total = sum(copy_counts.values())
    if total <= 0:
        raise ValueError("no copies counted")
    statistic = 0.0
    for bin_id, share in expected_shares.items():
        expected = share * total
        if expected <= 0:
            if copy_counts.get(bin_id, 0) > 0:
                return math.inf
            continue
        delta = copy_counts.get(bin_id, 0) - expected
        statistic += delta * delta / expected
    return statistic


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 for perfectly equal values, 1/n for one hot
    spot.  Applied to *fill fractions*, equality is exactly the paper's
    fairness notion."""
    if not values:
        raise ValueError("need at least one value")
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = perfectly even)."""
    if not values:
        raise ValueError("need at least one value")
    if any(value < 0 for value in values):
        raise ValueError("values must be non-negative")
    ordered = sorted(values)
    total = sum(ordered)
    if total == 0:
        return 0.0
    n = len(ordered)
    weighted = sum((index + 1) * value for index, value in enumerate(ordered))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def count_copies(placements: Iterable[Sequence[str]]) -> Dict[str, int]:
    """Tally copies per bin over an iterable of placements.

    Also accepts a column-oriented
    :class:`~repro.placement.base.BatchPlacement` (the result of
    ``strategy.place_many``), in which case the histogram is collected
    with a bincount over the rank columns instead of a Python loop over
    per-ball tuples — the fast path of the fairness experiments.
    """
    counter = getattr(placements, "counts", None)
    if callable(counter):
        return counter()
    counts: Dict[str, int] = {}
    for placement in placements:
        for bin_id in placement:
            counts[bin_id] = counts.get(bin_id, 0) + 1
    return counts
