"""Shared vectorized scheduling kernels.

The scheduler batch engines are assembled from the same discipline as
:mod:`repro.placement.kernels`: every kernel has a NumPy leg and a
pure-Python leg switched on :func:`repro._compat.get_numpy`, and the two
legs return element-wise identical values, so ``REPRO_PURE_PYTHON=1``
flips the whole subsystem at once and either leg can serve as the oracle
for the other.

Unlike placement, two of the policies (least-loaded and
power-of-two-choices) are *inherently sequential* — every choice feeds
the load state the next choice reads — so their batch engines cannot be
a single array expression.  What vectorizes is everything around the
feedback loop:

* **Draw columns** — :func:`draw_column` evaluates the seeded per-request
  hash draws (``u64_from_base(base, sequence)``) for a whole batch at
  once; the sequential policies then consume precomputed integers
  instead of re-hashing per request.
* **Occurrence counting** — :func:`cumcount` gives each request its
  0-based occurrence index among equal addresses (the round-robin
  rotation state), via a stable argsort instead of a dict walk.
* **Bulk accounting** — :func:`bincount_ranks` turns a chosen-rank
  column into per-device totals so load counters update once per batch
  rather than once per request.
"""

from __future__ import annotations

from typing import List, Sequence

from .._compat import get_numpy
from ..hashing.primitives import u64_from_base, u64s_from_base


def draw_column(base: int, start: int, count: int):
    """Seeded draws for request sequence numbers ``[start, start+count)``.

    Element ``i`` equals ``u64_from_base(base, start + i)`` — the draw
    the scalar ``choose()`` path computes for the ``(start + i)``-th
    request.  Returns a ``uint64`` array (NumPy leg) or a list of ints
    (pure leg).
    """
    np = get_numpy()
    if np is None:
        return [u64_from_base(base, index) for index in range(start, start + count)]
    return u64s_from_base(base, np.arange(start, start + count, dtype=np.uint64))


def cumcount(addresses: Sequence[int]) -> "Sequence[int]":
    """Occurrence index of each element among its equals, in stream order.

    ``cumcount([7, 3, 7, 7, 3]) == [0, 0, 1, 2, 1]`` — the per-address
    counter value round-robin would have seen at each request, assuming
    counters start at zero.  Stable and deterministic on both legs.
    """
    np = get_numpy()
    if np is None:
        seen = {}
        result: List[int] = []
        for address in addresses:
            count = seen.get(address, 0)
            result.append(count)
            seen[address] = count + 1
        return result
    arr = np.asarray(addresses, dtype=np.int64)
    size = len(arr)
    if size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(arr, kind="stable")
    ordered = arr[order]
    is_start = np.empty(size, dtype=bool)
    is_start[0] = True
    is_start[1:] = ordered[1:] != ordered[:-1]
    group_start = np.maximum.accumulate(
        np.where(is_start, np.arange(size, dtype=np.int64), 0)
    )
    occurrence = np.arange(size, dtype=np.int64) - group_start
    result = np.empty(size, dtype=np.int64)
    result[order] = occurrence
    return result


def mod_positions(draws, modulus: int):
    """``draws % modulus`` element-wise — the uniform pick over ``k``
    equally available copy positions.  Returns ints on both legs."""
    np = get_numpy()
    if np is None:
        return [int(draw % modulus) for draw in draws]
    return (draws % np.uint64(modulus)).astype(np.int64)


def gather_chosen(columns, positions):
    """Rank of the chosen copy per request: ``columns[positions[i]][i]``.

    ``columns`` is the ``k`` per-position rank columns (the columnar
    placement view); ``positions`` the chosen position per request.
    """
    np = get_numpy()
    if np is None or not columns or not isinstance(
        columns[0], np.ndarray
    ):
        return [
            int(columns[int(position)][index])
            for index, position in enumerate(positions)
        ]
    stacked = np.stack(columns)
    return stacked[
        np.asarray(positions, dtype=np.int64),
        np.arange(stacked.shape[1], dtype=np.int64),
    ]


def bincount_ranks(ranks, size: int) -> List[int]:
    """Requests per device rank — bulk accounting for load counters."""
    np = get_numpy()
    if np is None or not isinstance(ranks, np.ndarray):
        totals = [0] * size
        for rank in ranks:
            totals[int(rank)] += 1
        return totals
    return [int(value) for value in np.bincount(ranks, minlength=size)]
