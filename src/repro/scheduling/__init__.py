"""Read scheduling: which of the ``k`` placed copies serves each read.

The placement layer answers *where copies live*; this package answers
*which copy serves a request*, which is what turns redundancy into
access-load balance under skewed (Zipf, flash-crowd) traffic.  Policies
live behind a registry mirroring ``placement.registry``:

    >>> from repro.scheduling import create
    >>> scheduler = create("power-of-two", ["a", "b", "c"], seed=7)
    >>> scheduler.choose(42, ("a", "c"))  # doctest: +SKIP
    0

See :mod:`repro.scheduling.base` for the scheduler contract,
:mod:`repro.scheduling.policies` for the online policies,
:mod:`repro.scheduling.water_filling` for the offline optimum baseline,
and :mod:`repro.scheduling.driver` for the strategy × scheduler ×
workload batch engine.
"""

from .base import ReadScheduler, record_schedule_batch
from .cache import LruCacheModel
from .driver import ScheduleOutcome, fractional_lower_bound, run_reads
from .policies import (
    LeastLoadedScheduler,
    PowerOfTwoScheduler,
    PrimaryScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from .registry import (
    SchedulerEntry,
    create,
    lookup,
    registered_schedulers,
    scheduler_names,
)
from .water_filling import (
    MAX_EXACT_DEVICES,
    WaterFillingScheduler,
    fractional_peak_bound,
)

__all__ = [
    "LeastLoadedScheduler",
    "LruCacheModel",
    "MAX_EXACT_DEVICES",
    "PowerOfTwoScheduler",
    "PrimaryScheduler",
    "RandomScheduler",
    "ReadScheduler",
    "RoundRobinScheduler",
    "ScheduleOutcome",
    "SchedulerEntry",
    "WaterFillingScheduler",
    "create",
    "fractional_lower_bound",
    "fractional_peak_bound",
    "lookup",
    "record_schedule_batch",
    "registered_schedulers",
    "run_reads",
    "scheduler_names",
]
