"""Batch driver: placement strategy × read scheduler × address stream.

:func:`run_reads` is the engine behind ``repro sched`` and the
request-balance bench.  It places each *distinct* address once through
the strategy's columnar ``place_many`` batch engine, expands the result
back to the full request stream (so ten million requests over ten
thousand blocks cost ten thousand placements), hands the columnar batch
to the scheduler, and reports per-device request/load deltas.

:func:`fractional_lower_bound` exposes the water-filling fractional
optimum for a stream without running any scheduler — what the bench
gates online peaks against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from .._compat import get_numpy
from ..exceptions import DeviceUnavailableError
from ..placement.base import BatchPlacement, ReplicationStrategy
from .base import ReadScheduler
from .water_filling import WaterFillingScheduler, fractional_peak_bound


@dataclass
class ScheduleOutcome:
    """What one :func:`run_reads` pass did to the device pool."""

    policy: str
    strategy: str
    requests: int
    positions: List[int]
    device_counts: Dict[str, int]
    device_loads: Dict[str, float]
    cache_hits: int = 0
    cache_misses: int = 0
    lower_bound: Optional[float] = None

    def shares(self) -> Dict[str, float]:
        """Fraction of requests each device served."""
        if not self.requests:
            return {device: 0.0 for device in self.device_counts}
        return {
            device: count / self.requests
            for device, count in self.device_counts.items()
        }

    def peak_count(self) -> int:
        """Requests on the busiest device."""
        return max(self.device_counts.values(), default=0)

    def peak_load(self) -> float:
        """Accumulated load on the most loaded device."""
        return max(self.device_loads.values(), default=0.0)

    def peak_share(self) -> float:
        """Request share of the busiest device."""
        return self.peak_count() / self.requests if self.requests else 0.0


def _expanded_placements(
    strategy: ReplicationStrategy,
    addresses,
    *,
    workers: Optional[int] = None,
) -> Tuple[Sequence[int], object]:
    """Place distinct addresses once; expand to the request stream.

    Returns ``(addresses, placements)`` ready for ``choose_many`` —
    columnar on the NumPy leg, per-request id-tuples on the pure leg.
    """
    np = get_numpy()
    if np is not None:
        stream = np.asarray(list(addresses) if not hasattr(addresses, "__len__")
                            else addresses, dtype=np.int64)
        if len(stream) == 0:
            return stream, []
        unique, inverse = np.unique(stream, return_inverse=True)
        batch = strategy.place_many(
            [int(address) for address in unique], workers=workers
        )
        columns = [
            np.asarray(column, dtype=np.int64)[inverse]
            for column in batch.columns
        ]
        return stream, BatchPlacement(batch.rank_ids, columns)
    stream = [int(address) for address in addresses]
    if not stream:
        return stream, []
    unique = sorted(set(stream))
    index = {address: i for i, address in enumerate(unique)}
    rows = strategy.place_many(unique, workers=workers).tuples()
    return stream, [rows[index[address]] for address in stream]


def run_reads(
    strategy: ReplicationStrategy,
    scheduler: ReadScheduler,
    addresses,
    *,
    workers: Optional[int] = None,
) -> ScheduleOutcome:
    """Schedule a whole read stream; report per-device deltas.

    The outcome counts only this run — schedulers carry state across
    runs, so deltas are taken against the counters at entry.
    """
    before_counts = scheduler.counts()
    before_loads = scheduler.loads()
    cache = scheduler.cache
    before_hits = cache.hits if cache is not None else 0
    before_misses = cache.misses if cache is not None else 0
    stream, placements = _expanded_placements(
        strategy, addresses, workers=workers
    )
    positions = scheduler.choose_many(stream, placements) if len(stream) else []
    device_counts = {
        device: count - before_counts.get(device, 0)
        for device, count in scheduler.counts().items()
    }
    device_loads = {
        device: load - before_loads.get(device, 0.0)
        for device, load in scheduler.loads().items()
    }
    lower_bound = (
        scheduler.last_lower_bound
        if isinstance(scheduler, WaterFillingScheduler)
        else None
    )
    outcome = ScheduleOutcome(
        policy=scheduler.name,
        strategy=strategy.name,
        requests=len(stream),
        positions=positions,
        device_counts=device_counts,
        device_loads=device_loads,
        cache_hits=(cache.hits - before_hits) if cache is not None else 0,
        cache_misses=(cache.misses - before_misses) if cache is not None else 0,
        lower_bound=lower_bound,
    )
    sink = obs.sink()
    if sink.enabled:
        registry = obs.metrics()
        registry.counter("sched.runs").add(1)
        for device in sorted(device_counts):
            registry.histogram("sched.device_requests").observe(
                device_counts[device]
            )
        if cache is not None:
            registry.counter("sched.cache.hits").add(outcome.cache_hits)
            registry.counter("sched.cache.misses").add(outcome.cache_misses)
        sink.emit(
            "sched.run",
            policy=scheduler.name,
            strategy=strategy.name,
            requests=outcome.requests,
            peak_count=outcome.peak_count(),
        )
    return outcome


def fractional_lower_bound(
    strategy: ReplicationStrategy,
    addresses,
    *,
    offline: Sequence[str] = (),
    workers: Optional[int] = None,
) -> Optional[float]:
    """Water-filling fractional optimum of the stream's peak load.

    Computed straight from per-block demands and copy sets — no
    schedule is realized.  ``None`` when the live pool exceeds the
    exact DP's device ceiling.

    Raises:
        DeviceUnavailableError: when some block's copies are all in
            ``offline``.
    """
    stream = [int(address) for address in addresses]
    demands: Dict[int, int] = {}
    for address in stream:
        demands[address] = demands.get(address, 0) + 1
    live = [
        spec.bin_id for spec in strategy.bins if spec.bin_id not in set(offline)
    ]
    bit_of = {device: bit for bit, device in enumerate(live)}
    if not demands:
        return 0.0
    blocks = sorted(demands)
    batch = strategy.place_many(blocks, workers=workers)
    masks: List[int] = []
    for block, row in zip(blocks, batch.tuples()):
        mask = 0
        for device in row:
            bit = bit_of.get(device)
            if bit is not None:
                mask |= 1 << bit
        if not mask:
            raise DeviceUnavailableError(
                f"block {block}: all {len(row)} copy devices are offline"
            )
        masks.append(mask)
    return fractional_peak_bound(
        [demands[block] for block in blocks], masks, len(live)
    )
