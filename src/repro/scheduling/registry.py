"""Name → read-scheduler factory, mirroring ``placement.registry``.

Everything that takes a read policy by name — the CLI, the trace
player, the service client, the benches — resolves it here, so policy
names stay consistent across layers and ablations can sweep
``scheduler_names()`` without hard-coding a list.

The surface deliberately matches the placement registry's: ``lookup``
raises :class:`~repro.exceptions.ConfigurationError` listing canonical
names (aliases resolve but are not advertised as distinct policies),
``create(name, ..., **options)`` validates keyword options against each
entry's typed :class:`~repro.options.OptionSpec` schema, and
``scheduler_names()`` / ``registered_schedulers()`` sweep without
duplicates.  Only the randomised policies declare a ``namespace``
option (it salts their draws); deterministic policies declare none, so
passing options to them is a configuration error, same as on the
placement side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..options import OptionSpec, resolve_options
from .base import ReadScheduler
from .cache import LruCacheModel
from .policies import (
    LeastLoadedScheduler,
    PowerOfTwoScheduler,
    PrimaryScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from .water_filling import WaterFillingScheduler

#: Shared schema fragment for the policies whose draws are salted.
_NAMESPACE_OPTION = OptionSpec(
    "namespace",
    "str",
    default="",
    doc="salt prefix isolating this policy's hash draws from others",
)


@dataclass(frozen=True)
class SchedulerEntry:
    """One registered scheduling policy."""

    name: str
    factory: Callable[..., ReadScheduler]
    summary: str
    online: bool = True
    aliases: Tuple[str, ...] = field(default_factory=tuple)
    #: Typed schema of the policy's extra constructor parameters; empty
    #: means ``create`` accepts no keyword options for this entry.
    options: Tuple[OptionSpec, ...] = field(default=())

    def build(
        self,
        device_ids: Sequence[str],
        *,
        seed: int = 0,
        cache: Optional[LruCacheModel] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> ReadScheduler:
        """Instantiate the policy over ``device_ids``.

        ``options`` are validated against :attr:`options` (defaults
        filled) before the factory runs; see
        :func:`repro.options.resolve_options` for the error contract.
        """
        resolved = resolve_options(
            self.options, options, f"policy {self.name!r}"
        )
        return self.factory(device_ids, seed=seed, cache=cache, **resolved)


_ENTRIES: Tuple[SchedulerEntry, ...] = (
    SchedulerEntry(
        name="primary",
        factory=PrimaryScheduler,
        summary="always the first available copy (ablation baseline)",
        aliases=("first",),
    ),
    SchedulerEntry(
        name="random",
        factory=RandomScheduler,
        summary="seeded uniform draw over the available copies",
        options=(_NAMESPACE_OPTION,),
    ),
    SchedulerEntry(
        name="round-robin",
        factory=RoundRobinScheduler,
        summary="per-address rotation over the available copies",
        aliases=("rotate", "round_robin"),
        options=(_NAMESPACE_OPTION,),
    ),
    SchedulerEntry(
        name="least-loaded",
        factory=LeastLoadedScheduler,
        summary="the copy on the device with the least accumulated load",
        aliases=("least_loaded", "ll"),
    ),
    SchedulerEntry(
        name="power-of-two",
        factory=PowerOfTwoScheduler,
        summary="two seeded candidates, route to the less loaded",
        aliases=("po2", "power_of_two", "power-of-two-choices"),
        options=(_NAMESPACE_OPTION,),
    ),
    SchedulerEntry(
        name="water-filling",
        factory=WaterFillingScheduler,
        summary="offline optimum baseline (whole stream, batch only)",
        online=False,
        aliases=("wf", "water_filling"),
    ),
)

_BY_NAME: Dict[str, SchedulerEntry] = {}
for _entry in _ENTRIES:
    _BY_NAME[_entry.name] = _entry
    for _alias in _entry.aliases:
        _BY_NAME[_alias] = _entry


def lookup(name: str) -> SchedulerEntry:
    """The registry entry for ``name`` (canonical or alias).

    Raises:
        ConfigurationError: for an unregistered name, listing the
            canonical policy names (each once — aliases resolve but are
            not advertised as distinct policies).
    """
    entry = _BY_NAME.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; choose from "
            f"{sorted(scheduler_names())}"
        )
    return entry


def create(
    name: str,
    device_ids: Sequence[str],
    *,
    seed: int = 0,
    cache: Optional[LruCacheModel] = None,
    **options: Any,
) -> ReadScheduler:
    """Build the policy registered under ``name`` over ``device_ids``.

    Keyword options beyond ``seed``/``cache`` are validated against the
    entry's typed schema, exactly like the placement registry's
    ``create`` — unknown names, unknown option keys and ill-typed values
    all raise :class:`~repro.exceptions.ConfigurationError`.
    """
    return lookup(name).build(
        device_ids, seed=seed, cache=cache, options=options
    )


def scheduler_names(
    *, include_aliases: bool = False, online_only: bool = False
) -> Tuple[str, ...]:
    """Registered policy names, in registration order.

    Sweeps must iterate the default alias-free form: every canonical
    name appears exactly once, so no policy runs twice under two
    spellings.
    """
    names = []
    for entry in _ENTRIES:
        if online_only and not entry.online:
            continue
        names.append(entry.name)
        if include_aliases:
            names.extend(entry.aliases)
    return tuple(names)


def registered_schedulers() -> Tuple[SchedulerEntry, ...]:
    """All registry entries, in registration order."""
    return _ENTRIES
