"""Name → read-scheduler factory, mirroring ``placement.registry``.

Everything that takes a read policy by name — the CLI, the trace
player, the service client, the benches — resolves it here, so policy
names stay consistent across layers and ablations can sweep
``scheduler_names()`` without hard-coding a list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .base import ReadScheduler
from .cache import LruCacheModel
from .policies import (
    LeastLoadedScheduler,
    PowerOfTwoScheduler,
    PrimaryScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from .water_filling import WaterFillingScheduler


@dataclass(frozen=True)
class SchedulerEntry:
    """One registered scheduling policy."""

    name: str
    factory: Callable[..., ReadScheduler]
    summary: str
    online: bool = True
    aliases: Tuple[str, ...] = field(default_factory=tuple)

    def build(
        self,
        device_ids: Sequence[str],
        *,
        seed: int = 0,
        cache: Optional[LruCacheModel] = None,
    ) -> ReadScheduler:
        """Instantiate the policy over ``device_ids``."""
        return self.factory(device_ids, seed=seed, cache=cache)


_ENTRIES: Tuple[SchedulerEntry, ...] = (
    SchedulerEntry(
        name="primary",
        factory=PrimaryScheduler,
        summary="always the first available copy (ablation baseline)",
        aliases=("first",),
    ),
    SchedulerEntry(
        name="random",
        factory=RandomScheduler,
        summary="seeded uniform draw over the available copies",
    ),
    SchedulerEntry(
        name="round-robin",
        factory=RoundRobinScheduler,
        summary="per-address rotation over the available copies",
        aliases=("rotate", "round_robin"),
    ),
    SchedulerEntry(
        name="least-loaded",
        factory=LeastLoadedScheduler,
        summary="the copy on the device with the least accumulated load",
        aliases=("least_loaded", "ll"),
    ),
    SchedulerEntry(
        name="power-of-two",
        factory=PowerOfTwoScheduler,
        summary="two seeded candidates, route to the less loaded",
        aliases=("po2", "power_of_two", "power-of-two-choices"),
    ),
    SchedulerEntry(
        name="water-filling",
        factory=WaterFillingScheduler,
        summary="offline optimum baseline (whole stream, batch only)",
        online=False,
        aliases=("wf", "water_filling"),
    ),
)

_BY_NAME: Dict[str, SchedulerEntry] = {}
for _entry in _ENTRIES:
    _BY_NAME[_entry.name] = _entry
    for _alias in _entry.aliases:
        _BY_NAME[_alias] = _entry


def lookup(name: str) -> SchedulerEntry:
    """The registry entry for ``name`` (canonical or alias).

    Raises:
        ConfigurationError: for an unregistered name, listing the
            canonical policy names.
    """
    entry = _BY_NAME.get(name)
    if entry is None:
        known = ", ".join(sorted(entry.name for entry in _ENTRIES))
        raise ConfigurationError(
            f"unknown read-scheduling policy {name!r}; registered: {known}"
        )
    return entry


def create(
    name: str,
    device_ids: Sequence[str],
    *,
    seed: int = 0,
    cache: Optional[LruCacheModel] = None,
) -> ReadScheduler:
    """Build the policy registered under ``name`` over ``device_ids``."""
    return lookup(name).build(device_ids, seed=seed, cache=cache)


def scheduler_names(
    *, include_aliases: bool = False, online_only: bool = False
) -> Tuple[str, ...]:
    """Registered policy names, in registration order."""
    names = []
    for entry in _ENTRIES:
        if online_only and not entry.online:
            continue
        names.append(entry.name)
        if include_aliases:
            names.extend(entry.aliases)
    return tuple(names)


def registered_schedulers() -> Tuple[SchedulerEntry, ...]:
    """All registry entries, in registration order."""
    return _ENTRIES
