"""Per-device LRU cache model for read scheduling.

A real storage device answers a hot block from DRAM long before the
platter or flash channel gets involved, which is exactly why hot-spot
traffic is dangerous: the *first* device to absorb a hot block keeps
absorbing it cheaply, while a scheduler that naively spreads the block
over all ``k`` copies pays the miss cost ``k`` times and trashes every
cache.  :class:`LruCacheModel` makes that trade-off visible to the
load-aware policies: serving a request costs :attr:`hit_cost` when the
address is already resident on the serving device and :attr:`miss_cost`
when it is not (after which it becomes resident, possibly evicting the
least-recently-used block).

The model is deterministic — an ``OrderedDict`` per device, no clocks,
no randomness — so scheduler runs that consult it stay bit-reproducible.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from ..exceptions import ConfigurationError


class LruCacheModel:
    """Per-device LRU block cache with hit/miss service costs.

    Attributes:
        capacity: Blocks each device can keep resident.
        hit_cost: Load units a cache hit adds to the serving device.
        miss_cost: Load units a miss adds (the device also admits the
            block, evicting its LRU entry when full).
    """

    def __init__(
        self,
        capacity: int,
        *,
        hit_cost: float = 0.25,
        miss_cost: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        if hit_cost < 0 or miss_cost <= 0:
            raise ConfigurationError(
                "cache costs need hit_cost >= 0 and miss_cost > 0"
            )
        if hit_cost > miss_cost:
            raise ConfigurationError(
                "a cache hit cannot cost more than a miss"
            )
        self.capacity = capacity
        self.hit_cost = hit_cost
        self.miss_cost = miss_cost
        self._resident: Dict[str, "OrderedDict[int, None]"] = {}
        self.hits = 0
        self.misses = 0
        self._device_hits: Dict[str, int] = {}
        self._device_misses: Dict[str, int] = {}

    def cost(self, device_id: str, address: int) -> float:
        """Serve ``address`` from ``device_id``; return the load cost.

        Updates recency on a hit; admits the block (evicting LRU) on a
        miss.
        """
        resident = self._resident.get(device_id)
        if resident is None:
            resident = self._resident[device_id] = OrderedDict()
        if address in resident:
            resident.move_to_end(address)
            self.hits += 1
            self._device_hits[device_id] = (
                self._device_hits.get(device_id, 0) + 1
            )
            return self.hit_cost
        self.misses += 1
        self._device_misses[device_id] = (
            self._device_misses.get(device_id, 0) + 1
        )
        resident[address] = None
        if len(resident) > self.capacity:
            resident.popitem(last=False)
        return self.miss_cost

    def resident_on(self, device_id: str) -> int:
        """Blocks currently resident on ``device_id``."""
        resident = self._resident.get(device_id)
        return len(resident) if resident else 0

    def hit_rate(self) -> float:
        """Overall hit fraction (0.0 before any access)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def device_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-device ``{"hits": ..., "misses": ...}`` counters."""
        devices = set(self._device_hits) | set(self._device_misses)
        return {
            device_id: {
                "hits": self._device_hits.get(device_id, 0),
                "misses": self._device_misses.get(device_id, 0),
            }
            for device_id in sorted(devices)
        }

    def reset(self) -> None:
        """Drop all residency and counters."""
        self._resident.clear()
        self._device_hits.clear()
        self._device_misses.clear()
        self.hits = 0
        self.misses = 0
