"""The online read-scheduling policies.

Five policies, in increasing order of load awareness:

* :class:`PrimaryScheduler` — always the first available copy position;
  the ablation baseline that shows what *not* choosing costs.
* :class:`RandomScheduler` — a seeded uniform draw over the available
  copies; stateless per block, the classic "spread it" answer.
* :class:`RoundRobinScheduler` — per-address rotation over the available
  copies; deterministic spreading without load feedback.
* :class:`LeastLoadedScheduler` — the available copy whose device has
  the smallest accumulated load; full feedback, global knowledge.
* :class:`PowerOfTwoScheduler` — two seeded candidate draws, route to
  the less loaded; the classic Azar et al. result that two choices get
  exponentially close to least-loaded at a fraction of the information.

Batch engines: ``random``, ``round-robin`` and ``primary`` choices do
not depend on load feedback, so with NumPy installed (and every copy
device online) they vectorize outright via the
:mod:`repro.scheduling.kernels` draw/occurrence kernels, with bulk load
accounting.  ``least-loaded`` and ``power-of-two`` are sequential by
nature — each choice changes the loads the next one reads — so their
batch engines precompute the per-request hash draws vectorized and run
a tight scalar feedback loop over rank columns.  Every engine is
bit-for-bit identical to its scalar :meth:`~ReadScheduler.choose` loop;
without NumPy all policies fall back to that loop, mirroring how the
placement strategies treat their pure leg.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .._compat import get_numpy
from ..exceptions import DeviceUnavailableError
from ..hashing.primitives import derive_base, u64_from_base, u64s_from_base
from .base import ReadScheduler
from .cache import LruCacheModel
from . import kernels

_MASK64 = (1 << 64) - 1


class PrimaryScheduler(ReadScheduler):
    """Always read copy position 0 (first *available* position)."""

    name = "primary"

    def _pick(self, address, ranks, available):
        return available[0]

    def _choose_many(self, addresses, placements):
        np = get_numpy()
        if np is None or self._has_offline():
            return super()._choose_many(addresses, placements)
        columns, copies = self._rank_columns(placements)
        if not copies:
            return []
        positions = np.zeros(len(addresses), dtype=np.int64)
        self._bulk_commit(addresses, columns, positions)
        return [0] * len(addresses)


class RandomScheduler(ReadScheduler):
    """Seeded uniform choice over the available copies."""

    name = "random"

    def _pick(self, address, ranks, available):
        draw = u64_from_base(self._draw_base, self._sequence)
        return available[draw % len(available)]

    def _choose_many(self, addresses, placements):
        np = get_numpy()
        if np is None:
            return super()._choose_many(addresses, placements)
        count = len(addresses)
        columns, copies = self._rank_columns(placements)
        if not copies:
            return []
        draws = kernels.draw_column(self._draw_base, self._sequence, count)
        if not self._has_offline():
            positions = kernels.mod_positions(draws, copies)
            self._bulk_commit(addresses, columns, positions)
            return [int(position) for position in positions]
        # Offline devices shrink the candidate set per request; mirror the
        # scalar walk with the draws precomputed.
        cols = [column.tolist() for column in columns]
        draw_list = draws.tolist()
        available_by_rank = self._available
        positions: List[int] = []
        for index in range(count):
            candidates = [
                position
                for position in range(copies)
                if available_by_rank[cols[position][index]]
            ]
            if not candidates:
                raise DeviceUnavailableError(
                    f"block {int(addresses[index])}: all {copies} copy "
                    f"devices are offline"
                )
            position = candidates[draw_list[index] % len(candidates)]
            self._commit(int(addresses[index]), cols[position][index])
            positions.append(position)
        return positions


class RoundRobinScheduler(ReadScheduler):
    """Per-address rotation over the available copies.

    The ``t``-th read of a block goes to available position
    ``(phase(address) + t) mod m``, where ``phase`` is a seeded
    per-address hash draw.  Successive reads of a hot block alternate
    over its copies (the point of rotating), while the *starting* copy
    is decorrelated from position 0 — some placement strategies
    (redundant share among them) bias position 0 toward big devices, and
    a phase-0 rotation would hand every block's odd leftover read to
    them.  All phase arithmetic is 64-bit (wrapping), so the scalar and
    vectorized engines agree exactly.
    """

    name = "round-robin"

    def __init__(
        self,
        device_ids: Sequence[str],
        *,
        seed: int = 0,
        cache: Optional[LruCacheModel] = None,
        namespace: str = "",
    ) -> None:
        super().__init__(device_ids, seed=seed, cache=cache, namespace=namespace)
        self._rotation: Dict[int, int] = {}
        self._phase_base = derive_base("sched", self._namespace, "phase", seed)

    def _pick(self, address, ranks, available):
        count = self._rotation.get(address, 0)
        self._rotation[address] = count + 1
        phase = u64_from_base(self._phase_base, address)
        return available[((phase + count) & _MASK64) % len(available)]

    def reset(self) -> None:
        super().reset()
        self._rotation.clear()

    def _choose_many(self, addresses, placements):
        np = get_numpy()
        if np is None or self._has_offline():
            return super()._choose_many(addresses, placements)
        count = len(addresses)
        columns, copies = self._rank_columns(placements)
        if not copies:
            return []
        arr = np.asarray(addresses, dtype=np.int64)
        occurrence = kernels.cumcount(arr)
        unique, inverse, per_unique = np.unique(
            arr, return_inverse=True, return_counts=True
        )
        rotation = self._rotation
        phase_unique = u64s_from_base(self._phase_base, unique)
        prior_unique = np.fromiter(
            (rotation.get(int(address), 0) for address in unique),
            dtype=np.uint64,
            count=len(unique),
        )
        counters = (
            phase_unique[inverse]
            + prior_unique[inverse]
            + occurrence.astype(np.uint64)
        )
        positions = (counters % np.uint64(copies)).astype(np.int64)
        for address, prior, extra in zip(unique, prior_unique, per_unique):
            rotation[int(address)] = int(prior) + int(extra)
        self._bulk_commit(addresses, columns, positions)
        return [int(position) for position in positions]


class LeastLoadedScheduler(ReadScheduler):
    """The available copy on the device with the least accumulated load.

    Ties break on the lower copy position, keeping choices a pure
    function of the load state.
    """

    name = "least-loaded"

    def _pick(self, address, ranks, available):
        loads = self._loads
        best_position = available[0]
        best_load = loads[ranks[best_position]]
        for position in available[1:]:
            load = loads[ranks[position]]
            if load < best_load:
                best_load = load
                best_position = position
        return best_position

    def _choose_many(self, addresses, placements):
        np = get_numpy()
        if np is None:
            return super()._choose_many(addresses, placements)
        columns, copies = self._rank_columns(placements)
        if not copies:
            return []
        # The load feedback loop is inherently sequential; run it over
        # plain int columns (the vector win is the columnar setup plus
        # draw-free choices — no hashing, no tuple building per request).
        cols = [column.tolist() for column in columns]
        loads = self._loads
        available = self._available
        positions: List[int] = []
        for index in range(len(addresses)):
            best_position = -1
            best_rank = -1
            best_load = float("inf")
            for position in range(copies):
                rank = cols[position][index]
                if not available[rank]:
                    continue
                load = loads[rank]
                if load < best_load:
                    best_load = load
                    best_position = position
                    best_rank = rank
            if best_position < 0:
                raise DeviceUnavailableError(
                    f"block {int(addresses[index])}: all {copies} copy "
                    f"devices are offline"
                )
            self._commit(int(addresses[index]), best_rank)
            positions.append(best_position)
        return positions


class PowerOfTwoScheduler(ReadScheduler):
    """Two seeded candidate draws; the less-loaded candidate serves.

    Ties (including both draws landing on the same copy) break on the
    lower copy position.  With one available copy the draw is skipped —
    the choice is forced.
    """

    name = "power-of-two"

    def __init__(
        self,
        device_ids: Sequence[str],
        *,
        seed: int = 0,
        cache: Optional[LruCacheModel] = None,
        namespace: str = "",
    ) -> None:
        super().__init__(device_ids, seed=seed, cache=cache, namespace=namespace)
        self._second_base = derive_base("sched", self._namespace, "draw2", seed)

    def _pick(self, address, ranks, available):
        size = len(available)
        if size == 1:
            return available[0]
        first_draw = u64_from_base(self._draw_base, self._sequence)
        second_draw = u64_from_base(self._second_base, self._sequence)
        first_index = first_draw % size
        second_index = second_draw % (size - 1)
        if second_index >= first_index:
            second_index += 1
        first = available[first_index]
        second = available[second_index]
        loads = self._loads
        first_load = loads[ranks[first]]
        second_load = loads[ranks[second]]
        if second_load < first_load:
            return second
        if first_load < second_load:
            return first
        return first if first < second else second

    def _choose_many(self, addresses, placements):
        np = get_numpy()
        if np is None:
            return super()._choose_many(addresses, placements)
        count = len(addresses)
        columns, copies = self._rank_columns(placements)
        if not copies:
            return []
        first_draws = kernels.draw_column(
            self._draw_base, self._sequence, count
        ).tolist()
        second_draws = kernels.draw_column(
            self._second_base, self._sequence, count
        ).tolist()
        cols = [column.tolist() for column in columns]
        loads = self._loads
        available = self._available
        has_offline = self._has_offline()
        positions: List[int] = []
        all_positions = list(range(copies))
        for index in range(count):
            if has_offline:
                candidates = [
                    position
                    for position in all_positions
                    if available[cols[position][index]]
                ]
                if not candidates:
                    raise DeviceUnavailableError(
                        f"block {int(addresses[index])}: all {copies} copy "
                        f"devices are offline"
                    )
            else:
                candidates = all_positions
            size = len(candidates)
            if size == 1:
                position = candidates[0]
            else:
                first_index = first_draws[index] % size
                second_index = second_draws[index] % (size - 1)
                if second_index >= first_index:
                    second_index += 1
                first = candidates[first_index]
                second = candidates[second_index]
                first_load = loads[cols[first][index]]
                second_load = loads[cols[second][index]]
                if second_load < first_load:
                    position = second
                elif first_load < second_load:
                    position = first
                else:
                    position = first if first < second else second
            self._commit(int(addresses[index]), cols[position][index])
            positions.append(position)
        return positions
