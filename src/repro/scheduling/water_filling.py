"""Offline water-filling baseline: the hindsight-optimal schedule.

Every online policy answers "which copy?" with partial information.  The
water-filling baseline answers it with *all* the information: given the
whole request stream up front, it pours each block's demand onto its
least-loaded available copies, highest-demand blocks first, which is the
classic water-filling construction for minimising the peak device load
subject to the placement's copy sets.

Two artefacts come out of a run:

* an actual schedule (so the baseline plugs into the same bench tables
  and invariant suites as the online policies), and
* :attr:`WaterFillingScheduler.last_lower_bound` — the *fractional*
  optimum, computed exactly: for every subset ``S`` of available
  devices, the demand of blocks whose available copies all lie inside
  ``S`` must be served by ``S``, so ``demand(S) / |S|`` lower-bounds the
  peak of any schedule, fractional or not.  The max over subsets is
  tight for the fractional relaxation (max-flow/min-cut on the
  block→device bipartite graph).  The subset enumeration is a
  subset-sum DP over ``2^n`` masks, guarded to pools of at most
  :data:`MAX_EXACT_DEVICES` devices — beyond that the bound is ``None``
  and callers fall back to comparing against the realized schedule.

The statistical suites compare online peaks against the fractional
bound because the inequality ``online peak >= fractional optimum`` is a
theorem, not a tendency — the assertion can never flake.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError, DeviceUnavailableError
from .base import ReadScheduler

#: Pool size ceiling for the exact ``2^n`` fractional-bound DP.
MAX_EXACT_DEVICES = 16


def fractional_peak_bound(
    demands: Sequence[int],
    copyset_masks: Sequence[int],
    device_count: int,
) -> Optional[float]:
    """Exact fractional lower bound on the peak load of any schedule.

    Args:
        demands: Requests per distinct block.
        copyset_masks: Bitmask (over ``device_count`` bits) of the
            devices allowed to serve each block, aligned with
            ``demands``.
        device_count: Devices in the pool (bit width of the masks).

    Returns:
        ``max over masks S of demand(blocks with copyset ⊆ S) / |S|``,
        or ``None`` when ``device_count`` exceeds
        :data:`MAX_EXACT_DEVICES`.
    """
    if device_count > MAX_EXACT_DEVICES:
        return None
    if device_count == 0 or not demands:
        return 0.0
    size = 1 << device_count
    contained = [0] * size
    for demand, mask in zip(demands, copyset_masks):
        contained[mask] += demand
    # Subset-sum (SOS) DP: after processing bit b, contained[S] holds the
    # demand of all copysets that are subsets of S w.r.t. bits <= b.
    for bit in range(device_count):
        step = 1 << bit
        for mask in range(size):
            if mask & step:
                contained[mask] += contained[mask ^ step]
    best = 0.0
    for mask in range(1, size):
        total = contained[mask]
        if total:
            bound = total / mask.bit_count()
            if bound > best:
                best = bound
    return best


class WaterFillingScheduler(ReadScheduler):
    """Offline optimum baseline — needs the whole stream, so it only
    implements :meth:`choose_many`; per-request :meth:`choose` refuses.
    """

    name = "water-filling"
    online = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._last_bound: Optional[float] = None

    @property
    def last_lower_bound(self) -> Optional[float]:
        """Fractional optimum of the most recent :meth:`choose_many`
        batch (in isolation — prior load state is not folded in), or
        ``None`` when the pool was too large for the exact DP."""
        return self._last_bound

    def choose(self, address: int, placement: Sequence[str]) -> int:
        raise ConfigurationError(
            "water-filling is an offline baseline: it needs the whole "
            "request stream, use choose_many() (or pick an online policy)"
        )

    def _pick(self, address, ranks, available):  # pragma: no cover
        raise ConfigurationError("water-filling has no per-request pick")

    def _choose_many(self, addresses, placements) -> List[int]:
        rows = self._rows(placements)
        demands: Dict[int, int] = {}
        copy_ranks: Dict[int, Tuple[int, ...]] = {}
        for address, row in zip(addresses, rows):
            block = int(address)
            if block not in demands:
                demands[block] = 0
                copy_ranks[block] = tuple(
                    self.rank_of(device_id) for device_id in row
                )
            demands[block] += 1
        available_positions: Dict[int, List[int]] = {}
        for block, ranks in copy_ranks.items():
            positions = [
                position
                for position, rank in enumerate(ranks)
                if self._available[rank]
            ]
            if not positions:
                raise DeviceUnavailableError(
                    f"block {block}: all {len(ranks)} copy devices are "
                    f"offline"
                )
            available_positions[block] = positions
        self._last_bound = self._fractional_bound(
            demands, copy_ranks, available_positions
        )
        # Water-filling realization: highest-demand blocks first (ties on
        # the lower address), each request poured onto the least-loaded
        # available copy at that moment.
        working = list(self._loads)
        queues: Dict[int, "deque[int]"] = {}
        for block in sorted(demands, key=lambda b: (-demands[b], b)):
            ranks = copy_ranks[block]
            positions = available_positions[block]
            queue = queues[block] = deque()
            for _ in range(demands[block]):
                best_position = positions[0]
                best_load = working[ranks[best_position]]
                for position in positions[1:]:
                    load = working[ranks[position]]
                    if load < best_load:
                        best_load = load
                        best_position = position
                queue.append(best_position)
                working[ranks[best_position]] += 1.0
        positions_out: List[int] = []
        for address in addresses:
            block = int(address)
            position = queues[block].popleft()
            self._commit(block, copy_ranks[block][position])
            positions_out.append(position)
        return positions_out

    def _fractional_bound(
        self,
        demands: Dict[int, int],
        copy_ranks: Dict[int, Tuple[int, ...]],
        available_positions: Dict[int, List[int]],
    ) -> Optional[float]:
        live_ranks = [
            rank for rank in range(len(self._ids)) if self._available[rank]
        ]
        if len(live_ranks) > MAX_EXACT_DEVICES:
            return None
        bit_of = {rank: bit for bit, rank in enumerate(live_ranks)}
        blocks = sorted(demands)
        masks = []
        for block in blocks:
            ranks = copy_ranks[block]
            mask = 0
            for position in available_positions[block]:
                mask |= 1 << bit_of[ranks[position]]
            masks.append(mask)
        return fractional_peak_bound(
            [demands[block] for block in blocks], masks, len(live_ranks)
        )
