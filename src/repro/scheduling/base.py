"""Interfaces of the read-scheduling layer.

The paper guarantees *storage* fairness — x% of the capacity holds x% of
the data — but says nothing about *access load*: once ``k`` copies of a
block exist, the system gets to choose which copy serves each read, and
that choice decides whether a Zipf hot spot melts one device or spreads
over the replica set (Aktaş & Soljanin, "Controlling Data Access Load in
Distributed Systems").  A :class:`ReadScheduler` is that choice, made
explicit and pluggable:

* it is built over a device pool and keeps *online state* — per-device
  load counters, per-address rotation counters, an availability mask,
  an optional :class:`~repro.scheduling.cache.LruCacheModel`;
* :meth:`choose` maps one ``(address, placement)`` request to the copy
  position that serves it, never selecting a device marked offline;
* :meth:`choose_many` is the columnar batch form used by the
  million-request benches, element-wise identical to calling
  :meth:`choose` in a loop (the property suite pins this bit-for-bit on
  both the NumPy and pure-Python legs).

All randomness is derived, not sampled: policies draw
``u64_from_base(seed_base, sequence_number)`` per request, so a fixed
seed replays a workload bit-identically — the same discipline as the
placement strategies.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from .._compat import get_numpy
from ..exceptions import DeviceUnavailableError
from ..hashing.primitives import derive_base
from ..placement.base import BatchPlacement
from .cache import LruCacheModel
from . import kernels


def record_schedule_batch(
    sink: "obs.TraceSink", policy: str, batch_size: int
) -> None:
    """Record one ``choose_many`` invocation on an *enabled* sink.

    Shared by the default loop and the policies' batch overrides so the
    ``sched.batch`` event schema stays identical across engines (the
    leg-equivalence tests compare traces byte-wise).
    """
    registry = obs.metrics()
    registry.counter("sched.batches").add(1)
    registry.counter("sched.requests").add(batch_size)
    registry.counter(f"sched.policy.{policy}.requests").add(batch_size)
    registry.histogram("sched.batch_size").observe(batch_size)
    sink.emit("sched.batch", policy=policy, requests=batch_size)


class ReadScheduler(abc.ABC):
    """Selects which of the ``k`` placed copies serves each read."""

    #: Short machine-readable policy name (used in namespacing, the
    #: registry, and obs counter names).
    name: str = "scheduler"

    #: False for offline baselines (water-filling) that need the whole
    #: request stream and therefore only implement :meth:`choose_many`.
    online: bool = True

    def __init__(
        self,
        device_ids: Sequence[str],
        *,
        seed: int = 0,
        cache: Optional[LruCacheModel] = None,
        namespace: str = "",
    ) -> None:
        self._namespace = namespace or self.name
        self._seed = seed
        self._cache = cache
        self._ids: List[str] = []
        self._rank: Dict[str, int] = {}
        self._loads: List[float] = []
        self._counts: List[int] = []
        self._available: List[bool] = []
        self._offline_count = 0
        self._sequence = 0
        self._draw_base = derive_base("sched", self._namespace, "draw", seed)
        for device_id in device_ids:
            self.rank_of(device_id)

    # -- device pool -------------------------------------------------------

    @property
    def device_ids(self) -> List[str]:
        """Known devices, in registration order."""
        return list(self._ids)

    @property
    def seed(self) -> int:
        """Determinism seed all hash draws are keyed on."""
        return self._seed

    @property
    def cache(self) -> Optional[LruCacheModel]:
        """The device cache model consulted for service costs, if any."""
        return self._cache

    def rank_of(self, device_id: str) -> int:
        """Dense integer rank of ``device_id``, registering it if new.

        Dynamic registration keeps schedulers usable on growing clusters:
        a placement naming a device the scheduler has never seen simply
        extends the pool (online, zero load).
        """
        rank = self._rank.get(device_id)
        if rank is None:
            rank = len(self._ids)
            self._rank[device_id] = rank
            self._ids.append(device_id)
            self._loads.append(0.0)
            self._counts.append(0)
            self._available.append(True)
        return rank

    # -- availability ------------------------------------------------------

    def mark_offline(self, device_id: str) -> None:
        """Exclude a device from all future choices (until marked online)."""
        rank = self.rank_of(device_id)
        if self._available[rank]:
            self._available[rank] = False
            self._offline_count += 1

    def mark_online(self, device_id: str) -> None:
        """Return a device to the candidate pool."""
        rank = self.rank_of(device_id)
        if not self._available[rank]:
            self._available[rank] = True
            self._offline_count -= 1

    def is_available(self, device_id: str) -> bool:
        """True when the scheduler may route reads to ``device_id``."""
        return self._available[self.rank_of(device_id)]

    @property
    def offline(self) -> List[str]:
        """Sorted ids of devices currently excluded from choices."""
        return sorted(
            device_id
            for device_id, rank in self._rank.items()
            if not self._available[rank]
        )

    # -- load state --------------------------------------------------------

    def load_of(self, device_id: str) -> float:
        """Accumulated service cost routed to ``device_id``."""
        return self._loads[self.rank_of(device_id)]

    def count_of(self, device_id: str) -> int:
        """Requests routed to ``device_id``."""
        return self._counts[self.rank_of(device_id)]

    def loads(self) -> Dict[str, float]:
        """Per-device accumulated service cost."""
        return dict(zip(self._ids, self._loads))

    def counts(self) -> Dict[str, int]:
        """Per-device request totals."""
        return dict(zip(self._ids, self._counts))

    @property
    def requests(self) -> int:
        """Requests scheduled so far (the draw sequence number)."""
        return self._sequence

    def reset(self) -> None:
        """Clear loads, counters, rotation state and the cache model.

        Availability marks are kept — they describe the pool, not the
        run.
        """
        self._loads = [0.0] * len(self._ids)
        self._counts = [0] * len(self._ids)
        self._sequence = 0
        if self._cache is not None:
            self._cache.reset()

    # -- the scheduling contract -------------------------------------------

    def choose(self, address: int, placement: Sequence[str]) -> int:
        """Pick the copy position of ``placement`` that serves this read.

        Args:
            address: The block address being read.
            placement: The ordered device ids of the block's ``k`` copies
                (what ``strategy.place(address)`` returned).

        Returns:
            A 0-based position into ``placement`` whose device is
            available.

        Raises:
            DeviceUnavailableError: when every copy's device is offline.
        """
        address = int(address)  # normalize NumPy scalars for dict keys/hashes
        ranks = [self.rank_of(device_id) for device_id in placement]
        available = [
            position
            for position, rank in enumerate(ranks)
            if self._available[rank]
        ]
        if not available:
            raise DeviceUnavailableError(
                f"block {address}: all {len(placement)} copy devices "
                f"are offline ({list(placement)})"
            )
        position = self._pick(address, ranks, available)
        self._commit(address, ranks[position])
        return position

    def order(self, address: int, placement: Sequence[str]) -> List[int]:
        """Copy positions in preferred read order: the scheduled choice
        first, then the remaining positions ascending.

        The degraded-read path walks this order, falling back past the
        preferred copy when its share turns out to be missing.
        """
        chosen = self.choose(address, placement)
        return [chosen] + [
            position
            for position in range(len(placement))
            if position != chosen
        ]

    @abc.abstractmethod
    def _pick(
        self, address: int, ranks: Sequence[int], available: Sequence[int]
    ) -> int:
        """Policy decision: one of ``available`` (positions into
        ``ranks``/the placement).  Load/count/sequence bookkeeping is
        :meth:`_commit`'s job so batch engines can share it; policies may
        only advance their own per-address state here (e.g. the
        round-robin rotation counter)."""

    def _commit(self, address: int, rank: int) -> None:
        """Account one served request against device ``rank``."""
        if self._cache is None:
            self._loads[rank] += 1.0
        else:
            self._loads[rank] += self._cache.cost(self._ids[rank], address)
        self._counts[rank] += 1
        self._sequence += 1

    # -- batch engine ------------------------------------------------------

    def choose_many(
        self,
        addresses: Sequence[int],
        placements,
    ) -> List[int]:
        """Batch form of :meth:`choose`: one position per request.

        ``placements`` is either a sequence of per-request device-id
        tuples or a columnar :class:`~repro.placement.base.BatchPlacement`
        covering the same requests (what the driver builds by expanding
        a unique-address placement batch).  The result — and every load
        counter, rotation counter and cache transition — is bit-for-bit
        identical to calling :meth:`choose` per request in stream order.
        """
        count = len(addresses)
        positions = self._choose_many(addresses, placements)
        sink = obs.sink()
        if sink.enabled:
            record_schedule_batch(sink, self.name, count)
        return positions

    def _choose_many(self, addresses, placements) -> List[int]:
        """Default batch engine: the scalar loop.  Policies with a
        vectorized engine override this (not :meth:`choose_many`, which
        owns the obs record)."""
        return [
            self.choose(address, placement)
            for address, placement in zip(addresses, self._rows(placements))
        ]

    # -- batch helpers shared by the policy engines ------------------------

    @staticmethod
    def _rows(placements):
        """Per-request id-tuples view of either placement input form."""
        if isinstance(placements, BatchPlacement):
            return placements.tuples()
        return placements

    def _rank_columns(self, placements) -> Tuple[list, int]:
        """Columnar scheduler-rank view of either placement input form.

        Returns ``(columns, k)`` where ``columns[c][i]`` is the scheduler
        rank of copy ``c``'s device for request ``i`` — NumPy ``int64``
        columns on the fast leg, plain lists on the pure leg.
        """
        np = get_numpy()
        if isinstance(placements, BatchPlacement):
            table = [self.rank_of(device_id) for device_id in placements.rank_ids]
            if np is not None:
                lookup = np.asarray(table, dtype=np.int64)
                columns = [
                    lookup[np.asarray(column, dtype=np.int64)]
                    for column in placements.columns
                ]
            else:
                columns = [
                    [table[int(rank)] for rank in column]
                    for column in placements.columns
                ]
            return columns, placements.copies
        rows = list(placements)
        if not rows:
            return [], 0
        copies = len(rows[0])
        columns = [
            [self.rank_of(row[position]) for row in rows]
            for position in range(copies)
        ]
        if np is not None:
            columns = [np.asarray(column, dtype=np.int64) for column in columns]
        return columns, copies

    def _has_offline(self) -> bool:
        """True when any known device is excluded from choices."""
        return self._offline_count > 0

    def _bulk_commit(self, addresses, columns, positions) -> None:
        """Account a whole batch of choices.

        With no cache model the per-device totals update via one
        ``bincount`` (float adds of integer totals — identical to the
        per-request loop); with a cache the per-request loop runs because
        each cost depends on residency order.
        """
        chosen = kernels.gather_chosen(columns, positions)
        if self._cache is None:
            totals = kernels.bincount_ranks(chosen, len(self._ids))
            for rank, total in enumerate(totals):
                if total:
                    self._loads[rank] += float(total)
                    self._counts[rank] += total
            self._sequence += len(addresses)
            return
        for address, rank in zip(addresses, chosen):
            self._commit(int(address), int(rank))

    def describe(self) -> str:
        """One-line human-readable description."""
        cache = (
            f", cache={self._cache.capacity}" if self._cache is not None else ""
        )
        return f"{self.name}({len(self._ids)} devices, seed={self._seed}{cache})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"
