"""Plain-text report rendering shared by the CLI, benches and examples.

Nothing clever: fixed-width tables with a title banner, plus helpers for
formatting shares and fill levels consistently across all surfaces.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def render_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Format a fixed-width table with a title banner."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(column) for column in header]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = ["", f"=== {title} ==="]
    lines.append(
        "  ".join(name.ljust(width) for name, width in zip(header, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Render and print a table."""
    print(render_table(title, header, rows))


def format_percent(value: float, digits: int = 2) -> str:
    """``0.1234 -> '12.34%'``."""
    return f"{value * 100:.{digits}f}%"


def share_table(
    title: str,
    observed: Mapping[str, float],
    expected: Mapping[str, float],
) -> str:
    """Standard observed-vs-expected share table, sorted by key."""
    rows = []
    for key in sorted(set(observed) | set(expected)):
        rows.append(
            (
                key,
                format_percent(observed.get(key, 0.0)),
                format_percent(expected.get(key, 0.0)),
            )
        )
    return render_table(title, ["bin", "observed", "expected"], rows)
