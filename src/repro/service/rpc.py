"""Shared RPC machinery: the asyncio server base and client connection.

Requests and responses are dict envelopes over the
:mod:`~repro.service.protocol` framing::

    -> {"op": "where_is", "id": 7, "address": 42}
    <- {"ok": true,  "id": 7, "result": {"devices": ["store-2", ...]}}
    <- {"ok": false, "id": 7, "error": "BlockNotFoundError", "message": "..."}

Error envelopes carry the exception's *class name*; the client re-raises
the matching class from :mod:`repro.exceptions` (or a plain
:class:`~repro.exceptions.ServiceError` for names it does not know), so a
typed error raised server-side arrives as the same type client-side.

Every server owns a private :class:`~repro.obs.metrics.MetricsRegistry`
recording per-op request counters and a latency histogram; the built-in
``metrics`` op exports that registry's snapshot *plus* the process-wide
:func:`repro.obs.metrics` snapshot, so one RPC shows both the service
traffic and whatever the placement layer recorded underneath it (batch
sizes, kernel counters, precompute hits).  Trace events go through the
normal :mod:`repro.obs` sink and stay zero-cost while disabled.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from .. import exceptions as _exceptions
from .. import obs
from ..exceptions import (
    BadFrameError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
)
from ..obs.metrics import MetricsRegistry
from .protocol import MAX_FRAME_BYTES, read_frame, write_frame

Handler = Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]

#: Latency buckets in milliseconds — sub-millisecond localhost RPCs up
#: to multi-second stragglers.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


def require(request: Dict[str, Any], key: str) -> Any:
    """Fetch a required request parameter.

    Raises:
        BadFrameError: when the parameter is missing — the caller built a
            structurally invalid request, not a failing operation.
    """
    try:
        return request[key]
    except KeyError:
        raise BadFrameError(
            f"request {request.get('op')!r} is missing required "
            f"parameter {key!r}"
        ) from None


class RpcServer:
    """An asyncio TCP server dispatching envelope requests to handlers.

    Subclasses set :attr:`kind` (the metrics/trace prefix) and register
    coroutine handlers in ``self._handlers``; ``ping`` and ``metrics``
    are provided here so every server is probeable and observable the
    same way.
    """

    kind = "rpc"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._max_frame_bytes = max_frame_bytes
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.StreamWriter]" = set()
        self.registry = MetricsRegistry()
        self._handlers: Dict[str, Handler] = {
            "ping": self._op_ping,
            "metrics": self._op_metrics,
        }

    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (the OS-assigned one when constructed with 0).

        Raises:
            ServiceError: before :meth:`start`.
        """
        if self._server is None:
            raise ServiceError(f"{self.kind} server is not running")
        sockets = self._server.sockets or []
        return sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` of the running server."""
        return (self._host, self.port)

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._server is not None

    async def start(self) -> "RpcServer":
        """Bind and begin accepting connections; returns ``self``."""
        if self._server is not None:
            raise ServiceError(f"{self.kind} server is already running")
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port
        )
        if obs.enabled():
            obs.sink().emit(
                f"{self.kind}.started", host=self._host, port=self.port
            )
        return self

    async def stop(self) -> None:
        """Stop accepting connections and close the listening socket.

        In-flight connections are closed too, so their handlers unwind
        before the event loop goes away.
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        for writer in list(self._connections):
            writer.close()
        await server.wait_closed()
        # Give handler coroutines one scheduling round to observe EOF.
        await asyncio.sleep(0)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.registry.counter(f"{self.kind}.connections").add(1)
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, max_frame_bytes=self._max_frame_bytes
                    )
                except BadFrameError as error:
                    # The stream is no longer frame-aligned; report the
                    # typed error once and hang up.
                    self.registry.counter(f"{self.kind}.bad_frames").add(1)
                    try:
                        await write_frame(
                            writer,
                            {
                                "ok": False,
                                "error": type(error).__name__,
                                "message": str(error),
                            },
                        )
                    except (ConnectionError, OSError):
                        pass
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                try:
                    await write_frame(
                        writer,
                        response,
                        max_frame_bytes=self._max_frame_bytes,
                    )
                except (ConnectionError, OSError):
                    return
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform
                pass

    async def _dispatch(self, request: Any) -> Dict[str, Any]:
        """Route one request envelope; never raises."""
        request_id = request.get("id") if isinstance(request, dict) else None
        envelope: Dict[str, Any] = {"id": request_id}
        started = time.perf_counter()
        op = request.get("op") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict) or not isinstance(op, str):
                raise BadFrameError(
                    "request must be an object with a string 'op' field"
                )
            handler = self._handlers.get(op)
            if handler is None:
                raise BadFrameError(
                    f"unknown op {op!r}; this {self.kind} serves "
                    f"{sorted(self._handlers)}"
                )
            result = await handler(request)
            envelope.update(ok=True, result=result)
        except ReproError as error:
            envelope.update(
                ok=False, error=type(error).__name__, message=str(error)
            )
            self.registry.counter(f"{self.kind}.errors").add(1)
        except Exception as error:  # invariant breakage, not a client fault
            envelope.update(
                ok=False, error="ServiceError",
                message=f"internal error: {type(error).__name__}: {error}",
            )
            self.registry.counter(f"{self.kind}.errors").add(1)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        label = op if isinstance(op, str) else "invalid"
        self.registry.counter(f"{self.kind}.requests").add(1)
        self.registry.counter(f"{self.kind}.requests.{label}").add(1)
        self.registry.histogram(
            f"{self.kind}.request_ms", LATENCY_BUCKETS_MS
        ).observe(elapsed_ms)
        if obs.enabled():
            obs.sink().emit(
                f"{self.kind}.request",
                op=label,
                ok=envelope.get("ok", False),
                ms=round(elapsed_ms, 3),
            )
        return envelope

    async def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "kind": self.kind}

    async def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "service": self.registry.snapshot(),
            "process": obs.metrics().snapshot(),
        }


class RpcConnection:
    """One client connection to an :class:`RpcServer`.

    Serialises calls (one outstanding request per connection — callers
    wanting concurrency open several connections, as the bench does) and
    converts transport failures and error envelopes into typed
    exceptions.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self._max_frame_bytes = max_frame_bytes
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0
        self._lock = asyncio.Lock()

    @classmethod
    async def open(
        cls, host: str, port: int, *, max_frame_bytes: int = MAX_FRAME_BYTES
    ) -> "RpcConnection":
        """Connect and return a ready connection."""
        connection = cls(host, port, max_frame_bytes=max_frame_bytes)
        await connection._connect()
        return connection

    async def _connect(self) -> None:
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except (ConnectionError, OSError) as error:
            raise ServiceUnavailableError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from None

    @property
    def connected(self) -> bool:
        """True while the transport is open."""
        return self._writer is not None

    async def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """Invoke ``op`` and return the result dict.

        Raises:
            ServiceUnavailableError: the transport failed (connect,
                send, or receive) — the server is gone, not wrong.
            ReproError subclasses: whatever typed error the server
                reported, reconstructed by class name.
        """
        async with self._lock:
            if self._writer is None:
                await self._connect()
            self._next_id += 1
            request = dict(params, op=op, id=self._next_id)
            try:
                await write_frame(
                    self._writer, request,
                    max_frame_bytes=self._max_frame_bytes,
                )
                response = await read_frame(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
            except (ConnectionError, OSError) as error:
                await self.close()
                raise ServiceUnavailableError(
                    f"{self.host}:{self.port} failed mid-call "
                    f"({op}): {error}"
                ) from None
            if response is None:
                await self.close()
                raise ServiceUnavailableError(
                    f"{self.host}:{self.port} closed the connection "
                    f"during {op!r}"
                )
        if not isinstance(response, dict):
            raise BadFrameError("response envelope must be an object")
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        raise self._error_from(response)

    def _error_from(self, response: Dict[str, Any]) -> ReproError:
        """Rebuild the typed exception named in an error envelope."""
        name = response.get("error", "ServiceError")
        message = response.get("message", "unspecified service error")
        error_class = getattr(_exceptions, str(name), None)
        if not (
            isinstance(error_class, type)
            and issubclass(error_class, ReproError)
        ):
            error_class = ServiceError
        try:
            return error_class(message)
        except TypeError:
            # Errors with structured constructors (RepairTimeoutError)
            # degrade to the service base class rather than failing.
            return ServiceError(f"{name}: {message}")

    async def close(self) -> None:
        """Close the transport (idempotent)."""
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform
                pass
