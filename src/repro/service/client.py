"""Service client: write ``k`` copies, read with degraded fallback.

:class:`ServiceClient` is the storage-frontend side of the service.  It
bootstraps from the metastore's ``config`` (replication degree plus the
device-id → blockstore-endpoint map), asks ``where_is``/``where_are``
for placements, and moves payloads with the same degradation semantics
as the in-process recovery layer
(:func:`repro.chaos.recovery.degraded_read`):

* **Write** — put the payload to all ``k`` copy positions.  Unreachable
  blockstores are *skipped, not fatal*: the write succeeds while at
  least one copy lands, and the receipt reports which positions were
  degraded so callers (and the chaos suite) can count exposure.
* **Read** — ask a pluggable :mod:`repro.scheduling` policy which copy
  position to try first (``read_policy="primary"`` reproduces the plain
  ``0..k-1`` walk; ``"power-of-two"`` or ``"least-loaded"`` spread hot
  blocks over their replicas), falling back across the remaining
  positions when a blockstore is unreachable, the share is missing
  (lost in a crash), or its checksum fails.  Connection-level failures
  mark the device offline in the scheduler so subsequent reads route
  around it; a successful call marks it back online.  Only when every
  position is exhausted does the read raise
  :class:`~repro.exceptions.ServiceUnavailableError`.

Checksums are verified end-to-end: the client re-hashes every fetched
payload against the server-reported digest, so a corrupt frame or shard
can never silently satisfy a read.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import (
    BlockNotFoundError,
    ChecksumMismatchError,
    ConfigurationError,
    DeviceUnavailableError,
    ServiceError,
    ServiceUnavailableError,
)
from ..scheduling import registry as sched_registry
from .blockstore import checksum, decode_payload, encode_payload
from .rpc import RpcConnection


@dataclass
class WriteReceipt:
    """What one replicated write achieved.

    Attributes:
        address: The block address written.
        devices: The full placement (one device id per copy position).
        positions_written: Copy positions whose blockstore acknowledged.
        positions_skipped: Positions skipped because their blockstore
            was unreachable — the write-side degradation measure.
        checksum: SHA-256 digest of the payload.
    """

    address: int
    devices: List[str]
    positions_written: List[int]
    positions_skipped: List[int]
    checksum: str

    @property
    def fully_replicated(self) -> bool:
        """True when every copy position acknowledged the write."""
        return not self.positions_skipped


@dataclass
class ServiceReadResult:
    """What a (possibly degraded) service read saw.

    Mirrors :class:`repro.chaos.recovery.DegradedReadResult`: ``payload``
    plus which copy positions had to be skipped before one served.
    """

    payload: bytes
    position_used: int
    positions_skipped: List[int] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when the primary copy position did not serve the read."""
        return bool(self.positions_skipped)


class ServiceClient:
    """A storage frontend speaking to one metastore and its blockstores."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        read_policy: str = "primary",
        read_seed: int = 0,
    ) -> None:
        entry = sched_registry.lookup(read_policy)
        if not entry.online:
            raise ConfigurationError(
                f"read_policy {entry.name!r} is an offline baseline; the "
                f"client schedules per-request"
            )
        self._metastore_endpoint = (host, port)
        self._metastore: Optional[RpcConnection] = None
        self._blockstores: Dict[str, Tuple[str, int]] = {}
        self._connections: Dict[str, RpcConnection] = {}
        self._scheduler_entry = entry
        self._read_seed = read_seed
        self._scheduler = None
        self.copies = 0
        self.strategy_name = ""

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        read_policy: str = "primary",
        read_seed: int = 0,
    ) -> "ServiceClient":
        """Connect to the metastore and bootstrap from its config."""
        client = cls(host, port, read_policy=read_policy, read_seed=read_seed)
        client._metastore = await RpcConnection.open(host, port)
        await client.refresh_config()
        return client

    @property
    def read_policy(self) -> str:
        """Canonical name of the copy-selection policy."""
        return self._scheduler_entry.name

    @property
    def scheduler(self):
        """The live read scheduler (built lazily over known devices)."""
        if self._scheduler is None:
            self._scheduler = self._scheduler_entry.build(
                sorted(self._blockstores), seed=self._read_seed
            )
        return self._scheduler

    async def refresh_config(self) -> None:
        """Re-fetch the service topology from the metastore.

        Devices named in the refreshed topology are marked online in the
        read scheduler — the probe-on-failure path re-discovers any that
        are still down.
        """
        config = await self._call_metastore("config")
        self.copies = int(config.get("copies", 0))
        self.strategy_name = str(config.get("strategy", ""))
        endpoints = config.get("blockstores", {})
        self._blockstores = {
            device: (endpoint[0], int(endpoint[1]))
            for device, endpoint in endpoints.items()
        }
        if self._scheduler is not None:
            for device_id in self._blockstores:
                self._scheduler.mark_online(device_id)

    async def _call_metastore(self, op: str, **params):
        if self._metastore is None:
            raise ServiceError("client is not connected; use connect()")
        return await self._metastore.call(op, **params)

    async def _blockstore(self, device_id: str) -> RpcConnection:
        """A (cached) connection to the blockstore backing ``device_id``."""
        connection = self._connections.get(device_id)
        if connection is not None and connection.connected:
            return connection
        try:
            host, port = self._blockstores[device_id]
        except KeyError:
            raise ServiceUnavailableError(
                f"no blockstore registered for device {device_id!r}"
            ) from None
        connection = await RpcConnection.open(host, port)
        self._connections[device_id] = connection
        return connection

    # -- placement --------------------------------------------------------

    async def where_is(self, address: int) -> List[str]:
        """The ``k`` device ids holding ``address``, in copy order."""
        result = await self._call_metastore("where_is", address=address)
        return list(result["devices"])

    async def where_are(self, addresses: Sequence[int]) -> List[List[str]]:
        """Batch placement lookup (one ``place_many`` server-side)."""
        result = await self._call_metastore(
            "where_are", addresses=list(addresses)
        )
        return [list(devices) for devices in result["placements"]]

    # -- data path ---------------------------------------------------------

    async def put_block(self, address: int, payload: bytes) -> WriteReceipt:
        """Write ``payload`` to every reachable copy position.

        Raises:
            ServiceUnavailableError: when *no* copy position accepted the
                write — nothing was stored.
        """
        devices = await self.where_is(address)
        digest = checksum(payload)
        encoded = encode_payload(payload)
        scheduler = self.scheduler
        written: List[int] = []
        skipped: List[int] = []
        for position, device_id in enumerate(devices):
            try:
                connection = await self._blockstore(device_id)
                await connection.call(
                    "put",
                    address=address,
                    position=position,
                    payload=encoded,
                    checksum=digest,
                )
            except ServiceUnavailableError:
                scheduler.mark_offline(device_id)
                skipped.append(position)
                continue
            scheduler.mark_online(device_id)
            written.append(position)
        if not written:
            raise ServiceUnavailableError(
                f"block {address}: no blockstore reachable for any of the "
                f"{len(devices)} copy positions"
            )
        return WriteReceipt(
            address=address,
            devices=devices,
            positions_written=written,
            positions_skipped=skipped,
            checksum=digest,
        )

    async def get_block(self, address: int) -> ServiceReadResult:
        """Read ``address``, degrading across copy positions on failure.

        Falls back to the next copy position when a blockstore is
        unreachable, no longer holds the share, or serves bytes that fail
        checksum verification — the wire twin of
        :func:`repro.chaos.recovery.degraded_read`.

        Raises:
            ServiceUnavailableError: every copy position failed.
        """
        devices = await self.where_is(address)
        scheduler = self.scheduler
        try:
            order = scheduler.order(address, devices)
        except DeviceUnavailableError:
            # Every copy's device is marked offline — probe them all
            # anyway (last-resort walk) so a recovered store can serve
            # and be marked back online.
            order = list(range(len(devices)))
        skipped: List[int] = []
        for position in order:
            device_id = devices[position]
            try:
                connection = await self._blockstore(device_id)
                result = await connection.call(
                    "get", address=address, position=position
                )
            except ServiceUnavailableError:
                # Connection-level failure: route future reads around it.
                scheduler.mark_offline(device_id)
                skipped.append(position)
                continue
            except (BlockNotFoundError, ChecksumMismatchError):
                # The store is up but this share is bad — keep the
                # device in the pool.
                skipped.append(position)
                continue
            payload = decode_payload(result["payload"])
            if checksum(payload) != result.get("checksum"):
                skipped.append(position)
                continue
            scheduler.mark_online(device_id)
            return ServiceReadResult(
                payload=payload,
                position_used=position,
                positions_skipped=skipped,
            )
        raise ServiceUnavailableError(
            f"block {address}: all {len(devices)} copy positions "
            f"unavailable (skipped {skipped})"
        )

    async def metrics(self) -> Dict[str, object]:
        """The metastore's metrics snapshot (service + process)."""
        return dict(await self._call_metastore("metrics"))

    async def ping(self) -> bool:
        """Round-trip liveness probe of the metastore."""
        result = await self._call_metastore("ping")
        return bool(result.get("pong"))

    async def close(self) -> None:
        """Close the metastore and every cached blockstore connection."""
        connections = list(self._connections.values())
        self._connections.clear()
        if self._metastore is not None:
            connections.append(self._metastore)
            self._metastore = None
        await asyncio.gather(
            *(connection.close() for connection in connections),
            return_exceptions=True,
        )
