"""Length-prefixed JSON wire protocol for the placement service.

One frame on the wire is::

    +----------------+----------------------------------------+
    | 4-byte big-    | UTF-8 JSON body, exactly ``length``    |
    | endian length  | bytes                                  |
    +----------------+----------------------------------------+

The body is any JSON value (servers additionally require a dict
envelope, but the codec itself is payload-agnostic).  JSON is rendered
compactly with sorted keys, so equal payloads encode to byte-equal
frames on any machine — the property the protocol tests pin.

Three failure modes get typed errors (all subclasses of
:class:`~repro.exceptions.BadFrameError`):

* :class:`~repro.exceptions.TruncatedFrameError` — the buffer or stream
  ended before the declared length was satisfied (peer died mid-frame).
* :class:`~repro.exceptions.OversizedFrameError` — the header declared a
  body larger than ``max_frame_bytes``.  The guard fires on the header
  alone, before any body bytes are buffered.
* :class:`~repro.exceptions.BadFrameError` — everything else: a zero
  length prefix, a body that is not valid JSON, or trailing bytes after
  a complete frame.

The async helpers :func:`read_frame`/:func:`write_frame` adapt the codec
to :mod:`asyncio` streams; a clean EOF *between* frames reads as
``None`` rather than an error, which is how connections close.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Optional, Tuple

from ..exceptions import (
    BadFrameError,
    OversizedFrameError,
    TruncatedFrameError,
)

#: Frame header: one unsigned 32-bit big-endian body length.
HEADER = struct.Struct("!I")

#: Default ceiling on one frame's body.  Generous for placement batches
#: (a 100k-address ``where_are`` answer is ~2 MB) while keeping a corrupt
#: or hostile length prefix from forcing a multi-gigabyte allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(payload: Any, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one payload to its wire frame.

    Args:
        payload: Any JSON-serialisable value.
        max_frame_bytes: Refuse to build frames whose body exceeds this.

    Raises:
        BadFrameError: when the payload is not JSON-serialisable.
        OversizedFrameError: when the encoded body exceeds the maximum.
    """
    try:
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise BadFrameError(f"payload is not JSON-serialisable: {error}") from None
    if len(body) > max_frame_bytes:
        raise OversizedFrameError(
            f"frame body is {len(body)} bytes, above the "
            f"{max_frame_bytes}-byte maximum"
        )
    return HEADER.pack(len(body)) + body


def decode_header(
    header: bytes, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> int:
    """Validate a frame header and return the declared body length.

    Raises:
        TruncatedFrameError: fewer than 4 header bytes.
        BadFrameError: a zero-length body (no JSON value is empty).
        OversizedFrameError: the declared length exceeds the maximum.
    """
    if len(header) < HEADER.size:
        raise TruncatedFrameError(
            f"frame header needs {HEADER.size} bytes, got {len(header)}"
        )
    (length,) = HEADER.unpack(header[: HEADER.size])
    if length == 0:
        raise BadFrameError("frame declares a zero-length body")
    if length > max_frame_bytes:
        raise OversizedFrameError(
            f"frame declares a {length}-byte body, above the "
            f"{max_frame_bytes}-byte maximum"
        )
    return length


def decode_body(body: bytes) -> Any:
    """Parse one frame body.

    Raises:
        BadFrameError: when the body is not valid UTF-8 JSON.
    """
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadFrameError(f"frame body is not valid JSON: {error}") from None


def decode_frame(
    data: bytes, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Any:
    """Decode a buffer holding exactly one frame.

    The strict inverse of :func:`encode_frame`: the buffer must contain
    one complete frame and nothing else.

    Raises:
        TruncatedFrameError: the buffer ends before the declared length.
        OversizedFrameError: the header declares an over-limit body.
        BadFrameError: zero-length body, invalid JSON, or trailing bytes.
    """
    payload, consumed = decode_frame_prefix(data, max_frame_bytes=max_frame_bytes)
    if consumed != len(data):
        raise BadFrameError(
            f"{len(data) - consumed} trailing bytes after a complete frame"
        )
    return payload


def decode_frame_prefix(
    data: bytes, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Tuple[Any, int]:
    """Decode the first frame of a buffer, returning ``(payload, consumed)``.

    The streaming-friendly variant of :func:`decode_frame`: trailing
    bytes (the start of the next frame) are fine and reported through
    ``consumed``.

    Raises:
        TruncatedFrameError: the buffer ends before one complete frame.
        OversizedFrameError: the header declares an over-limit body.
        BadFrameError: zero-length body or invalid JSON.
    """
    length = decode_header(data, max_frame_bytes=max_frame_bytes)
    end = HEADER.size + length
    if len(data) < end:
        raise TruncatedFrameError(
            f"frame declares a {length}-byte body but only "
            f"{len(data) - HEADER.size} bytes follow the header"
        )
    return decode_body(data[HEADER.size : end]), end


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Optional[Any]:
    """Read one frame from a stream.

    Returns:
        The decoded payload, or ``None`` on a clean EOF between frames
        (the peer closed the connection after the last complete frame).

    Raises:
        TruncatedFrameError: EOF arrived mid-frame.
        OversizedFrameError: the header declared an over-limit body.
        BadFrameError: zero-length body or invalid JSON.
    """
    header = await reader.read(HEADER.size)
    if not header:
        return None
    while len(header) < HEADER.size:
        more = await reader.read(HEADER.size - len(header))
        if not more:
            raise TruncatedFrameError(
                f"connection closed after {len(header)} header bytes"
            )
        header += more
    length = decode_header(header, max_frame_bytes=max_frame_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise TruncatedFrameError(
            f"connection closed {len(error.partial)} bytes into a "
            f"{length}-byte body"
        ) from None
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: Any,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Encode ``payload`` and flush it onto a stream."""
    writer.write(encode_frame(payload, max_frame_bytes=max_frame_bytes))
    await writer.drain()
