"""Blockstore shard: stores block-copy payloads with checksums.

One :class:`BlockstoreServer` plays the role of one placement device
(one :class:`~repro.types.BinSpec`): it stores the bytes of every
``(address, position)`` share the placement strategy routes to it.
Payloads travel base64-encoded inside the JSON envelope and are stored
with a SHA-256 checksum computed *at write time*; every read re-hashes
the stored bytes against it, so silent corruption surfaces as a typed
:class:`~repro.exceptions.ChecksumMismatchError` the client can treat
like an unavailable copy (fall back to the next position) instead of
returning poisoned data.

Ops::

    put    {address, position, payload}        -> {stored, checksum}
    get    {address, position}                 -> {payload, checksum}
    delete {address, position}                 -> {deleted}
    stats  {}                                  -> {device, shares, bytes}

plus the base ``ping``/``metrics``.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
from typing import Any, Dict, Tuple

from ..exceptions import (
    BadFrameError,
    BlockNotFoundError,
    ChecksumMismatchError,
)
from .rpc import RpcServer, require


def checksum(payload: bytes) -> str:
    """The protocol's payload checksum: SHA-256 hex digest."""
    return hashlib.sha256(payload).hexdigest()


def encode_payload(payload: bytes) -> str:
    """Bytes -> base64 text for the JSON envelope."""
    return base64.b64encode(payload).decode("ascii")


def decode_payload(text: str) -> bytes:
    """Base64 text -> bytes.

    Raises:
        BadFrameError: when the text is not valid base64.
    """
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError, AttributeError) as error:
        raise BadFrameError(f"payload is not valid base64: {error}") from None


class BlockstoreServer(RpcServer):
    """One storage shard, addressed by the device id it backs."""

    kind = "blockstore"

    def __init__(
        self, device_id: str, host: str = "127.0.0.1", port: int = 0, **kwargs
    ) -> None:
        super().__init__(host, port, **kwargs)
        self.device_id = device_id
        self._shares: Dict[Tuple[int, int], Tuple[bytes, str]] = {}
        self._handlers.update(
            put=self._op_put,
            get=self._op_get,
            delete=self._op_delete,
            stats=self._op_stats,
        )

    # -- test/chaos hooks -------------------------------------------------

    def share_count(self) -> int:
        """Shares currently stored (test/inspection hook)."""
        return len(self._shares)

    def holds(self, address: int, position: int) -> bool:
        """True when the shard stores that copy (test/inspection hook)."""
        return (address, position) in self._shares

    def wipe(self) -> None:
        """Drop every share — the data-loss half of a crash."""
        self._shares.clear()

    def corrupt(self, address: int, position: int) -> None:
        """Flip the stored bytes without updating the checksum.

        A test hook simulating silent (bit-rot) corruption; the next
        ``get`` of the share fails checksum verification.
        """
        payload, digest = self._shares[(address, position)]
        flipped = bytes((payload[0] ^ 0xFF,)) + payload[1:] if payload else b"\xff"
        self._shares[(address, position)] = (flipped, digest)

    # -- ops --------------------------------------------------------------

    async def _op_put(self, request: Dict[str, Any]) -> Dict[str, Any]:
        address = int(require(request, "address"))
        position = int(require(request, "position"))
        payload = decode_payload(require(request, "payload"))
        digest = checksum(payload)
        claimed = request.get("checksum")
        if claimed is not None and claimed != digest:
            raise ChecksumMismatchError(
                f"put ({address}, {position}) on {self.device_id!r}: payload "
                f"hashes to {digest[:12]}… but the request claimed "
                f"{str(claimed)[:12]}…"
            )
        self._shares[(address, position)] = (payload, digest)
        self.registry.counter("blockstore.shares.put").add(1)
        self.registry.counter("blockstore.bytes.put").add(len(payload))
        return {"stored": True, "checksum": digest}

    async def _op_get(self, request: Dict[str, Any]) -> Dict[str, Any]:
        address = int(require(request, "address"))
        position = int(require(request, "position"))
        try:
            payload, digest = self._shares[(address, position)]
        except KeyError:
            raise BlockNotFoundError(
                f"{self.device_id!r} holds no share ({address}, {position})"
            ) from None
        if checksum(payload) != digest:
            self.registry.counter("blockstore.corrupt_reads").add(1)
            raise ChecksumMismatchError(
                f"share ({address}, {position}) on {self.device_id!r} fails "
                f"checksum verification (silent corruption)"
            )
        self.registry.counter("blockstore.shares.got").add(1)
        return {"payload": encode_payload(payload), "checksum": digest}

    async def _op_delete(self, request: Dict[str, Any]) -> Dict[str, Any]:
        address = int(require(request, "address"))
        position = int(require(request, "position"))
        existed = self._shares.pop((address, position), None) is not None
        return {"deleted": existed}

    async def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "device": self.device_id,
            "shares": len(self._shares),
            "bytes": sum(len(payload) for payload, _ in self._shares.values()),
        }
