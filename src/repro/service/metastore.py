"""Metastore: placement answers over the wire.

The metadata half of the service.  It owns one strategy instance built
through the canonical :func:`repro.placement.registry.create` factory —
the same path the CLI and benches use — so a served answer is *the same
computation* as a local one: ``where_is`` is ``strategy.place`` and
``where_are`` is ``strategy.place_many`` (the columnar batch engine),
with results bit-identical to a local call on equal ``(strategy, bins,
copies)``.  The equivalence tests pin exactly that across every
registered strategy.

Ops::

    where_is  {address}              -> {devices: [id, ...]}          # k ids
    where_are {addresses}            -> {placements: [[id, ...], ...]}
    config    {}                     -> {strategy, copies, bins, blockstores}

plus the base ``ping``/``metrics``.  ``config`` is how a client
bootstraps: it learns the replication degree and each device's
blockstore endpoint in one round trip.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import BadFrameError
from ..placement.registry import create, lookup
from ..types import BinSpec
from .rpc import RpcServer, require

#: Ceiling on one ``where_are`` batch; far above any sane request while
#: bounding the work a single frame can demand.
MAX_BATCH_ADDRESSES = 1_000_000


class MetastoreServer(RpcServer):
    """The placement/metadata server."""

    kind = "metastore"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        *,
        strategy: str = "redundant-share",
        copies: int = 3,
        strategy_options: Optional[Mapping[str, Any]] = None,
        blockstores: Optional[Mapping[str, Tuple[str, int]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(host, port, **kwargs)
        # ConfigurationError with accepted names when unknown.
        entry = lookup(strategy)
        self._bins = list(bins)
        self.strategy_name = entry.name
        self.strategy_options = dict(strategy_options or {})
        self.copies = entry.effective_copies(copies)
        self.strategy = create(
            entry.name, self._bins, copies=copies, **self.strategy_options
        )
        self._blockstores: Dict[str, Tuple[str, int]] = {
            device: (endpoint[0], int(endpoint[1]))
            for device, endpoint in (blockstores or {}).items()
        }
        self._handlers.update(
            where_is=self._op_where_is,
            where_are=self._op_where_are,
            config=self._op_config,
        )

    def register_blockstore(self, device_id: str, host: str, port: int) -> None:
        """Record (or update) the endpoint serving one device's shares."""
        self._blockstores[device_id] = (host, port)

    # -- ops --------------------------------------------------------------

    async def _op_where_is(self, request: Dict[str, Any]) -> Dict[str, Any]:
        address = self._parse_address(require(request, "address"))
        placement = self.strategy.place(address)
        self.registry.counter("metastore.lookups").add(1)
        return {"devices": list(placement)}

    async def _op_where_are(self, request: Dict[str, Any]) -> Dict[str, Any]:
        raw = require(request, "addresses")
        if not isinstance(raw, list):
            raise BadFrameError("'addresses' must be a list of integers")
        if len(raw) > MAX_BATCH_ADDRESSES:
            raise BadFrameError(
                f"where_are batch of {len(raw)} addresses exceeds the "
                f"{MAX_BATCH_ADDRESSES}-address maximum"
            )
        addresses = [self._parse_address(value) for value in raw]
        batch = self.strategy.place_many(addresses)
        self.registry.counter("metastore.lookups").add(len(addresses))
        self.registry.histogram("metastore.batch_size").observe(len(addresses))
        return {
            "placements": [list(placement) for placement in batch.tuples()]
        }

    async def _op_config(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "strategy": self.strategy_name,
            "strategy_options": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in sorted(self.strategy_options.items())
            },
            "copies": self.copies,
            "bins": [
                [spec.bin_id, spec.capacity] for spec in self._bins
            ],
            "blockstores": {
                device: [host, port]
                for device, (host, port) in sorted(self._blockstores.items())
            },
        }

    @staticmethod
    def _parse_address(value: Any) -> int:
        """Validate one wire address (a non-negative JSON integer)."""
        if isinstance(value, bool) or not isinstance(value, int):
            raise BadFrameError(
                f"addresses must be integers, got {type(value).__name__}"
            )
        if value < 0:
            raise BadFrameError(f"addresses must be >= 0, got {value}")
        return value
