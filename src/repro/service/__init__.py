"""Network service layer: placement and block storage over asyncio TCP.

The wire surface of the library (the ROADMAP's "serve placement over the
wire" item): a **metastore** answering ``where_is``/``where_are`` through
the canonical registry factory and the columnar ``place_many`` engine, N
**blockstore** shards holding checksummed block payloads, and a
**client** that writes ``k`` copies and falls back across copy positions
on read failure — the wire twin of
:func:`repro.chaos.recovery.degraded_read`.

Everything speaks the length-prefixed JSON protocol in
:mod:`~repro.service.protocol`; malformed frames raise the typed errors
exported from :mod:`repro.exceptions` (:class:`~repro.exceptions.BadFrameError`
and friends).  Each server exports its request counters and latency
histograms — plus the process-wide :mod:`repro.obs` snapshot — through a
``metrics`` RPC, so a running service is observable with the same layer
the rest of the library instruments against.

Quickstart (one process, ephemeral ports)::

    import asyncio
    from repro.service import ServiceCluster, ServiceClient

    async def demo():
        async with ServiceCluster.from_capacities([500, 400, 300, 200]) as svc:
            host, port = svc.metastore_address
            client = await ServiceClient.connect(host, port)
            await client.put_block(42, b"hello")
            print((await client.get_block(42)).payload)
            await client.close()

    asyncio.run(demo())

or from a shell: ``repro serve`` / ``repro client`` (see OPERATIONS.md).
"""

from __future__ import annotations

from .blockstore import BlockstoreServer, checksum, decode_payload, encode_payload
from .client import ServiceClient, ServiceReadResult, WriteReceipt
from .cluster import ServiceCluster
from .metastore import MetastoreServer
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    decode_frame_prefix,
    encode_frame,
    read_frame,
    write_frame,
)
from .rpc import RpcConnection, RpcServer

__all__ = [
    "BlockstoreServer",
    "MAX_FRAME_BYTES",
    "MetastoreServer",
    "RpcConnection",
    "RpcServer",
    "ServiceClient",
    "ServiceCluster",
    "ServiceReadResult",
    "WriteReceipt",
    "checksum",
    "decode_frame",
    "decode_frame_prefix",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "read_frame",
    "write_frame",
]
