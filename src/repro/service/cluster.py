"""One-process service topology: a metastore plus its blockstore shards.

:class:`ServiceCluster` wires the pieces together for ``repro serve``,
the integration tests and the throughput bench: one
:class:`~repro.service.blockstore.BlockstoreServer` per placement device
and one :class:`~repro.service.metastore.MetastoreServer` that knows
every shard's endpoint.  Everything runs on the current event loop —
"distributed" over localhost TCP, which is exactly what the chaos suite
needs: killing a shard closes a real listening socket, so clients see
real connection failures, not mocks.

Chaos hooks mirror the :class:`~repro.chaos.FaultSchedule` taxonomy:

* :meth:`kill_blockstore` — a **crash**: the server stops accepting and
  (by default) its contents are wiped, like a failed disk replaced by a
  blank one.
* :meth:`restart_blockstore` — the replacement arrives: a fresh server
  on the same device id, re-registered with the metastore.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError, ServiceError
from ..types import BinSpec, bins_from_capacities
from .blockstore import BlockstoreServer
from .metastore import MetastoreServer


class ServiceCluster:
    """A metastore and one blockstore per device, started together.

    Args:
        bins: The placement devices; one blockstore shard backs each.
        strategy: Registry name (or alias) of the placement strategy.
        copies: Requested replication degree ``k``.
        strategy_options: Per-strategy options validated against the
            registry entry's schema (e.g. RPDP's ``service_rates``).
        host: Bind host for every server.
        port: Metastore port; blockstores take ``port+1 .. port+N``.
            ``0`` (default) gives every server an OS-assigned port —
            what tests and benches want.
    """

    def __init__(
        self,
        bins: Sequence[BinSpec],
        *,
        strategy: str = "redundant-share",
        copies: int = 3,
        strategy_options: Optional[Dict] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if not bins:
            raise ConfigurationError("a service cluster needs at least one bin")
        if port < 0 or port > 65535 - len(bins):
            raise ConfigurationError(
                f"port must be in [0, {65535 - len(bins)}] so every "
                f"blockstore fits above it, got {port}"
            )
        self.bins = list(bins)
        self.strategy_name = strategy
        self.strategy_options = dict(strategy_options or {})
        self.copies = copies
        self.host = host
        self._base_port = port
        self.metastore: Optional[MetastoreServer] = None
        self.blockstores: Dict[str, BlockstoreServer] = {}
        self._ports: Dict[str, int] = {}

    @classmethod
    def from_capacities(
        cls,
        capacities: Sequence[int],
        *,
        prefix: str = "store",
        **kwargs,
    ) -> "ServiceCluster":
        """Build from a flat capacity vector (the CLI's input shape)."""
        return cls(bins_from_capacities(capacities, prefix=prefix), **kwargs)

    @property
    def device_ids(self) -> List[str]:
        """Device ids in bin order (one blockstore each)."""
        return [spec.bin_id for spec in self.bins]

    @property
    def metastore_address(self) -> Tuple[str, int]:
        """``(host, port)`` of the running metastore."""
        if self.metastore is None:
            raise ServiceError("service cluster is not running")
        return self.metastore.address

    async def start(self) -> "ServiceCluster":
        """Start every blockstore, then the metastore; returns ``self``.

        The metastore is built *after* the shards so its config already
        maps every device to a live endpoint — a client that connects the
        moment ``start()`` returns sees a complete topology.
        """
        if self.metastore is not None:
            raise ServiceError("service cluster is already running")
        endpoints: Dict[str, Tuple[str, int]] = {}
        for index, spec in enumerate(self.bins):
            port = 0 if self._base_port == 0 else self._base_port + 1 + index
            server = BlockstoreServer(spec.bin_id, self.host, port)
            await server.start()
            self.blockstores[spec.bin_id] = server
            self._ports[spec.bin_id] = server.port
            endpoints[spec.bin_id] = (self.host, server.port)
        metastore = MetastoreServer(
            self.bins,
            strategy=self.strategy_name,
            copies=self.copies,
            strategy_options=self.strategy_options,
            blockstores=endpoints,
            host=self.host,
            port=self._base_port,
        )
        await metastore.start()
        self.metastore = metastore
        return self

    async def stop(self) -> None:
        """Stop the metastore and every running blockstore."""
        if self.metastore is not None:
            await self.metastore.stop()
            self.metastore = None
        for server in self.blockstores.values():
            if server.running:
                await server.stop()
        self.blockstores.clear()

    async def kill_blockstore(self, device_id: str, *, wipe: bool = True) -> None:
        """Crash one shard: stop serving and (by default) lose its data.

        ``wipe=False`` models an outage instead — the socket closes but
        the shares survive for a later :meth:`restart_blockstore`.
        """
        try:
            server = self.blockstores[device_id]
        except KeyError:
            raise ServiceError(
                f"no blockstore for device {device_id!r}; "
                f"devices are {self.device_ids}"
            ) from None
        await server.stop()
        if wipe:
            server.wipe()

    async def restart_blockstore(self, device_id: str) -> BlockstoreServer:
        """Bring a killed shard back on its previous port.

        The replacement inherits whatever shares the old server still
        holds (none after a ``wipe=True`` crash) and is re-registered
        with the metastore.
        """
        old = self.blockstores.get(device_id)
        if old is None:
            raise ServiceError(f"no blockstore for device {device_id!r}")
        if old.running:
            return old
        server = BlockstoreServer(device_id, self.host, self._ports[device_id])
        server._shares = old._shares  # surviving shares carry over
        await server.start()
        self.blockstores[device_id] = server
        self._ports[device_id] = server.port
        if self.metastore is not None:
            self.metastore.register_blockstore(
                device_id, self.host, server.port
            )
        return server

    async def __aenter__(self) -> "ServiceCluster":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()
