"""Command-line interface: run the paper's experiments from a shell.

Examples::

    repro capacity --capacities 100,6,1 --copies 2
    repro fairness --capacities 500,600,700,800 --copies 2 --balls 50000
    repro compare  --capacities 1000,400,300,200,100 --balls 40000
    repro adaptivity --copies 2 --balls 20000
    repro place --capacities 1200,800,500 --copies 2 --address 42
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import List, Sequence

from .capacity import clip_capacities, is_capacity_efficient, max_balls
from .core import RedundantShare
from .exceptions import ConfigurationError
from .options import parse_option_text
from .placement import (
    create,
    lookup,
    strategy_names,
    trivial_wasted_fraction,
)
from .simulation import add_remove_cases, run_adaptivity
from .types import bins_from_capacities


def _parse_capacities(raw: str) -> List[int]:
    try:
        capacities = [int(part) for part in raw.split(",") if part]
    except ValueError:
        raise SystemExit(f"invalid capacity list: {raw!r}")
    if not capacities:
        raise SystemExit("at least one capacity is required")
    return capacities


def _strategy_options(name: str, option_pairs: Sequence[str]):
    """Resolve ``--strategy-opt key=value`` pairs to typed options.

    Returns ``(canonical_name, options_dict)``; unknown strategies,
    unknown option keys and malformed values exit with the registry's
    ``ConfigurationError`` message.
    """
    try:
        entry = lookup(name)
        options = parse_option_text(
            entry.options, option_pairs or (), f"strategy {entry.name!r}"
        )
    except ConfigurationError as error:
        raise SystemExit(str(error))
    return entry.name, options


def _strategy_for(name: str, bins, copies: int, option_pairs=()):
    """Resolve a strategy name through the canonical registry factory."""
    canonical, options = _strategy_options(name, option_pairs)
    try:
        return create(canonical, bins, copies=copies, **options)
    except ConfigurationError as error:
        raise SystemExit(str(error))


def cmd_capacity(args: argparse.Namespace) -> int:
    """Lemma 2.1/2.2 report for a capacity vector."""
    capacities = sorted(_parse_capacities(args.capacities), reverse=True)
    k = args.copies
    efficient = is_capacity_efficient(capacities, k)
    balls = max_balls(capacities, k)
    clipped = clip_capacities(capacities, k)
    waste = trivial_wasted_fraction(capacities, k) if len(capacities) <= 10 else None
    print(f"capacities (sorted): {capacities}")
    print(f"replication degree : k = {k}")
    print(f"capacity efficient : {efficient} (Lemma 2.1: k*b_0 <= B)")
    print(f"max storable balls : {balls} (Lemma 2.2)")
    print(f"clipped capacities : {[round(value, 2) for value in clipped]}")
    if waste is not None:
        print(f"trivial-strategy waste: {waste:.2%} of raw capacity (Lemma 2.4)")
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    """Show the placement of one or more addresses."""
    capacities = _parse_capacities(args.capacities)
    bins = bins_from_capacities(capacities, prefix=args.prefix)
    strategy = _strategy_for(
        args.strategy, bins, args.copies, args.strategy_opt
    )
    for address in range(args.address, args.address + args.count):
        print(f"{address}: {' '.join(strategy.place(address))}")
    return 0


def cmd_fairness(args: argparse.Namespace) -> int:
    """Empirical shares vs fair targets for one configuration."""
    capacities = _parse_capacities(args.capacities)
    bins = bins_from_capacities(capacities, prefix=args.prefix)
    strategy = _strategy_for(
        args.strategy, bins, args.copies, args.strategy_opt
    )
    counts = Counter()
    for address in range(args.balls):
        counts.update(strategy.place(address))
    total = sum(counts.values())
    expected = strategy.expected_shares() or {}
    print(f"{'bin':<10}{'copies':>10}{'observed':>12}{'expected':>12}")
    for spec in bins:
        observed = counts.get(spec.bin_id, 0) / total
        target = expected.get(spec.bin_id)
        target_text = f"{target:>11.2%}" if target is not None else f"{'n/a':>11}"
        print(
            f"{spec.bin_id:<10}{counts.get(spec.bin_id, 0):>10}"
            f"{observed:>11.2%} {target_text}"
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Fairness deviation of all strategies on one configuration."""
    capacities = _parse_capacities(args.capacities)
    bins = bins_from_capacities(capacities, prefix=args.prefix)
    total = sum(capacities)
    fair = {
        spec.bin_id: min(1.0, args.copies * spec.capacity / total) / args.copies
        for spec in bins
    }
    print(f"{'strategy':<18}{'max deviation from fair share':>32}")
    # Canonical names only: an aliased entry must not be swept twice.
    for name in strategy_names():
        strategy = _strategy_for(name, bins, args.copies)
        counts = Counter()
        for address in range(args.balls):
            counts.update(strategy.place(address))
        total_copies = sum(counts.values())
        deviation = max(
            abs(counts.get(bin_id, 0) / total_copies - share)
            for bin_id, share in fair.items()
        )
        print(f"{name:<18}{deviation:>31.3%}")
    return 0


def cmd_growth(args: argparse.Namespace) -> int:
    """The Figure 2/4 growth experiment (fill %% per disk per step)."""
    from .simulation import paper_growth_steps, run_fairness

    steps = paper_growth_steps(base=args.base, step=args.step)
    results = run_fairness(
        steps,
        lambda bins: RedundantShare(bins, copies=args.copies),
        balls=args.balls,
    )
    disks = sorted({disk for result in results for disk in result.fills})
    header = "disk        " + "".join(f"{step.label:>20}" for step in steps)
    print(header)
    for disk in disks:
        row = f"{disk:<12}"
        for result in results:
            if disk in result.fills:
                row += f"{result.fills[disk]:>19.2f}%"
            else:
                row += f"{'-':>20}"
        print(row)
    print("spread      " + "".join(f"{r.spread:>19.2f}%" for r in results))
    return 0


def cmd_durability(args: argparse.Namespace) -> int:
    """MTTDL table for the supported redundancy schemes."""
    from .analysis import DurabilityModel, annual_loss_probability, mttdl

    schemes = {
        "single copy": DurabilityModel(1, 0, args.mttf, args.mttr),
        "mirror k=2": DurabilityModel(2, 1, args.mttf, args.mttr),
        "mirror k=3": DurabilityModel(3, 2, args.mttf, args.mttr),
        "parity 4+1": DurabilityModel(5, 1, args.mttf, args.mttr),
        "RS 4+2": DurabilityModel(6, 2, args.mttf, args.mttr),
    }
    print(f"MTTF={args.mttf:.0f} MTTR={args.mttr:.0f} (same time unit)")
    print(f"{'scheme':<14}{'MTTDL':>18}{'P(loss per 365 units)':>24}")
    for name, model in schemes.items():
        print(
            f"{name:<14}{mttdl(model):>18,.0f}"
            f"{annual_loss_probability(model, year=365.0):>24.3e}"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Observability snapshot + statistical fairness acceptance report.

    Runs a seeded placement sample through the chi-square and
    max-deviation acceptance tests (the Lemma 2.4 machinery), exercises a
    small cluster through an add-device rebalance and a failure round
    with the event bus enabled, and renders the captured counters,
    histograms and trace-event summary.
    """
    from .cluster import Cluster, FailureInjector, Rebalancer
    from .metrics.stats import (
        chi_square_fairness,
        fair_copy_shares,
        max_deviation_fairness,
        sample_copy_counts,
    )
    from .obs import JsonlSink, MemorySink, TeeSink, metrics, reset_metrics, use_sink
    from .obs.report import render_report
    from .simulation import Simulator
    from .types import BinSpec

    capacities = _parse_capacities(args.capacities)
    bins = bins_from_capacities(capacities, prefix=args.prefix)
    strategy = _strategy_for(
        args.strategy, bins, args.copies, args.strategy_opt
    )

    reset_metrics()
    memory = MemorySink()
    sink = memory
    if args.jsonl:
        sink = TeeSink([memory, JsonlSink(args.jsonl)])
    with use_sink(sink):
        counts = sample_copy_counts(strategy, args.balls, seed=args.seed)
        # Always test against the *fair* (clipped capacity-proportional)
        # shares — a strategy's own expected_shares() describes what it
        # achieves, and e.g. the trivial strategy would trivially accept
        # its own Lemma 2.4 waste.
        expected = fair_copy_shares(
            {spec.bin_id: float(spec.capacity) for spec in bins}, args.copies
        )
        verdicts = [
            chi_square_fairness(counts, expected, alpha=args.alpha),
            max_deviation_fairness(counts, expected, alpha=args.alpha),
        ]
        if args.exercise:
            # Scale the capacity vector so the devices hold the written
            # blocks with headroom for the post-failure rebuild; the
            # relative proportions (what placement cares about) are kept.
            scale = max(1, -(-4 * args.blocks * args.copies // sum(capacities)))
            cluster = Cluster(
                bins_from_capacities(
                    [capacity * scale for capacity in capacities],
                    prefix=args.prefix,
                ),
                lambda b: _strategy_for(
                    args.strategy, b, args.copies, args.strategy_opt
                ),
            )
            for address in range(args.blocks):
                cluster.write(address, b"x" * 16)
            simulator = Simulator()
            spec = BinSpec(f"{args.prefix}-new", max(capacities) * scale)
            simulator.schedule(
                1.0, lambda: cluster.add_device(spec, rebalance=False)
            )
            simulator.schedule(
                2.0, lambda: Rebalancer(cluster).run_to_completion(step_size=64)
            )
            simulator.schedule(
                3.0, lambda: FailureInjector(seed=args.seed).crash(cluster, 1)
            )
            simulator.run()
        sink.close()
    print(render_report(metrics(), memory, verdicts))
    if args.strict and not all(verdict.accepted for verdict in verdicts):
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault schedule against a cluster and report recovery.

    Builds a cluster (capacities scaled so the written blocks fit with
    rebuild headroom, like ``repro stats``), generates or loads a fault
    schedule, plays it through the :class:`~repro.chaos.ChaosController`,
    and prints blocks-at-risk over time, data-loss events, repair
    throughput and the post-repair fairness verdict.
    """
    import os

    from .chaos import (
        ChaosOptions,
        FaultSchedule,
        generate_schedule,
        run_chaos,
    )
    from .chaos.recovery import RepairPolicy
    from .cluster import Cluster
    from .exceptions import ConfigurationError, InfeasibleRedundancyError
    from .obs import JsonlSink, MemorySink, TeeSink, metrics, reset_metrics, use_sink
    from .obs.report import render_report

    seed = args.seed
    if seed is None:
        seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

    if args.fleet:
        return _cmd_chaos_fleet(args, seed)

    blocks = 120 if args.blocks is None else args.blocks
    strategy = args.strategy or "redundant-share"
    capacities = _parse_capacities(args.capacities)
    scale = max(1, -(-4 * blocks * args.copies // sum(capacities)))
    bins = bins_from_capacities(
        [capacity * scale for capacity in capacities], prefix=args.prefix
    )
    cluster = Cluster(
        bins,
        lambda b: _strategy_for(strategy, b, args.copies, args.strategy_opt),
    )
    for address in range(blocks):
        cluster.write(address, b"x" * 16)

    if args.schedule:
        try:
            with open(args.schedule, "r", encoding="utf-8") as handle:
                schedule = FaultSchedule.from_json(handle.read())
        except (OSError, ConfigurationError) as error:
            raise SystemExit(f"cannot load schedule {args.schedule!r}: {error}")
    else:
        try:
            schedule = generate_schedule(
                cluster.device_ids(),
                seed=seed,
                duration=args.duration,
                crashes=args.crashes,
                outages=args.outages,
                flaky=args.flaky,
                error_rate=args.error_rate,
                latency=args.latency,
            )
        except ConfigurationError as error:
            raise SystemExit(str(error))

    options = ChaosOptions(
        seed=seed,
        policy=RepairPolicy(
            rate=args.rate,
            max_attempts=args.max_attempts,
            timeout=args.timeout,
            backoff_base=args.backoff_base,
            backoff_factor=args.backoff_factor,
            backoff_max=args.backoff_max,
        ),
        replacement_delay=args.replacement_delay,
        allow_degraded=args.allow_degraded,
        alpha=args.alpha,
    )

    reset_metrics()
    memory = MemorySink()
    sink = memory
    if args.jsonl:
        sink = TeeSink([memory, JsonlSink(args.jsonl)])
    with use_sink(sink):
        try:
            report = run_chaos(cluster, schedule, options)
        except InfeasibleRedundancyError as error:
            sink.close()
            print(f"chaos run aborted: {error}")
            return 1
        sink.close()

    print(f"schedule ({len(schedule)} faults, seed={seed}):")
    for event in schedule:
        extras = ""
        if event.duration:
            extras += f" duration={event.duration:g}"
        if event.error_rate:
            extras += f" error_rate={event.error_rate:g}"
        print(
            f"  t={event.time:<8.2f}{event.kind.value:<8}"
            f"{event.device_id}{extras}"
        )
    print()
    print(report.summary())
    print()
    print("blocks at risk over time:")
    for time, at_risk, depth in report.samples:
        print(f"  t={time:<8.2f}at_risk={at_risk:<6}queue={depth}")
    if report.loss_events:
        print("\ndata-loss events:")
        for loss in report.loss_events:
            print(
                f"  t={loss.time:.2f} block {loss.address} "
                f"({loss.survivors} survivors)"
            )
    print()
    print(render_report(metrics(), memory, [report.fairness] if report.fairness else []))
    if args.strict and (
        report.data_loss
        or (report.fairness is not None and not report.fairness.accepted)
    ):
        return 1
    return 0


def _cmd_chaos_fleet(args: argparse.Namespace, seed: int) -> int:
    """Columnar fleet-scale campaign: ``repro chaos --fleet``.

    Simulates ``--devices`` x ``--blocks`` over ``--years`` in fixed
    epochs, prints the copy-count timeline, the steady-state histogram
    against the mean-field prediction, the fitted MTTDL, and (with
    ``--phase``) a durability-vs-repair-rate phase diagram.
    """
    from .chaos import FleetOptions, FleetSimulator, durability_phase_diagram
    from .exceptions import ConfigurationError
    from .obs import JsonlSink, MemorySink, TeeSink, metrics, reset_metrics, use_sink
    from .obs.report import render_report

    fleet_strategy, strategy_options = _strategy_options(
        args.strategy or "striping", args.strategy_opt
    )
    try:
        options = FleetOptions(
            devices=args.devices,
            blocks=1_000_000 if args.blocks is None else args.blocks,
            copies=args.copies,
            years=args.years,
            epochs_per_year=args.epochs_per_year,
            failure_rate=args.failure_rate,
            repair_rate=args.repair_rate,
            seed=seed,
            strategy=fleet_strategy,
            strategy_options=strategy_options,
            device_capacity=args.device_capacity,
            sample_every=args.sample_every,
        )
        simulator = FleetSimulator(options)
    except ConfigurationError as error:
        raise SystemExit(str(error))

    reset_metrics()
    memory = MemorySink()
    sink = memory
    if args.jsonl:
        sink = TeeSink([memory, JsonlSink(args.jsonl)])
    with use_sink(sink):
        report = simulator.run()
        phase_points = []
        if args.phase:
            try:
                rates = [
                    float(rate)
                    for rate in args.phase.split(",")
                    if rate.strip()
                ]
            except ValueError:
                raise SystemExit(f"bad --phase rates: {args.phase!r}")
            phase_points = durability_phase_diagram(options, rates)
        sink.close()

    print(report.summary())
    print()
    print("copy-count timeline (damaged / lost):")
    shown = report.samples
    if len(shown) > 12:
        step = (len(shown) - 1) / 11
        shown = [shown[round(index * step)] for index in range(12)]
    for sample in shown:
        print(
            f"  y={sample.year:<8.2f}damaged={sample.damaged:<8}"
            f"lost={sample.lost}"
        )
    if phase_points:
        print()
        print("durability vs repair rate:")
        print("  rate/epoch  lost_frac  mean_copies  TV(mean-field)")
        for point in phase_points:
            print(
                f"  {point.repair_rate:<11.6g}"
                f"{point.lost_fraction:<11.6f}"
                f"{point.mean_copies:<13.4f}"
                f"{point.mean_field_deviation:.4f}"
            )
    print()
    # Scope the report to the fleet's namespace: placement-kernel
    # metrics (precompute cache etc.) exist only on the NumPy leg, and
    # CLI output must stay byte-identical across legs.
    fleet_trace = MemorySink()
    for event in memory.events:
        if event.kind.startswith("chaos.fleet."):
            fleet_trace.emit(event.kind, **event.fields)
    print(render_report(metrics().filtered("chaos.fleet."), fleet_trace, []))
    if args.strict and (
        report.data_loss or report.mean_field_deviation > args.tv_tolerance
    ):
        return 1
    return 0


def cmd_sched(args: argparse.Namespace) -> int:
    """Read-scheduler ablation: peak device load under skewed traffic.

    Places a synthetic address population with the chosen strategy,
    replays a skewed read stream (zipf / uniform / flash-crowd) through
    each requested scheduling policy, and prints the per-policy peak
    device share alongside the water-filling fractional optimum — the
    load-balance twin of ``repro fairness``.
    """
    from .exceptions import ConfigurationError
    from .scheduling import (
        LruCacheModel,
        create as sched_create,
        fractional_lower_bound,
        run_reads,
        scheduler_names,
    )
    from .workloads import ZipfGenerator, flash_crowd_sample, uniform_sample

    capacities = _parse_capacities(args.capacities)
    bins = bins_from_capacities(capacities, prefix=args.prefix)
    strategy = _strategy_for(
        args.strategy, bins, args.copies, args.strategy_opt
    )
    if args.requests < 1:
        raise SystemExit(f"--requests must be >= 1, got {args.requests}")
    if args.workload == "zipf":
        addresses = ZipfGenerator(
            args.universe, alpha=args.alpha, seed=args.seed
        ).sample(args.requests)
    elif args.workload == "uniform":
        addresses = uniform_sample(args.requests, args.universe, seed=args.seed)
    else:
        addresses = flash_crowd_sample(
            args.requests, args.universe, seed=args.seed
        )
    if args.policy == "all":
        policies = list(scheduler_names())
    else:
        policies = [name for name in args.policy.split(",") if name]
    device_ids = [spec.bin_id for spec in bins]
    print(
        f"workload={args.workload} requests={args.requests} "
        f"universe={args.universe} alpha={args.alpha} "
        f"strategy={args.strategy} k={args.copies}"
        + (f" cache={args.cache}" if args.cache else "")
    )
    print(
        f"{'policy':<16}{'peak reqs':>12}{'peak share':>12}"
        f"{'peak load':>12}{'cache hit%':>12}"
    )
    for name in policies:
        cache = (
            LruCacheModel(args.cache, hit_cost=args.hit_cost)
            if args.cache
            else None
        )
        try:
            scheduler = sched_create(
                name, device_ids, seed=args.seed, cache=cache
            )
        except ConfigurationError as error:
            raise SystemExit(str(error))
        outcome = run_reads(strategy, scheduler, addresses)
        hit_text = (
            f"{cache.hit_rate():>11.1%}" if cache is not None else f"{'-':>12}"
        )
        print(
            f"{scheduler.name:<16}{outcome.peak_count():>12}"
            f"{outcome.peak_share():>11.2%} {outcome.peak_load():>11.1f}"
            f"{hit_text}"
        )
    bound = fractional_lower_bound(strategy, addresses)
    if bound is not None:
        total = len(addresses)
        print(
            f"{'(optimum)':<16}{bound:>12.1f}{bound / total:>11.2%}"
            f" {'':>11}{'':>12}  # fractional water-filling bound"
        )
    return 0


def _parse_endpoint(raw: str) -> tuple:
    """Split a ``host:port`` endpoint, with CLI-grade errors."""
    host, _, port_text = raw.rpartition(":")
    if not host or not port_text:
        raise SystemExit(f"endpoint must be host:port, got {raw!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"invalid port in endpoint {raw!r}")
    if not 0 < port <= 65535:
        raise SystemExit(f"port must be in [1, 65535], got {port}")
    return host, port


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve placement + block storage: metastore plus N blockstores.

    One process, one event loop: a blockstore shard per configured
    device and a metastore answering ``where_is``/``where_are`` through
    the registry factory.  Runs until interrupted (Ctrl-C).
    """
    import asyncio
    import signal

    from .service import ServiceCluster

    capacities = _parse_capacities(args.capacities)
    if args.copies < 1:
        raise SystemExit(f"--copies must be >= 1, got {args.copies}")
    if args.port < 0 or args.port > 65535 - len(capacities):
        raise SystemExit(
            f"--port must leave room for {len(capacities)} blockstores "
            f"above it, got {args.port}"
        )
    bins = bins_from_capacities(capacities, prefix=args.prefix)
    # Build the strategy eagerly so bad names, bad options and infeasible
    # (bins, copies) combinations fail with a CLI error instead of a
    # half-started service.
    strategy_name, strategy_options = _strategy_options(
        args.strategy, args.strategy_opt
    )
    try:
        create(strategy_name, bins, copies=args.copies, **strategy_options)
    except ConfigurationError as error:
        raise SystemExit(f"cannot serve this configuration: {error}")

    async def _serve() -> int:
        from .obs import JsonlSink, use_sink

        cluster = ServiceCluster(
            bins,
            strategy=strategy_name,
            copies=args.copies,
            strategy_options=strategy_options,
            host=args.host,
            port=args.port,
        )
        try:
            await cluster.start()
        except OSError as error:
            raise SystemExit(
                f"cannot bind {args.host}:{args.port}: {error}"
            )
        host, port = cluster.metastore_address
        print(f"metastore    {host}:{port}  "
              f"(strategy={cluster.metastore.strategy_name}, "
              f"k={cluster.metastore.copies})")
        for device_id, server in cluster.blockstores.items():
            print(f"blockstore   {server.host}:{server.port}  {device_id}")
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host}:{port}\n")
        print("serving; Ctrl-C to stop", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signame in ("SIGINT", "SIGTERM"):
            signum = getattr(signal, signame, None)
            if signum is None:  # pragma: no cover - platform specific
                continue
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        try:
            if args.jsonl:
                with use_sink(JsonlSink(args.jsonl)):
                    await stop.wait()
            else:
                await stop.wait()
        finally:
            await cluster.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("stopped")
        return 0


def cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running service: ping/where/put/get/metrics."""
    import asyncio
    import json as _json

    from .exceptions import ReproError
    from .service import ServiceClient

    host, port = _parse_endpoint(args.connect)
    needs_address = args.action in ("where", "put", "get")
    if needs_address and args.address is None:
        raise SystemExit(f"client {args.action} requires --address")
    if args.action == "put" and args.payload is None:
        raise SystemExit("client put requires --payload")

    async def _run() -> int:
        client = await ServiceClient.connect(
            host, port, read_policy=args.read_policy, read_seed=args.read_seed
        )
        try:
            if args.action == "ping":
                await client.ping()
                print(f"pong from {host}:{port} "
                      f"(strategy={client.strategy_name}, k={client.copies})")
            elif args.action == "where":
                devices = await client.where_is(args.address)
                print(" ".join(devices))
            elif args.action == "put":
                receipt = await client.put_block(
                    args.address, args.payload.encode("utf-8")
                )
                print(
                    f"stored {args.address} on "
                    f"{len(receipt.positions_written)}/{len(receipt.devices)}"
                    f" copies ({' '.join(receipt.devices)}) "
                    f"checksum={receipt.checksum[:12]}"
                )
                if receipt.positions_skipped:
                    print(
                        f"degraded write: positions "
                        f"{receipt.positions_skipped} unreachable"
                    )
            elif args.action == "get":
                result = await client.get_block(args.address)
                print(result.payload.decode("utf-8", errors="backslashreplace"))
                if result.degraded:
                    print(
                        f"degraded read: fell back to position "
                        f"{result.position_used} "
                        f"(skipped {result.positions_skipped})"
                    )
            else:  # metrics
                print(_json.dumps(await client.metrics(), indent=2,
                                  sort_keys=True))
        finally:
            await client.close()
        return 0

    try:
        return asyncio.run(_run())
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def cmd_adaptivity(args: argparse.Namespace) -> int:
    """The Figure 3 add/remove experiment."""
    results = run_adaptivity(
        add_remove_cases(count=args.disks, base=args.base, step=args.step),
        lambda bins: RedundantShare(bins, copies=args.copies),
        balls=args.balls,
    )
    print(f"{'case':<16}{'used':>10}{'replaced':>10}{'factor':>9}")
    for result in results:
        print(
            f"{result.label:<16}{result.used:>10}{result.replaced:>10}"
            f"{result.factor:>9.2f}"
        )
    print(f"\npaper bound for k={args.copies}: {args.copies ** 2}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Dynamic and Redundant Data Placement (ICDCS 2007) — "
            "Redundant Share experiments"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, capacities=True):
        if capacities:
            p.add_argument(
                "--capacities",
                default="500,600,700,800,900,1000,1100,1200",
                help="comma-separated bin capacities",
            )
            p.add_argument("--prefix", default="bin", help="bin name prefix")
        p.add_argument("--copies", type=int, default=2, help="replication k")

    def strategy_opt(p):
        p.add_argument(
            "--strategy-opt",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="per-strategy option from the registry schema "
            "(repeatable), e.g. --strategy-opt service_rates=4,2,1 or "
            "--strategy-opt resolution=128",
        )

    p_cap = sub.add_parser("capacity", help="Lemma 2.1/2.2 capacity report")
    common(p_cap)
    p_cap.set_defaults(func=cmd_capacity)

    p_place = sub.add_parser("place", help="show placements")
    common(p_place)
    p_place.add_argument("--strategy", default="redundant-share")
    strategy_opt(p_place)
    p_place.add_argument("--address", type=int, default=0)
    p_place.add_argument("--count", type=int, default=10)
    p_place.set_defaults(func=cmd_place)

    p_fair = sub.add_parser("fairness", help="empirical fairness")
    common(p_fair)
    p_fair.add_argument("--strategy", default="redundant-share")
    strategy_opt(p_fair)
    p_fair.add_argument("--balls", type=int, default=50_000)
    p_fair.set_defaults(func=cmd_fairness)

    p_cmp = sub.add_parser("compare", help="compare all strategies")
    common(p_cmp)
    p_cmp.add_argument("--balls", type=int, default=30_000)
    p_cmp.set_defaults(func=cmd_compare)

    p_growth = sub.add_parser("growth", help="Figure 2/4 growth experiment")
    p_growth.add_argument("--copies", type=int, default=2)
    p_growth.add_argument("--base", type=int, default=5000)
    p_growth.add_argument("--step", type=int, default=1000)
    p_growth.add_argument("--balls", type=int, default=20_000)
    p_growth.set_defaults(func=cmd_growth)

    p_dur = sub.add_parser("durability", help="MTTDL per redundancy scheme")
    p_dur.add_argument("--mttf", type=float, default=1000.0)
    p_dur.add_argument("--mttr", type=float, default=1.0)
    p_dur.set_defaults(func=cmd_durability)

    p_stats = sub.add_parser(
        "stats", help="observability snapshot + fairness acceptance"
    )
    common(p_stats)
    p_stats.add_argument("--strategy", default="redundant-share")
    strategy_opt(p_stats)
    p_stats.add_argument("--balls", type=int, default=20_000)
    p_stats.add_argument(
        "--alpha", type=float, default=0.01,
        help="false-positive rate of the acceptance tests",
    )
    p_stats.add_argument("--seed", type=int, default=0)
    p_stats.add_argument(
        "--jsonl", default="", help="also stream trace events to this file"
    )
    p_stats.add_argument(
        "--blocks", type=int, default=200,
        help="blocks written in the instrumented cluster exercise",
    )
    p_stats.add_argument(
        "--no-exercise", dest="exercise", action="store_false",
        help="skip the cluster/rebalance/failure exercise",
    )
    p_stats.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when a fairness test rejects",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injection run with recovery report"
    )
    p_chaos.add_argument(
        "--capacities",
        default="500,600,700,800,900,1000",
        help="comma-separated device capacities (relative; auto-scaled)",
    )
    p_chaos.add_argument("--prefix", default="dev", help="device name prefix")
    p_chaos.add_argument("--copies", type=int, default=3, help="replication k")
    p_chaos.add_argument(
        "--strategy", default=None,
        help="placement strategy (default: redundant-share; striping "
        "with --fleet)",
    )
    strategy_opt(p_chaos)
    p_chaos.add_argument(
        "--blocks", type=int, default=None,
        help="block population (default: 120; 1000000 with --fleet)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=None,
        help="chaos seed (default: $REPRO_CHAOS_SEED or 0)",
    )
    p_chaos.add_argument(
        "--schedule", default="",
        help='JSON fault-schedule file ({"faults": [...]}); overrides the '
        "generated schedule",
    )
    p_chaos.add_argument("--duration", type=float, default=20.0)
    p_chaos.add_argument("--crashes", type=int, default=1)
    p_chaos.add_argument("--outages", type=int, default=1)
    p_chaos.add_argument("--flaky", type=int, default=1)
    p_chaos.add_argument(
        "--error-rate", type=float, default=0.3,
        help="per-attempt failure probability of flaky devices",
    )
    p_chaos.add_argument(
        "--latency", type=float, default=0.25,
        help="extra time units per attempt touching a flaky device",
    )
    p_chaos.add_argument(
        "--rate", type=float, default=8.0, help="repairs per time unit"
    )
    p_chaos.add_argument("--max-attempts", type=int, default=5)
    p_chaos.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-task repair budget before giving up",
    )
    p_chaos.add_argument("--backoff-base", type=float, default=0.5)
    p_chaos.add_argument("--backoff-factor", type=float, default=2.0)
    p_chaos.add_argument("--backoff-max", type=float, default=8.0)
    p_chaos.add_argument(
        "--replacement-delay", type=float, default=1.0,
        help="time until a crashed device's blank replacement arrives",
    )
    p_chaos.add_argument(
        "--allow-degraded", action="store_true",
        help="accept Lemma-2.1-infeasible shrinks instead of aborting",
    )
    p_chaos.add_argument(
        "--alpha", type=float, default=0.01,
        help="false-positive rate of the post-repair fairness test",
    )
    p_chaos.add_argument(
        "--jsonl", default="", help="also stream trace events to this file"
    )
    p_chaos.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on data loss or fairness rejection (with "
        "--fleet: data loss or a mean-field fit beyond --tv-tolerance)",
    )
    fleet = p_chaos.add_argument_group(
        "fleet mode",
        "columnar fleet-scale simulator (--fleet): thousands of devices "
        "x millions of blocks over simulated years, validated against "
        "the mean-field replication model",
    )
    fleet.add_argument(
        "--fleet", action="store_true",
        help="run the columnar fleet simulator instead of the "
        "event-driven controller",
    )
    fleet.add_argument(
        "--devices", type=int, default=1000, help="fleet size (uniform)"
    )
    fleet.add_argument(
        "--years", type=float, default=10.0, help="simulated horizon"
    )
    fleet.add_argument(
        "--epochs-per-year", type=int, default=365,
        help="epoch resolution (dt = 1/epochs-per-year years)",
    )
    fleet.add_argument(
        "--failure-rate", type=float, default=0.08,
        help="device failures per device-year",
    )
    fleet.add_argument(
        "--repair-rate", type=float, default=5000.0,
        help="fleet-wide share rebuilds per epoch",
    )
    fleet.add_argument(
        "--device-capacity", type=int, default=100,
        help="uniform per-device capacity (relative units)",
    )
    fleet.add_argument(
        "--sample-every", type=int, default=0,
        help="epochs between samples (0 = auto, ~120 samples)",
    )
    fleet.add_argument(
        "--phase", default="",
        help="comma-separated repair rates for a durability-vs-repair "
        "phase diagram",
    )
    fleet.add_argument(
        "--tv-tolerance", type=float, default=0.05,
        help="--strict gate on the steady-state vs mean-field "
        "total-variation distance",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_serve = sub.add_parser(
        "serve", help="serve placement + block storage over TCP"
    )
    p_serve.add_argument(
        "--capacities",
        default="500,600,700,800",
        help="comma-separated device capacities (one blockstore each)",
    )
    p_serve.add_argument("--prefix", default="store", help="device name prefix")
    p_serve.add_argument("--copies", type=int, default=3, help="replication k")
    p_serve.add_argument("--strategy", default="redundant-share")
    strategy_opt(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="metastore port; blockstores bind port+1..port+N "
        "(0 = OS-assigned everywhere)",
    )
    p_serve.add_argument(
        "--ready-file", default="",
        help="write the metastore host:port here once listening "
        "(lets scripts wait for readiness)",
    )
    p_serve.add_argument(
        "--jsonl", default="", help="stream trace events to this file"
    )
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "client", help="talk to a running repro serve instance"
    )
    p_client.add_argument(
        "action", choices=("ping", "where", "put", "get", "metrics"),
        help="what to do",
    )
    p_client.add_argument(
        "--connect", required=True, help="metastore endpoint, host:port"
    )
    p_client.add_argument("--address", type=int, default=None)
    p_client.add_argument(
        "--payload", default=None, help="UTF-8 payload for put"
    )
    p_client.add_argument(
        "--read-policy", default="primary",
        help="copy-selection policy for get (see 'repro sched')",
    )
    p_client.add_argument("--read-seed", type=int, default=0)
    p_client.set_defaults(func=cmd_client)

    p_sched = sub.add_parser(
        "sched", help="read-scheduler load balance under skewed traffic"
    )
    common(p_sched)
    p_sched.add_argument("--strategy", default="redundant-share")
    strategy_opt(p_sched)
    p_sched.add_argument(
        "--policy", default="all",
        help="comma-separated scheduler names (aliases ok), or 'all'",
    )
    p_sched.add_argument(
        "--workload", choices=("zipf", "uniform", "flash-crowd"),
        default="zipf",
    )
    p_sched.add_argument(
        "--alpha", type=float, default=1.1, help="zipf skew exponent"
    )
    p_sched.add_argument("--requests", type=int, default=100_000)
    p_sched.add_argument(
        "--universe", type=int, default=2000,
        help="distinct block addresses in the workload",
    )
    p_sched.add_argument("--seed", type=int, default=0)
    p_sched.add_argument(
        "--cache", type=int, default=0,
        help="per-device LRU cache capacity in blocks (0 = no cache model)",
    )
    p_sched.add_argument(
        "--hit-cost", type=float, default=0.25,
        help="load units a cache hit costs (misses cost 1.0)",
    )
    p_sched.set_defaults(func=cmd_sched)

    p_adapt = sub.add_parser("adaptivity", help="Figure 3 experiment")
    common(p_adapt, capacities=False)
    p_adapt.add_argument("--disks", type=int, default=8)
    p_adapt.add_argument("--base", type=int, default=5000)
    p_adapt.add_argument("--step", type=int, default=1000)
    p_adapt.add_argument("--balls", type=int, default=20_000)
    p_adapt.set_defaults(func=cmd_adaptivity)

    return parser


def main(argv: Sequence[str] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
