"""Availability ledger: which devices can serve I/O right now.

The cluster layer only knows ACTIVE vs FAILED, and :meth:`StorageDevice.fail`
destroys contents — correct for permanent crashes, wrong for transient
outages where the data survives but the device is unreachable.  The chaos
subsystem therefore keeps its own :class:`HealthLedger` on top: a device can
be ONLINE, OFFLINE (outage — data intact, do not touch), FLAKY (serving,
but with an error/latency profile), or CRASHED (mirrors the cluster's
FAILED state until the replacement arrives).

The ledger is bookkeeping only; it never mutates devices itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


class HealthState(enum.Enum):
    """Chaos-layer view of one device's availability."""

    ONLINE = "online"
    OFFLINE = "offline"
    FLAKY = "flaky"
    CRASHED = "crashed"


@dataclass(frozen=True)
class FlakyProfile:
    """Error behaviour of a device in the FLAKY state.

    Attributes:
        error_rate: Probability in [0, 1) that one operation against the
            device fails and must be retried.
        latency: Extra time units each operation costs.
    """

    error_rate: float
    latency: float = 0.0


class HealthLedger:
    """Tracks availability for a set of devices.

    Devices unknown to the ledger are treated as ONLINE, so the ledger
    only needs entries for devices a fault has touched.
    """

    def __init__(self, device_ids: Iterable[str] = ()) -> None:
        self._states: Dict[str, HealthState] = {
            device_id: HealthState.ONLINE for device_id in device_ids
        }
        self._profiles: Dict[str, FlakyProfile] = {}

    def state(self, device_id: str) -> HealthState:
        """Current state (ONLINE when the device was never marked)."""
        return self._states.get(device_id, HealthState.ONLINE)

    def available(self, device_id: str) -> bool:
        """True when the device can serve reads/writes (maybe flakily)."""
        return self.state(device_id) in (HealthState.ONLINE, HealthState.FLAKY)

    def profile(self, device_id: str) -> Optional[FlakyProfile]:
        """The flaky profile, or None unless the device is FLAKY."""
        if self.state(device_id) is HealthState.FLAKY:
            return self._profiles.get(device_id)
        return None

    def mark_online(self, device_id: str) -> None:
        """Return a device to full health (clears any flaky profile)."""
        self._states[device_id] = HealthState.ONLINE
        self._profiles.pop(device_id, None)

    def mark_offline(self, device_id: str) -> None:
        """Transient outage: data intact, device unreachable."""
        self._states[device_id] = HealthState.OFFLINE
        self._profiles.pop(device_id, None)

    def mark_flaky(self, device_id: str, profile: FlakyProfile) -> None:
        """Device serves, but each operation may fail per ``profile``."""
        self._states[device_id] = HealthState.FLAKY
        self._profiles[device_id] = profile

    def mark_crashed(self, device_id: str) -> None:
        """Permanent failure (until the replacement is swapped in)."""
        self._states[device_id] = HealthState.CRASHED
        self._profiles.pop(device_id, None)

    def forget(self, device_id: str) -> None:
        """Drop a decommissioned device from the ledger."""
        self._states.pop(device_id, None)
        self._profiles.pop(device_id, None)

    def unavailable(self) -> List[str]:
        """Sorted ids of devices that cannot serve right now."""
        return sorted(
            device_id
            for device_id, state in self._states.items()
            if state in (HealthState.OFFLINE, HealthState.CRASHED)
        )
