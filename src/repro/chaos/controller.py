"""The chaos controller: drive a cluster through a fault schedule.

:class:`ChaosController` owns a discrete-event :class:`Simulator` and plays
a :class:`FaultSchedule` against a live :class:`Cluster`:

* **crash** — the device fails (contents lost), a blank replacement
  arrives after ``replacement_delay``, and every lost share enters the
  priority :class:`RepairQueue`; blocks whose surviving shares drop below
  the code's decode threshold are recorded as data-loss events.
* **outage / flaky** — tracked in the :class:`HealthLedger` only; reads
  and repairs route around (or retry against) the device until the
  window closes.
* **shrink** — gated on Lemma 2.1 feasibility (``k * b_0 <= B`` over the
  survivors): an infeasible shrink raises
  :class:`~repro.exceptions.InfeasibleRedundancyError` *before* any data
  moves, unless ``allow_degraded`` accepts the unfair layout.

The repair worker drains the queue at ``policy.rate`` repairs per time
unit, retrying failed attempts with exponential backoff and abandoning
tasks that exhaust ``max_attempts`` or ``timeout`` (recorded as
:class:`~repro.exceptions.RepairTimeoutError`, not raised — chaos runs
must report, not die).  A periodic sampler tracks blocks-at-risk over
time; after convergence the controller scores fairness drift with the
chi-square acceptance test and fits an empirical durability model from
the observed failure/repair rates.

Everything — fault times, victim picks, flaky error draws, queue order —
derives from ``(schedule, seed)`` via stable hashing, so one run is
exactly reproducible: same event log, same repair order, same final
block map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..analysis.durability import DurabilityModel, mttdl, observed_model
from ..capacity.clipping import is_capacity_efficient
from ..cluster.cluster import Cluster
from ..exceptions import (
    ConfigurationError,
    DecodingError,
    DeviceUnavailableError,
    InfeasibleRedundancyError,
    RepairTimeoutError,
)
from ..hashing.primitives import stable_u64
from ..metrics.stats import FairnessVerdict, chi_square_fairness, fair_copy_shares
from ..simulation.engine import Simulator
from .health import FlakyProfile, HealthLedger
from .recovery import RepairPolicy, RepairQueue, RepairTask, rebuild_share
from .schedule import FaultEvent, FaultKind, FaultSchedule

_INV_2_64 = 1.0 / float(1 << 64)


@dataclass(frozen=True)
class ChaosOptions:
    """Tuning for one chaos run.

    Attributes:
        seed: Seeds every derived draw (flaky errors); the schedule brings
            its own times/victims.
        policy: Repair worker knobs (rate, retries, backoff, timeout).
        replacement_delay: Time between a crash and its blank replacement
            coming online.
        sample_interval: Spacing of blocks-at-risk samples.
        allow_degraded: Accept Lemma-2.1-infeasible shrinks instead of
            raising (the layout stays redundant but can no longer be
            capacity-fair).
        alpha: False-positive rate for the post-run fairness test.
    """

    seed: int = 0
    policy: RepairPolicy = field(default_factory=RepairPolicy)
    replacement_delay: float = 1.0
    sample_interval: float = 1.0
    allow_degraded: bool = False
    alpha: float = 0.01

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            # A zero interval would make the sampler reschedule itself at
            # the same instant forever while any fault window is open.
            raise ConfigurationError("sample_interval must be positive")
        if self.replacement_delay < 0:
            raise ConfigurationError("replacement_delay must be >= 0")
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError("alpha must be in (0, 1)")


@dataclass(frozen=True)
class LossEvent:
    """One unrecoverable block.

    Attributes:
        time: When the loss became certain.
        address: The block.
        survivors: Readable shares left (below the decode threshold).
    """

    time: float
    address: int
    survivors: int


@dataclass
class ChaosReport:
    """Everything a chaos run measured.

    Attributes:
        horizon: Final simulation time (faults injected, queue drained).
        faults: Faults injected, by kind name.
        samples: ``(time, blocks_at_risk, queue_depth)`` over the run.
        loss_events: Blocks that became unrecoverable.
        repair_order: ``(address, position)`` in completion order — the
            determinism tests diff this across runs.
        attempts: Repair attempts started.
        retries: Attempts that failed and were rescheduled.
        abandoned: Tasks given up after exhausting retries/timeout.
        completed: Shares successfully re-replicated.
        mean_repair_latency: Mean enqueue-to-completion time (0 if none).
        fairness: Post-convergence chi-square verdict (None if the pool
            got too small to test).
        durability: Model fitted from the observed failure/repair rates
            (None without a permanent failure to fit).
    """

    horizon: float = 0.0
    faults: Dict[str, int] = field(default_factory=dict)
    samples: List[Tuple[float, int, int]] = field(default_factory=list)
    loss_events: List[LossEvent] = field(default_factory=list)
    repair_order: List[Tuple[int, int]] = field(default_factory=list)
    attempts: int = 0
    retries: int = 0
    abandoned: List[RepairTimeoutError] = field(default_factory=list)
    completed: int = 0
    mean_repair_latency: float = 0.0
    fairness: Optional[FairnessVerdict] = None
    durability: Optional[DurabilityModel] = None

    @property
    def data_loss(self) -> bool:
        """True when any block became unrecoverable."""
        return bool(self.loss_events)

    @property
    def repair_throughput(self) -> float:
        """Completed repairs per time unit over the whole run."""
        if self.horizon <= 0:
            return 0.0
        return self.completed / self.horizon

    @property
    def peak_at_risk(self) -> int:
        """Worst blocks-at-risk sample."""
        return max((sample[1] for sample in self.samples), default=0)

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"horizon              {self.horizon:.2f}",
            "faults               "
            + (
                ", ".join(
                    f"{kind}={count}" for kind, count in sorted(self.faults.items())
                )
                or "none"
            ),
            f"blocks lost          {len(self.loss_events)}",
            f"peak blocks at risk  {self.peak_at_risk}",
            f"repairs completed    {self.completed} "
            f"({self.attempts} attempts, {self.retries} retries, "
            f"{len(self.abandoned)} abandoned)",
            f"repair throughput    {self.repair_throughput:.2f}/unit, "
            f"mean latency {self.mean_repair_latency:.2f}",
        ]
        if self.fairness is not None:
            lines.append(f"fairness             {self.fairness.summary()}")
        if self.durability is not None:
            lines.append(
                f"observed durability  MTTF={self.durability.mttf:.1f} "
                f"MTTR={self.durability.mttr:.2f} "
                f"=> MTTDL~{mttdl(self.durability):.0f}"
            )
        return "\n".join(lines)


class ChaosController:
    """Runs one fault schedule to convergence against a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        schedule: FaultSchedule,
        options: Optional[ChaosOptions] = None,
    ) -> None:
        self._cluster = cluster
        self._schedule = schedule
        self._options = options or ChaosOptions()
        self._sim = Simulator()
        self._ledger = HealthLedger(cluster.device_ids())
        self._queue = RepairQueue()
        self._report = ChaosReport()
        self._worker_busy = False
        self._open_windows = 0  # outage/flaky windows + pending replacements
        self._attempt_seq = 0  # global counter feeding the flaky error draws
        self._task_attempts: Dict[Tuple[int, int, str], int] = {}
        self._lost_blocks: Set[int] = set()
        self._crash_times: Dict[str, float] = {}
        self._crash_pending: Dict[str, Set[Tuple[int, int]]] = {}
        self._repair_durations: List[float] = []
        self._latencies: List[float] = []
        self._initial_devices = len(cluster.device_ids())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> ChaosReport:
        """Play the schedule, drain repairs, score the aftermath.

        Raises:
            InfeasibleRedundancyError: if a shrink would violate Lemma 2.1
                and ``allow_degraded`` is off.
        """
        for event in self._schedule:
            self._open_windows += 1
            self._sim.schedule_at(
                event.time, lambda event=event: self._inject(event)
            )
        self._sim.schedule(self._options.sample_interval, self._sample)
        self._sim.run()
        self._finish()
        return self._report

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def _inject(self, event: FaultEvent) -> None:
        kind = event.kind.value
        self._report.faults[kind] = self._report.faults.get(kind, 0) + 1
        self._cluster.log.record(
            "chaos-fault", fault=kind, device=event.device_id
        )
        sink = obs.sink()
        if sink.enabled:
            registry = obs.metrics()
            registry.counter("chaos.faults").add(1)
            registry.counter(f"chaos.{kind}").add(1)
            sink.emit(
                "chaos.fault",
                fault=kind,
                device=event.device_id,
                time=self._sim.now,
            )
        if event.kind is FaultKind.CRASH:
            self._crash(event)
        elif event.kind is FaultKind.OUTAGE:
            self._ledger.mark_offline(event.device_id)
            self._sim.schedule(
                event.duration, lambda: self._window_closes(event.device_id)
            )
            return  # window still open
        elif event.kind is FaultKind.FLAKY:
            self._ledger.mark_flaky(
                event.device_id,
                FlakyProfile(event.error_rate, event.latency),
            )
            self._sim.schedule(
                event.duration, lambda: self._window_closes(event.device_id)
            )
            return  # window still open
        elif event.kind is FaultKind.SHRINK:
            self._shrink(event.device_id)
            self._open_windows -= 1

    def _window_closes(self, device_id: str) -> None:
        self._ledger.mark_online(device_id)
        self._open_windows -= 1
        self._cluster.log.record("chaos-window-closed", device=device_id)
        self._kick_worker()  # shares on this device are reachable again

    def _crash(self, event: FaultEvent) -> None:
        device_id = event.device_id
        self._ledger.mark_crashed(device_id)
        self._cluster.fail_device(device_id)
        self._crash_times[device_id] = self._sim.now
        # Survey the damage: every share mapped to the device is gone;
        # blocks that fell below the decode threshold are lost for good.
        for address, position in self._cluster.shares_on(device_id):
            if address in self._lost_blocks:
                continue
            survivors = self._readable_shares(address)
            if survivors < self._cluster.code.data_shares:
                self._record_loss(address, survivors)
        # The blank replacement arrives later; repairs queue up then
        # (there is nowhere to write the rebuilt shares before that).
        self._sim.schedule(
            self._options.replacement_delay,
            lambda: self._replace(device_id),
        )

    def _replace(self, device_id: str) -> None:
        self._cluster.device(device_id).replace()
        self._ledger.mark_online(device_id)
        repair_time = self._crash_times.get(device_id)
        pending: Set[Tuple[int, int]] = set()
        for address, position in self._cluster.shares_on(device_id):
            if address in self._lost_blocks:
                continue
            task = RepairTask(
                address=address,
                position=position,
                device_id=device_id,
                survivors=self._readable_shares(address),
                enqueued_at=self._sim.now,
            )
            self._queue.push(task)
            pending.add((address, position))
        self._crash_pending[device_id] = pending
        if not pending and repair_time is not None:
            # Empty device: the "repair" is instant.
            self._repair_durations.append(self._sim.now - repair_time)
        self._open_windows -= 1
        self._cluster.log.record(
            "chaos-replacement", device=device_id, queued=len(pending)
        )
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().counter("chaos.replacements").add(1)
            sink.emit(
                "chaos.replacement",
                device=device_id,
                queued=len(pending),
                time=self._sim.now,
            )
        self._kick_worker()

    def _shrink(self, device_id: str) -> None:
        copies = self._cluster.code.total_shares
        capacities = sorted(
            (
                capacity
                for other_id, capacity in self._cluster.stats().capacities.items()
                if other_id != device_id
            ),
            reverse=True,
        )
        feasible = (
            len(capacities) >= copies
            and is_capacity_efficient(capacities, copies)
        )
        if not feasible and not self._options.allow_degraded:
            raise InfeasibleRedundancyError(
                f"removing {device_id!r} leaves {len(capacities)} devices "
                f"(largest={capacities[0] if capacities else 0}) which cannot "
                f"hold {copies} fair copies (Lemma 2.1: k*b_0 <= B fails); "
                f"pass allow_degraded to force the shrink"
            )
        self._ledger.forget(device_id)
        self._cluster.remove_device(device_id)

    # ------------------------------------------------------------------
    # Repair worker
    # ------------------------------------------------------------------

    def _kick_worker(self) -> None:
        if not self._worker_busy and self._queue:
            self._worker_busy = True
            self._sim.schedule(self._options.policy.interval, self._work)

    def _work(self) -> None:
        policy = self._options.policy
        if not self._queue:
            self._worker_busy = False
            return
        task = self._queue.pop()
        extra_latency = 0.0
        if self._sim.now - task.enqueued_at > policy.timeout:
            self._abandon(task, self._task_attempts.get(self._key(task), 0))
        else:
            extra_latency = self._attempt(task)
        if self._queue:
            self._sim.schedule(policy.interval + extra_latency, self._work)
        else:
            self._worker_busy = False

    @staticmethod
    def _key(task: RepairTask) -> Tuple[int, int, str]:
        return (task.address, task.position, task.device_id)

    def _attempt(self, task: RepairTask) -> float:
        """Run one repair attempt; returns extra latency it incurred."""
        policy = self._options.policy
        key = self._key(task)
        attempt = self._task_attempts.get(key, 0) + 1
        self._task_attempts[key] = attempt
        self._attempt_seq += 1
        self._report.attempts += 1
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().counter("chaos.repair.attempts").add(1)

        device = self._cluster.device(task.device_id)
        # A repair touches the target *and* the survivor sources; any
        # flaky participant can fail the attempt and adds its latency.
        error_rate, latency = self._flaky_exposure(task)

        if not self._ledger.available(task.device_id) or not device.is_active:
            self._retry(task, attempt, reason="target-unavailable")
            return latency
        if error_rate > 0.0 and self._flaky_error(task, error_rate):
            self._retry(task, attempt, reason="flaky-error")
            return latency
        try:
            payload = rebuild_share(self._cluster, task, self._ledger)
        except DeviceUnavailableError:
            self._retry(task, attempt, reason="survivors-unavailable")
            return latency
        except DecodingError:
            self._record_loss(task.address, self._readable_shares(task.address))
            return latency
        device.store((task.address, task.position), payload)
        self._complete(task)
        return latency

    def _flaky_exposure(self, task: RepairTask) -> Tuple[float, float]:
        """Worst flaky error rate / latency among the attempt's devices."""
        involved = [task.device_id]
        involved.extend(
            device_id
            for device_id in self._cluster.placement_of(task.address)
            if device_id != task.device_id
        )
        profiles = [
            profile
            for profile in (self._ledger.profile(d) for d in involved)
            if profile is not None
        ]
        if not profiles:
            return 0.0, 0.0
        return (
            max(profile.error_rate for profile in profiles),
            max(profile.latency for profile in profiles),
        )

    def _flaky_error(self, task: RepairTask, error_rate: float) -> bool:
        draw = (
            stable_u64(
                "chaos-flaky",
                self._options.seed,
                task.device_id,
                self._attempt_seq,
            )
            | 1
        ) * _INV_2_64
        return draw < error_rate

    def _retry(self, task: RepairTask, attempt: int, reason: str) -> None:
        policy = self._options.policy
        if attempt >= policy.max_attempts:
            self._abandon(task, attempt)
            return
        self._report.retries += 1
        if obs.sink().enabled:
            obs.metrics().counter("chaos.repair.retries").add(1)
        delay = policy.backoff(attempt)
        self._open_windows += 1  # keep the sampler alive until the retry

        def requeue() -> None:
            self._open_windows -= 1
            self._queue.push(task)
            self._kick_worker()

        self._sim.schedule(delay, requeue)

    def _abandon(self, task: RepairTask, attempts: int) -> None:
        error = RepairTimeoutError(
            task.device_id, task.address, task.position, attempts
        )
        self._report.abandoned.append(error)
        self._crash_pending.get(task.device_id, set()).discard(
            (task.address, task.position)
        )
        self._cluster.log.record(
            "chaos-repair-timeout",
            device=task.device_id,
            address=task.address,
            position=task.position,
            attempts=attempts,
        )
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().counter("chaos.repair.timeouts").add(1)
            sink.emit(
                "chaos.repair_timeout",
                device=task.device_id,
                address=task.address,
                position=task.position,
                attempts=attempts,
            )

    def _complete(self, task: RepairTask) -> None:
        latency = self._sim.now - task.enqueued_at
        self._latencies.append(latency)
        self._report.completed += 1
        self._report.repair_order.append((task.address, task.position))
        self._task_attempts.pop(self._key(task), None)
        pending = self._crash_pending.get(task.device_id)
        if pending is not None:
            pending.discard((task.address, task.position))
            if not pending:
                crash_time = self._crash_times.get(task.device_id)
                if crash_time is not None:
                    self._repair_durations.append(self._sim.now - crash_time)
        self._cluster.log.record(
            "chaos-repair",
            device=task.device_id,
            address=task.address,
            position=task.position,
        )
        sink = obs.sink()
        if sink.enabled:
            registry = obs.metrics()
            registry.counter("chaos.repair.completed").add(1)
            registry.histogram("chaos.repair.latency").observe(latency)
            sink.emit(
                "chaos.repair",
                device=task.device_id,
                address=task.address,
                position=task.position,
                latency=latency,
            )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def _readable_shares(self, address: int) -> int:
        """Shares of a block that are on available, holding devices."""
        placement = self._cluster.placement_of(address)
        readable = 0
        for position, device_id in enumerate(placement):
            if not self._ledger.available(device_id):
                continue
            try:
                device = self._cluster.device(device_id)
            except Exception:
                continue
            if device.is_active and device.holds((address, position)):
                readable += 1
        return readable

    def _blocks_at_risk(self) -> int:
        """Blocks currently missing at least one readable share."""
        copies = self._cluster.code.total_shares
        return sum(
            1
            for address in self._cluster.addresses()
            if self._readable_shares(address) < copies
        )

    def _record_loss(self, address: int, survivors: int) -> None:
        if address in self._lost_blocks:
            return
        self._lost_blocks.add(address)
        event = LossEvent(
            time=self._sim.now, address=address, survivors=survivors
        )
        self._report.loss_events.append(event)
        self._cluster.log.record(
            "chaos-loss", address=address, survivors=survivors
        )
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().counter("chaos.blocks_lost").add(1)
            sink.emit(
                "chaos.loss",
                address=address,
                survivors=survivors,
                time=self._sim.now,
            )

    def _record_sample(self) -> None:
        """Take one blocks-at-risk sample and mirror it to the sink.

        Used by the periodic sampler *and* by :meth:`_finish` — a run
        shorter than ``sample_interval`` still produces a final
        ``chaos.sample`` trace event instead of being invisible in
        ``--jsonl`` output.
        """
        at_risk = self._blocks_at_risk()
        depth = len(self._queue)
        self._report.samples.append((self._sim.now, at_risk, depth))
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().histogram("chaos.blocks_at_risk").observe(at_risk)
            sink.emit(
                "chaos.sample",
                time=self._sim.now,
                at_risk=at_risk,
                queue_depth=depth,
            )

    def _sample(self) -> None:
        self._record_sample()
        # Keep sampling while anything can still change: open fault
        # windows / pending replacements, queued repairs, or a busy
        # worker.  Otherwise let the simulation drain and stop.
        if self._open_windows > 0 or self._queue or self._worker_busy:
            self._sim.schedule(self._options.sample_interval, self._sample)

    def _finish(self) -> None:
        self._report.horizon = max(self._sim.now, self._schedule.duration)
        self._record_sample()
        if self._latencies:
            self._report.mean_repair_latency = sum(self._latencies) / len(
                self._latencies
            )
        self._report.fairness = self._fairness_verdict()
        self._report.durability = self._fit_durability()
        sink = obs.sink()
        if sink.enabled:
            sink.emit(
                "chaos.finished",
                horizon=self._report.horizon,
                completed=self._report.completed,
                lost=len(self._report.loss_events),
            )

    def _fairness_verdict(self) -> Optional[FairnessVerdict]:
        stats = self._cluster.stats()
        active = {
            device_id: used
            for device_id, used in stats.devices.items()
            if self._cluster.device(device_id).is_active
        }
        if len(active) < 2 or sum(active.values()) == 0:
            return None
        capacities = {
            device_id: float(stats.capacities[device_id])
            for device_id in active
        }
        expected = fair_copy_shares(
            capacities, self._cluster.code.total_shares
        )
        return chi_square_fairness(active, expected, alpha=self._options.alpha)

    def _fit_durability(self) -> Optional[DurabilityModel]:
        crashes = self._report.faults.get(FaultKind.CRASH.value, 0)
        if crashes < 1 or not self._repair_durations:
            return None
        mean_repair = sum(self._repair_durations) / len(self._repair_durations)
        if mean_repair <= 0:
            # Zero elapsed repair time (e.g. an empty device crashing
            # with replacement_delay=0): there is no repair rate to fit.
            return None
        try:
            return observed_model(
                devices=self._initial_devices,
                tolerance=self._cluster.code.tolerance,
                failures=crashes,
                horizon=self._report.horizon,
                mean_repair_time=mean_repair,
            )
        except ValueError:
            return None


def run_chaos(
    cluster: Cluster,
    schedule: FaultSchedule,
    options: Optional[ChaosOptions] = None,
) -> ChaosReport:
    """Convenience wrapper: build a controller and run it once."""
    return ChaosController(cluster, schedule, options).run()
