"""Fault-injection and recovery: chaos runs against the cluster simulator.

The subsystem splits into four layers:

* :mod:`repro.chaos.schedule` — seeded, serialisable fault schedules
  (crash / outage / flaky / shrink).
* :mod:`repro.chaos.health` — the availability ledger that distinguishes
  transient unavailability from permanent loss.
* :mod:`repro.chaos.recovery` — the priority repair queue, retry/backoff
  policy, and degraded-read resolution.
* :mod:`repro.chaos.controller` — the discrete-event controller that ties
  them together and reports blocks-at-risk, losses, repair throughput and
  post-repair fairness drift.
* :mod:`repro.chaos.fleet` — the columnar fleet-scale simulator
  (thousands of devices x millions of blocks over simulated years) with
  mean-field durability validation; cross-checked against the
  event-driven controller for loss accounting.

The ``repro chaos`` CLI subcommand is a thin front-end over
:func:`run_chaos`.
"""

from .controller import (
    ChaosController,
    ChaosOptions,
    ChaosReport,
    LossEvent,
    run_chaos,
)
from .fleet import (
    FleetOptions,
    FleetReport,
    FleetSample,
    FleetSimulator,
    PhasePoint,
    crash_epochs,
    durability_phase_diagram,
    run_fleet,
)
from .health import FlakyProfile, HealthLedger, HealthState
from .recovery import (
    DegradedReadResult,
    RepairPolicy,
    RepairQueue,
    RepairTask,
    degraded_read,
    gather_shares,
    rebuild_share,
)
from .schedule import FaultEvent, FaultKind, FaultSchedule, generate_schedule

__all__ = [
    "ChaosController",
    "ChaosOptions",
    "ChaosReport",
    "DegradedReadResult",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "FlakyProfile",
    "FleetOptions",
    "FleetReport",
    "FleetSample",
    "FleetSimulator",
    "HealthLedger",
    "HealthState",
    "LossEvent",
    "PhasePoint",
    "RepairPolicy",
    "RepairQueue",
    "RepairTask",
    "crash_epochs",
    "degraded_read",
    "durability_phase_diagram",
    "gather_shares",
    "generate_schedule",
    "rebuild_share",
    "run_chaos",
    "run_fleet",
]
