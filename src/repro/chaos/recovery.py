"""Recovery pipeline: priority re-replication and degraded reads.

Two pieces:

* :class:`RepairQueue` — a priority queue of lost shares, ordered by how
  many survivors their block still has (fewest first), so the blocks
  closest to data loss are re-replicated before comfortably-redundant
  ones.  Ties break on (address, position, arrival), keeping the drain
  order a pure function of the queue contents.
* :func:`degraded_read` — resolve a block while devices are down by
  falling back across the ``k`` copy positions via ``place_copy``,
  collecting shares from whatever available devices hold them until the
  erasure code can decode.

:class:`RepairPolicy` carries the knobs the controller's repair worker
uses: global repair rate, per-task retry budget with exponential backoff
(for flaky targets), and a wall-clock timeout after which the task is
abandoned with a :class:`~repro.exceptions.RepairTimeoutError`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..exceptions import ConfigurationError, DeviceUnavailableError
from .health import HealthLedger


@dataclass(frozen=True)
class RepairTask:
    """One share to re-replicate.

    Attributes:
        address: Block address of the lost share.
        position: Copy position (0-based) of the lost share.
        device_id: Device the share must be rebuilt onto.
        survivors: Shares of the block still readable when the task was
            enqueued — the priority key (fewer survivors = more urgent).
        enqueued_at: Simulation time the task entered the queue (feeds the
            timeout check and the repair-latency histogram).
    """

    address: int
    position: int
    device_id: str
    survivors: int
    enqueued_at: float


class RepairQueue:
    """Min-heap of repair tasks, most-endangered block first."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, int, RepairTask]] = []
        self._arrival = itertools.count()

    def push(self, task: RepairTask) -> None:
        """Enqueue a task at priority ``(survivors, address, position)``."""
        heapq.heappush(
            self._heap,
            (
                task.survivors,
                task.address,
                task.position,
                next(self._arrival),
                task,
            ),
        )

    def pop(self) -> RepairTask:
        """Dequeue the most urgent task.

        Raises:
            IndexError: when the queue is empty.
        """
        return heapq.heappop(self._heap)[-1]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True)
class RepairPolicy:
    """Knobs for the rate-limited repair worker.

    Attributes:
        rate: Repairs attempted per time unit (global limit; the worker
            spaces attempts ``1 / rate`` apart).
        max_attempts: Attempts per task before giving up.
        timeout: Wall-clock budget per task (from enqueue to completion);
            exceeded tasks are abandoned as timed out.
        backoff_base: Delay before the first retry.
        backoff_factor: Multiplier applied per subsequent retry.
        backoff_max: Ceiling on any single backoff delay.
    """

    rate: float = 8.0
    max_attempts: int = 5
    timeout: float = 30.0
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 8.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("repair rate must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if (
            self.backoff_base <= 0
            or self.backoff_factor < 1
            or self.backoff_max < self.backoff_base
        ):
            raise ConfigurationError(
                "backoff needs base > 0, factor >= 1, max >= base"
            )

    @property
    def interval(self) -> float:
        """Spacing between repair attempts, ``1 / rate``."""
        return 1.0 / self.rate

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), clamped.

        Exponential: ``base * factor**(attempt - 1)``, capped at
        ``backoff_max``.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )


@dataclass
class DegradedReadResult:
    """What a degraded read saw.

    Attributes:
        payload: The decoded block.
        shares_used: Shares gathered to decode.
        positions_skipped: Copy positions skipped because their device was
            unavailable (the degradation being measured).
    """

    payload: bytes
    shares_used: int
    positions_skipped: List[int] = field(default_factory=list)


def gather_shares(
    cluster: Cluster,
    address: int,
    ledger: HealthLedger,
    *,
    need: Optional[int] = None,
    scheduler=None,
) -> Tuple[Dict[int, bytes], List[int]]:
    """Collect readable shares of a block, routing around sick devices.

    Walks copy positions — ``0..k-1`` by default, or in the preferred
    order of a :class:`repro.scheduling.base.ReadScheduler` when one is
    passed (its availability mask is first synced from the ledger, so a
    freshly-crashed device stops being chosen on the very next read) —
    resolving each through the current strategy's ``place_copy`` and
    falling back to the recorded placement when the map disagrees (a
    lazy rebalance in flight).  Stops early once ``need`` shares are
    gathered.

    Returns:
        ``(shares, skipped)``: payloads by position, and the positions
        whose device was unavailable.
    """
    placement = cluster.placement_of(address)
    shares: Dict[int, bytes] = {}
    skipped: List[int] = []
    positions = range(len(placement))
    if scheduler is not None:
        for device_id in placement:
            if ledger.available(device_id):
                scheduler.mark_online(device_id)
            else:
                scheduler.mark_offline(device_id)
        try:
            positions = scheduler.order(address, placement)
        except DeviceUnavailableError:
            # Nothing schedulable; fall through to the plain walk so the
            # caller still gets an accurate skipped-positions report.
            positions = range(len(placement))
    for position in positions:
        if need is not None and len(shares) >= need:
            break
        candidates = [cluster.strategy.place_copy(address, position)]
        if placement[position] not in candidates:
            candidates.append(placement[position])
        found = False
        for device_id in candidates:
            try:
                device = cluster.device(device_id)
            except Exception:  # device left the configuration
                continue
            if not ledger.available(device_id) or not device.is_active:
                continue
            if device.holds((address, position)):
                shares[position] = device.fetch((address, position))
                found = True
                break
        if not found and not any(
            ledger.available(candidate) for candidate in candidates
        ):
            skipped.append(position)
    return shares, skipped


def degraded_read(
    cluster: Cluster, address: int, ledger: HealthLedger, *, scheduler=None
) -> DegradedReadResult:
    """Read a block while devices are down, degrading across positions.

    With a ``scheduler`` (see :mod:`repro.scheduling`), the preferred
    copy is read first and load is accounted against it — degraded reads
    then spread over the survivors instead of hammering position 0.

    Raises:
        BlockNotFoundError: if the block was never written.
        DeviceUnavailableError: if too few shares are reachable *because*
            devices are unavailable (retrying later may succeed).
        DecodingError: if the data is simply gone (shares lost on devices
            that are up) — retrying will not help.
    """
    need = cluster.code.data_shares
    shares, skipped = gather_shares(
        cluster, address, ledger, need=need, scheduler=scheduler
    )
    if len(shares) < need and skipped:
        raise DeviceUnavailableError(
            f"block {address}: only {len(shares)}/{need} shares reachable; "
            f"positions {skipped} are on unavailable devices"
        )
    payload = cluster.code.decode(shares)  # DecodingError if truly lost
    size = cluster.block_size_of(address)
    return DegradedReadResult(
        payload=payload[:size],
        shares_used=len(shares),
        positions_skipped=skipped,
    )


def rebuild_share(
    cluster: Cluster,
    task: RepairTask,
    ledger: HealthLedger,
) -> bytes:
    """Reconstruct the payload of one lost share from survivors.

    Raises:
        DeviceUnavailableError: when too few survivors are currently
            reachable (the caller should back off and retry).
        DecodingError: when the block is unrecoverable outright.
    """
    need = cluster.code.data_shares
    shares, skipped = gather_shares(cluster, task.address, ledger, need=need)
    if len(shares) < need and skipped:
        raise DeviceUnavailableError(
            f"cannot rebuild share ({task.address}, {task.position}): "
            f"only {len(shares)}/{need} survivors reachable"
        )
    block = cluster.code.decode(shares)
    return cluster.code.encode(block)[task.position]
