"""Columnar fleet-scale chaos: vectorized failure/repair simulation.

:class:`ChaosController` replays faults one discrete event at a time
against a live :class:`~repro.cluster.cluster.Cluster` — perfect for
validating the repair machinery on tens of devices, hopeless for a
thousand devices times a million blocks over a decade.  This module is
the columnar counterpart: block state lives in arrays (device assignment
columns from :meth:`place_many`, per-block copy counts, per-share alive
masks) and time advances in fixed *epochs* (``1 / epochs_per_year``
years each).

Per epoch:

1. **Failure draw.**  Every device fails independently with probability
   ``p = 1 - exp(-failure_rate * dt)``; the draw is one
   :func:`~repro.placement.kernels.bernoulli_indices` call on the
   SplitMix64 pipeline, so the failed-device set is a pure function of
   ``(seed, epoch)`` and bit-identical between the NumPy leg and the
   pure-Python leg (``REPRO_PURE_PYTHON=1``).  A failed device loses all
   its shares and is immediately replaced by a blank device in the same
   slot (the placement map never changes — repairs rebuild onto the
   replacement, exactly the controller's crash/replace semantics with a
   sub-epoch replacement delay).  A block whose copy count reaches zero
   is lost for good (class 0 is absorbing).
2. **Priority repair sweep.**  A budget of ``repair_rate`` share
   rebuilds per epoch (fractional budgets carry over) is spent on the
   lowest-redundancy blocks first — class 1, then class 2, ... — with
   ties broken by ascending block address, mirroring the event-driven
   :class:`~repro.chaos.recovery.RepairQueue` priority
   ``(survivors, address, position)``.  At most one share of a block is
   rebuilt per epoch (mass moves up one class), which is also what the
   mean-field recursion models.

The observed copy-count distribution is validated two ways: the
steady-state histogram (time-average over the second half of the run)
is fitted against the mean-field prediction of
:mod:`repro.analysis.mean_field` (Sun et al., PAPERS.md) by
total-variation distance, and the observed failure/repair rates feed
:func:`repro.analysis.durability.observed_model` for an empirical MTTDL
— the same fit the event-driven controller reports.

Cross-checks against the controller use :func:`crash_epochs` to map a
:class:`~repro.chaos.schedule.FaultSchedule` onto scheduled crash
epochs (one controller time unit == one epoch); with the same bins and
strategy both engines must then agree exactly on which blocks were lost
(`benchmarks/bench_table_fleet_durability.py` and the ``fleet-smoke``
CI job gate on zero divergence).
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .. import obs
from .._compat import get_numpy
from ..analysis.durability import DurabilityModel, mttdl, observed_model
from ..analysis.mean_field import mean_field_distribution, total_variation
from ..exceptions import ConfigurationError
from ..hashing.primitives import derive_base
from ..placement.kernels import bernoulli_indices
from ..placement.registry import create
from ..types import BinSpec, bins_from_capacities
from .schedule import FaultKind, FaultSchedule

__all__ = [
    "FleetOptions",
    "FleetReport",
    "FleetSample",
    "FleetSimulator",
    "PhasePoint",
    "crash_epochs",
    "durability_phase_diagram",
    "run_fleet",
]


@dataclass(frozen=True)
class FleetOptions:
    """Tuning for one fleet run.

    Attributes:
        devices: Fleet size (uniform capacity, named ``dev-{i}``).
        blocks: Block population; every block starts at full redundancy.
        copies: Replication degree ``k``.
        years: Simulated horizon (ignored when ``epochs`` is set).
        epochs_per_year: Epoch resolution; ``dt = 1 / epochs_per_year``.
        epochs: Explicit epoch count override (exact horizons for
            cross-checks against the event-driven controller).
        failure_rate: Device failures per device-year (so the per-epoch
            failure probability is ``1 - exp(-failure_rate * dt)``).
        repair_rate: Fleet-wide share rebuilds per epoch.
        seed: Seeds the per-epoch failure draws.
        strategy: Registry name used for the initial ``place_many``.
        strategy_options: Per-strategy options validated against the
            registry entry's schema (e.g. striping's ``resolution``).
        device_capacity: Uniform per-device capacity handed to the
            strategy (relative units; only ratios matter).
        sample_every: Epochs between samples (0 = auto, ~120 samples).
        record_repairs: Keep the full ``(epoch, block)`` repair order in
            the report (tests only — it can be millions of entries).
    """

    devices: int = 1000
    blocks: int = 1_000_000
    copies: int = 3
    years: float = 10.0
    epochs_per_year: int = 365
    epochs: Optional[int] = None
    failure_rate: float = 0.08
    repair_rate: float = 5000.0
    seed: int = 0
    strategy: str = "striping"
    strategy_options: Mapping[str, object] = field(default_factory=dict)
    device_capacity: int = 100
    sample_every: int = 0
    record_repairs: bool = False

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ConfigurationError("devices must be >= 1")
        if self.blocks < 1:
            raise ConfigurationError("blocks must be >= 1")
        if not 1 <= self.copies <= self.devices:
            raise ConfigurationError("copies must be in [1, devices]")
        if self.epochs_per_year < 1:
            raise ConfigurationError("epochs_per_year must be >= 1")
        if self.epochs is None and self.years <= 0:
            raise ConfigurationError("years must be positive")
        if self.epochs is not None and self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.failure_rate < 0:
            raise ConfigurationError("failure_rate must be >= 0")
        if self.repair_rate < 0:
            raise ConfigurationError("repair_rate must be >= 0")
        if self.device_capacity < 1:
            raise ConfigurationError("device_capacity must be >= 1")
        if self.sample_every < 0:
            raise ConfigurationError("sample_every must be >= 0")

    @property
    def dt(self) -> float:
        """Epoch length in years."""
        return 1.0 / self.epochs_per_year

    @property
    def total_epochs(self) -> int:
        """Number of epochs the run simulates (>= 1)."""
        if self.epochs is not None:
            return self.epochs
        return max(1, round(self.years * self.epochs_per_year))

    @property
    def horizon_years(self) -> float:
        """Simulated horizon in years (exactly ``total_epochs * dt``)."""
        return self.total_epochs * self.dt

    @property
    def failure_probability(self) -> float:
        """Per-device failure probability in one epoch."""
        return -math.expm1(-self.failure_rate * self.dt)

    @property
    def resolved_sample_every(self) -> int:
        """Sampling cadence in epochs (auto: ~120 samples per run)."""
        if self.sample_every > 0:
            return self.sample_every
        return max(1, self.total_epochs // 120)


@dataclass(frozen=True)
class FleetSample:
    """One point of the copy-count timeline.

    Attributes:
        epoch: Epoch index (1-based; epoch 0 is the initial state).
        year: ``epoch * dt``.
        damaged: Blocks currently below full redundancy but not lost.
        lost: Cumulative blocks lost (class 0, absorbing).
        distribution: Copy-count distribution ``x_0 .. x_k`` (fractions).
    """

    epoch: int
    year: float
    damaged: int
    lost: int
    distribution: Tuple[float, ...]


@dataclass
class FleetReport:
    """Everything a fleet run measured.

    Attributes:
        devices/blocks/copies/epochs/dt/strategy/seed: Echo of the run
            configuration (``dt`` in years per epoch).
        device_failures: Device-failure events drawn (with replacement —
            a device slot can fail repeatedly).
        repairs_completed: Shares rebuilt by the priority sweep.
        mean_repair_epochs: Mean share down-time in epochs (same-epoch
            rebuilds count as half an epoch, so the mean is positive
            whenever any repair happened).
        lost_addresses: Blocks that reached copy count zero, in loss
            order.
        samples: Copy-count timeline (always includes the final epoch).
        final_distribution: Copy-count distribution at the last epoch.
        steady_state: Time-averaged distribution over the second half of
            the samples — the histogram validated against theory.
        mean_field: Mean-field prediction averaged over the same sample
            epochs (see :mod:`repro.analysis.mean_field`).
        counts: Final per-block copy counts (leg-native column: int16
            array on the NumPy leg, list on the pure leg).
        repair_order: ``(epoch, block)`` completion order when
            ``record_repairs`` was set.
        durability: Empirical MTTDL model fitted from the observed
            failure/repair rates (None without failures or repairs).
    """

    devices: int = 0
    blocks: int = 0
    copies: int = 0
    epochs: int = 0
    dt: float = 0.0
    strategy: str = ""
    seed: int = 0
    device_failures: int = 0
    repairs_completed: int = 0
    mean_repair_epochs: float = 0.0
    lost_addresses: List[int] = field(default_factory=list)
    samples: List[FleetSample] = field(default_factory=list)
    final_distribution: Tuple[float, ...] = ()
    steady_state: Tuple[float, ...] = ()
    mean_field: Tuple[float, ...] = ()
    counts: object = None
    repair_order: List[Tuple[int, int]] = field(default_factory=list)
    durability: Optional[DurabilityModel] = None

    @property
    def lost_blocks(self) -> int:
        """Blocks lost over the run."""
        return len(self.lost_addresses)

    @property
    def data_loss(self) -> bool:
        """True when any block became unrecoverable."""
        return bool(self.lost_addresses)

    @property
    def horizon_years(self) -> float:
        """Simulated horizon in years."""
        return self.epochs * self.dt

    @property
    def repair_throughput(self) -> float:
        """Completed share rebuilds per epoch over the whole run."""
        if self.epochs <= 0:
            return 0.0
        return self.repairs_completed / self.epochs

    @property
    def mean_field_deviation(self) -> float:
        """Total-variation distance between steady state and prediction."""
        if not self.steady_state or not self.mean_field:
            return 0.0
        return total_variation(self.steady_state, self.mean_field)

    def counts_list(self) -> List[int]:
        """Final copy counts as a plain list (leg-comparison helper)."""
        if self.counts is None:
            return []
        return [int(count) for count in self.counts]

    def summary(self) -> str:
        """Multi-line human-readable digest."""

        def _dist(distribution: Tuple[float, ...]) -> str:
            return " ".join(f"{value:.4f}" for value in distribution)

        lines = [
            f"fleet                {self.devices} devices x "
            f"{self.blocks} blocks x k={self.copies} ({self.strategy})",
            f"horizon              {self.horizon_years:.2f} years "
            f"({self.epochs} epochs, seed={self.seed})",
            f"device failures      {self.device_failures}",
            f"repairs completed    {self.repairs_completed} "
            f"(mean down-time {self.mean_repair_epochs:.2f} epochs, "
            f"{self.repair_throughput:.1f}/epoch)",
            f"blocks lost          {self.lost_blocks}",
            f"steady-state dist    {_dist(self.steady_state)}",
            f"mean-field dist      {_dist(self.mean_field)}",
            f"mean-field fit       TV={self.mean_field_deviation:.4f}",
        ]
        if self.durability is not None:
            lines.append(
                f"observed durability  MTTF={self.durability.mttf:.1f}y "
                f"MTTR={self.durability.mttr * 365:.2f}d "
                f"=> MTTDL~{mttdl(self.durability):.0f}y"
            )
        return "\n".join(lines)


class FleetSimulator:
    """Runs one columnar failure/repair campaign to its horizon."""

    def __init__(
        self,
        options: Optional[FleetOptions] = None,
        bins: Optional[Sequence[BinSpec]] = None,
        strategy=None,
    ) -> None:
        self._options = options or FleetOptions()
        if bins is None:
            bins = bins_from_capacities(
                [self._options.device_capacity] * self._options.devices,
                prefix="dev",
            )
        if len(bins) != self._options.devices:
            raise ConfigurationError(
                f"bins ({len(bins)}) must match devices "
                f"({self._options.devices})"
            )
        self._bins = list(bins)
        self._strategy = strategy or create(
            self._options.strategy,
            self._bins,
            copies=self._options.copies,
            **dict(self._options.strategy_options),
        )

    @property
    def options(self) -> FleetOptions:
        """The run configuration."""
        return self._options

    def run(
        self, crash_schedule: Optional[Mapping[int, Sequence[int]]] = None
    ) -> FleetReport:
        """Simulate the full horizon and report.

        Args:
            crash_schedule: Optional ``{epoch: [device_index, ...]}``
                mapping of *scheduled* crashes.  When given, the random
                per-epoch failure draws are disabled — used by the
                zero-divergence cross-checks against the event-driven
                controller (see :func:`crash_epochs`).
        """
        opts = self._options
        np = get_numpy()
        blocks = opts.blocks
        devices = opts.devices
        copies = opts.copies
        epochs = opts.total_epochs
        p_fail = opts.failure_probability

        batch = self._strategy.place_many(range(blocks))
        columns = batch.columns

        # --- columnar state -------------------------------------------
        if np is not None:
            alive = np.ones((copies, blocks), dtype=bool)
            counts = np.full(blocks, copies, dtype=np.int16)
            dead_since = np.zeros((copies, blocks), dtype=np.int64)
            # Inverted CSR index: which (slot, block) shares live on each
            # device.  Assignment is static (replacements take the failed
            # device's slot), so this is built once for the whole run.
            device_concat = np.concatenate(
                [np.asarray(column, dtype=np.int64) for column in columns]
            )
            slot_concat = np.repeat(
                np.arange(copies, dtype=np.int64), blocks
            )
            block_concat = np.tile(np.arange(blocks, dtype=np.int64), copies)
            order = np.argsort(device_concat, kind="stable")
            holds_slot = slot_concat[order]
            holds_block = block_concat[order]
            pointers = np.searchsorted(
                device_concat[order], np.arange(devices + 1)
            )

            def kill_device(device: int, epoch: int) -> List[int]:
                low, high = pointers[device], pointers[device + 1]
                slots = holds_slot[low:high]
                hit_blocks = holds_block[low:high]
                live = alive[slots, hit_blocks]
                if not live.any():
                    return []
                slots = slots[live]
                hit_blocks = hit_blocks[live]
                alive[slots, hit_blocks] = False
                dead_since[slots, hit_blocks] = epoch
                counts[hit_blocks] -= 1
                return hit_blocks.tolist()

            def revive_one(block: int, epoch: int) -> int:
                column = alive[:, block]
                for slot in range(copies):
                    if not column[slot]:
                        alive[slot, block] = True
                        counts[block] += 1
                        return epoch - int(dead_since[slot, block])
                raise AssertionError("repair target has no dead share")

        else:
            alive = [[True] * blocks for _ in range(copies)]
            counts = [copies] * blocks
            dead_since = [[0] * blocks for _ in range(copies)]
            holds: Dict[int, List[Tuple[int, int]]] = {}
            for slot, column in enumerate(columns):
                for block, device in enumerate(column):
                    holds.setdefault(int(device), []).append((slot, block))

            def kill_device(device: int, epoch: int) -> List[int]:
                hit = []
                for slot, block in holds.get(device, ()):
                    if alive[slot][block]:
                        alive[slot][block] = False
                        dead_since[slot][block] = epoch
                        counts[block] -= 1
                        hit.append(block)
                return hit

            def revive_one(block: int, epoch: int) -> int:
                for slot in range(copies):
                    if not alive[slot][block]:
                        alive[slot][block] = True
                        counts[block] += 1
                        return epoch - dead_since[slot][block]
                raise AssertionError("repair target has no dead share")

        # Damaged blocks bucketed by current copy count (class); blocks
        # at full redundancy or lost (class 0) are in no bucket.  Shared
        # bookkeeping for both legs — it only ever sees Python ints.
        damaged: List[Set[int]] = [set() for _ in range(copies + 1)]
        class_counts = [0] * (copies + 1)
        class_counts[copies] = blocks
        lost: List[int] = []
        device_failures = 0
        repairs = 0
        repair_wait_epochs = 0  # whole epochs a rebuilt share was down
        same_epoch_repairs = 0  # rebuilt in the epoch it died
        budget_carry = 0.0
        repair_order: Optional[List[Tuple[int, int]]] = (
            [] if opts.record_repairs else None
        )
        sample_every = opts.resolved_sample_every
        samples: List[FleetSample] = []
        sink = obs.sink()

        def record_sample(epoch: int) -> None:
            damaged_total = sum(class_counts[1:copies])
            distribution = tuple(
                count / blocks for count in class_counts
            )
            samples.append(
                FleetSample(
                    epoch=epoch,
                    year=epoch * opts.dt,
                    damaged=damaged_total,
                    lost=len(lost),
                    distribution=distribution,
                )
            )
            if sink.enabled:
                obs.metrics().histogram("chaos.fleet.damaged").observe(
                    damaged_total
                )
                sink.emit(
                    "chaos.fleet.sample",
                    epoch=epoch,
                    damaged=damaged_total,
                    lost=len(lost),
                    distribution=list(distribution),
                )

        for epoch in range(1, epochs + 1):
            # --- failures ---------------------------------------------
            if crash_schedule is not None:
                failed = sorted(
                    int(device) for device in crash_schedule.get(epoch, ())
                )
            elif p_fail > 0.0:
                base = derive_base("chaos-fleet-fail", opts.seed, epoch)
                failed = bernoulli_indices(base, devices, p_fail)
            else:
                failed = []
            for device in failed:
                device = int(device)
                if not 0 <= device < devices:
                    raise ConfigurationError(
                        f"scheduled crash device {device} out of range"
                    )
                device_failures += 1
                for block in kill_device(device, epoch):
                    count = int(counts[block])  # new count after the kill
                    class_counts[count + 1] -= 1
                    class_counts[count] += 1
                    if count == 0:
                        damaged[1].discard(block)
                        lost.append(block)
                        continue
                    if count + 1 < copies:
                        damaged[count + 1].discard(block)
                    damaged[count].add(block)

            # --- priority repair sweep --------------------------------
            budget_carry += opts.repair_rate
            budget = int(budget_carry)
            budget_carry -= budget
            promotions: List[Tuple[int, int]] = []
            for klass in range(1, copies):
                if budget <= 0:
                    break
                bucket = damaged[klass]
                if not bucket:
                    continue
                if len(bucket) <= budget:
                    taken = sorted(bucket)
                else:
                    taken = heapq.nsmallest(budget, bucket)
                for block in taken:
                    bucket.discard(block)
                    wait = revive_one(block, epoch)
                    if wait:
                        repair_wait_epochs += wait
                    else:
                        same_epoch_repairs += 1
                    repairs += 1
                    class_counts[klass] -= 1
                    class_counts[klass + 1] += 1
                    if repair_order is not None:
                        repair_order.append((epoch, block))
                    if klass + 1 < copies:
                        # Re-inserted only after the sweep so a block is
                        # repaired at most once per epoch (the mean-field
                        # recursion moves mass up exactly one class).
                        promotions.append((klass + 1, block))
                budget -= len(taken)
            for klass, block in promotions:
                damaged[klass].add(block)

            # --- sampling ---------------------------------------------
            if epoch % sample_every == 0 or epoch == epochs:
                record_sample(epoch)

        # --- aftermath ------------------------------------------------
        steady_window = [
            sample for sample in samples if sample.epoch > epochs // 2
        ] or samples[-1:]
        steady_state = tuple(
            sum(sample.distribution[klass] for sample in steady_window)
            / len(steady_window)
            for klass in range(copies + 1)
        )
        prediction = tuple(
            mean_field_distribution(
                copies=copies,
                failure_probability=p_fail,
                repair_fraction=opts.repair_rate / blocks,
                sample_epochs=[sample.epoch for sample in steady_window],
            )
        )
        if repairs:
            mean_repair_epochs = (
                repair_wait_epochs + 0.5 * same_epoch_repairs
            ) / repairs
        else:
            mean_repair_epochs = 0.0

        durability = None
        if device_failures and mean_repair_epochs > 0:
            try:
                durability = observed_model(
                    devices=devices,
                    tolerance=copies - 1,
                    failures=device_failures,
                    horizon=opts.horizon_years,
                    mean_repair_time=mean_repair_epochs * opts.dt,
                )
            except ValueError:
                durability = None

        report = FleetReport(
            devices=devices,
            blocks=blocks,
            copies=copies,
            epochs=epochs,
            dt=opts.dt,
            strategy=opts.strategy,
            seed=opts.seed,
            device_failures=device_failures,
            repairs_completed=repairs,
            mean_repair_epochs=mean_repair_epochs,
            lost_addresses=lost,
            samples=samples,
            final_distribution=samples[-1].distribution,
            steady_state=steady_state,
            mean_field=prediction,
            counts=counts,
            repair_order=repair_order or [],
            durability=durability,
        )
        if sink.enabled:
            registry = obs.metrics()
            registry.counter("chaos.fleet.epochs").add(epochs)
            registry.counter("chaos.fleet.device_failures").add(
                device_failures
            )
            registry.counter("chaos.fleet.repairs").add(repairs)
            registry.counter("chaos.fleet.blocks_lost").add(len(lost))
            registry.histogram("chaos.fleet.mean_repair_epochs").observe(
                mean_repair_epochs
            )
            sink.emit(
                "chaos.fleet.finished",
                epochs=epochs,
                device_failures=device_failures,
                repairs=repairs,
                lost=len(lost),
                tv_distance=report.mean_field_deviation,
            )
        return report


def run_fleet(
    options: Optional[FleetOptions] = None,
    crash_schedule: Optional[Mapping[int, Sequence[int]]] = None,
) -> FleetReport:
    """Convenience wrapper: build a simulator and run it once."""
    return FleetSimulator(options).run(crash_schedule)


def crash_epochs(
    schedule: FaultSchedule, device_ids: Sequence[str]
) -> Dict[int, List[int]]:
    """Map a :class:`FaultSchedule` onto fleet crash epochs.

    One controller time unit corresponds to one fleet epoch; crash times
    are rounded to the nearest epoch (minimum 1).  Only pure-crash
    schedules can be cross-checked — the fleet engine has no notion of
    outage/flaky windows or shrinks.

    Raises:
        ConfigurationError: on non-crash events or unknown device ids.
    """
    index = {device_id: i for i, device_id in enumerate(device_ids)}
    mapping: Dict[int, List[int]] = {}
    for event in schedule:
        if event.kind is not FaultKind.CRASH:
            raise ConfigurationError(
                "fleet cross-checks support crash-only schedules "
                f"(got {event.kind.value!r} at t={event.time:g})"
            )
        if event.device_id not in index:
            raise ConfigurationError(
                f"schedule names unknown device {event.device_id!r}"
            )
        epoch = max(1, int(round(event.time)))
        mapping.setdefault(epoch, []).append(index[event.device_id])
    for devices in mapping.values():
        devices.sort()
    return mapping


@dataclass(frozen=True)
class PhasePoint:
    """One durability-vs-repair-rate measurement.

    Attributes:
        repair_rate: Share rebuilds per epoch for this run.
        lost_fraction: Fraction of the block population lost.
        mean_copies: Expected copy count under the steady state.
        steady_state: Steady-state copy-count distribution.
        mean_field_deviation: TV distance to the mean-field prediction.
    """

    repair_rate: float
    lost_fraction: float
    mean_copies: float
    steady_state: Tuple[float, ...]
    mean_field_deviation: float


def durability_phase_diagram(
    options: FleetOptions, repair_rates: Sequence[float]
) -> List[PhasePoint]:
    """Sweep ``repair_rate`` and record where durability collapses.

    Below the critical repair rate the fleet cannot keep up with the
    failure flux: steady-state mass drains from class ``k`` toward the
    absorbing class 0 and the lost fraction takes off.  Above it, the
    distribution concentrates at full redundancy.  The sweep reuses the
    same seed per point, so two rates differ only in repair capacity.
    """
    points = []
    for rate in repair_rates:
        report = FleetSimulator(
            dataclasses.replace(options, repair_rate=float(rate))
        ).run()
        mean_copies = sum(
            klass * fraction
            for klass, fraction in enumerate(report.steady_state)
        )
        points.append(
            PhasePoint(
                repair_rate=float(rate),
                lost_fraction=report.lost_blocks / options.blocks,
                mean_copies=mean_copies,
                steady_state=report.steady_state,
                mean_field_deviation=report.mean_field_deviation,
            )
        )
    return points
