"""Seeded fault schedules: what breaks, when, and how badly.

A chaos run is driven by a :class:`FaultSchedule` — an ordered, validated
list of :class:`FaultEvent` entries.  Schedules are *data*, not code: they
serialise to plain dicts (JSON-friendly, the ``repro chaos --schedule``
file format) and are generated deterministically from a seed, so a failing
run can be re-executed bit-for-bit from its ``(schedule, seed)`` pair
alone.

Fault kinds:

* ``crash`` — permanent failure: the device's contents are lost and a
  blank replacement arrives after the controller's replacement delay;
  every lost share is re-replicated through the priority repair queue.
* ``outage`` — transient unavailability for ``duration`` time units: the
  data survives, but reads and repairs must route around the device until
  it returns.
* ``flaky`` — the device stays up but serves errors: for ``duration``
  time units each repair attempt targeting it fails with probability
  ``error_rate`` and costs ``latency`` extra time units, exercising the
  retry/backoff path.
* ``shrink`` — administrative decommission: the device leaves the
  configuration for good.  The controller checks Lemma 2.1 feasibility
  (``k * b_0 <= B`` on the survivors) *before* rebalancing and raises
  :class:`~repro.exceptions.InfeasibleRedundancyError` when the shrink
  would break the redundancy/fairness contract.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..hashing.primitives import stable_u64

#: 2**-64, maps a stable_u64 draw onto [0, 1).
_INV_2_64 = 1.0 / float(1 << 64)


def _unit(*key) -> float:
    """Deterministic draw in (0, 1) from a stable hash of ``key``."""
    return (stable_u64("chaos-schedule", *key) | 1) * _INV_2_64


class FaultKind(enum.Enum):
    """The fault taxonomy the controller knows how to inject."""

    CRASH = "crash"
    OUTAGE = "outage"
    FLAKY = "flaky"
    SHRINK = "shrink"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        time: Injection time (simulation units, >= 0).
        kind: What happens to the device.
        device_id: The victim.
        duration: How long an ``outage``/``flaky`` window lasts; ignored
            for ``crash``/``shrink``.
        error_rate: ``flaky`` only — probability in [0, 1) that one repair
            attempt against the device fails.
        latency: ``flaky`` only — extra service time per attempt.
    """

    time: float
    kind: FaultKind
    device_id: str
    duration: float = 0.0
    error_rate: float = 0.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.time}")
        if self.kind in (FaultKind.OUTAGE, FaultKind.FLAKY) and self.duration <= 0:
            raise ConfigurationError(
                f"{self.kind.value} faults need a positive duration"
            )
        if not 0.0 <= self.error_rate < 1.0:
            raise ConfigurationError(
                f"error_rate must be in [0, 1), got {self.error_rate}"
            )
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")

    @property
    def end(self) -> float:
        """When the fault's effect window closes."""
        return self.time + self.duration

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (the on-disk schedule entry)."""
        record: Dict[str, object] = {
            "time": self.time,
            "kind": self.kind.value,
            "device": self.device_id,
        }
        if self.duration:
            record["duration"] = self.duration
        if self.error_rate:
            record["error_rate"] = self.error_rate
        if self.latency:
            record["latency"] = self.latency
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "FaultEvent":
        """Parse one schedule entry; raises ConfigurationError when invalid."""
        try:
            kind = FaultKind(record["kind"])
        except (KeyError, ValueError):
            accepted = sorted(k.value for k in FaultKind)
            raise ConfigurationError(
                f"fault kind must be one of {accepted}, got {record.get('kind')!r}"
            ) from None
        try:
            return cls(
                time=float(record["time"]),
                kind=kind,
                device_id=str(record["device"]),
                duration=float(record.get("duration", 0.0)),
                error_rate=float(record.get("error_rate", 0.0)),
                latency=float(record.get("latency", 0.0)),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"fault entry missing required key {missing}"
            ) from None


class FaultSchedule:
    """An ordered, validated sequence of faults for one chaos run."""

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.device_id, e.kind.value))
        )
        crashed_or_gone = set()
        for event in self._events:
            if event.device_id in crashed_or_gone:
                raise ConfigurationError(
                    f"device {event.device_id!r} receives a fault after its "
                    f"permanent crash/shrink — schedules must not reuse it"
                )
            if event.kind in (FaultKind.CRASH, FaultKind.SHRINK):
                crashed_or_gone.add(event.device_id)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The faults in injection order (stable tie-breaking)."""
        return self._events

    @property
    def duration(self) -> float:
        """Time at which the last fault window has closed."""
        return max((event.end for event in self._events), default=0.0)

    def devices(self) -> List[str]:
        """Sorted ids of every device the schedule touches."""
        return sorted({event.device_id for event in self._events})

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self._events == other.events

    def to_dicts(self) -> List[Dict[str, object]]:
        """The whole schedule as plain dicts (JSON-ready)."""
        return [event.to_dict() for event in self._events]

    def to_json(self) -> str:
        """Serialise to the ``repro chaos --schedule`` file format."""
        return json.dumps({"faults": self.to_dicts()}, indent=2, sort_keys=True)

    @classmethod
    def from_dicts(cls, records: Iterable[Dict[str, object]]) -> "FaultSchedule":
        """Build from plain dicts, validating every entry."""
        return cls(FaultEvent.from_dict(record) for record in records)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse the ``{"faults": [...]}`` file format."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"schedule is not valid JSON: {error}") from None
        if isinstance(payload, dict):
            records = payload.get("faults")
        else:
            records = payload  # a bare list is accepted too
        if not isinstance(records, list):
            raise ConfigurationError(
                'schedule JSON must be {"faults": [...]} or a bare list'
            )
        return cls.from_dicts(records)


def generate_schedule(
    device_ids: Sequence[str],
    *,
    seed: int = 0,
    duration: float = 30.0,
    crashes: int = 1,
    outages: int = 0,
    flaky: int = 0,
    shrinks: int = 0,
    outage_duration: float = 5.0,
    flaky_duration: float = 8.0,
    error_rate: float = 0.3,
    latency: float = 0.25,
) -> FaultSchedule:
    """Derive a fault schedule deterministically from a seed.

    Victims are drawn without replacement (each device receives at most
    one fault), fault times land in ``(0, duration)``; everything is a
    pure function of ``(sorted(device_ids), seed, parameters)``, so equal
    inputs give byte-equal schedules on any machine.

    Raises:
        ConfigurationError: if more faults are requested than devices
            exist, or rates/durations are out of range.
    """
    pool = sorted(device_ids)
    requested = crashes + outages + flaky + shrinks
    if requested > len(pool):
        raise ConfigurationError(
            f"schedule wants {requested} distinct victims but only "
            f"{len(pool)} devices exist"
        )
    if duration <= 0:
        raise ConfigurationError("schedule duration must be positive")

    events: List[FaultEvent] = []
    kinds: List[Tuple[FaultKind, Dict[str, float]]] = (
        [(FaultKind.CRASH, {})] * crashes
        + [(FaultKind.OUTAGE, {"duration": outage_duration})] * outages
        + [
            (
                FaultKind.FLAKY,
                {
                    "duration": flaky_duration,
                    "error_rate": error_rate,
                    "latency": latency,
                },
            )
        ]
        * flaky
        + [(FaultKind.SHRINK, {})] * shrinks
    )
    for index, (kind, extra) in enumerate(kinds):
        pick = stable_u64("chaos-victim", seed, index) % len(pool)
        victim = pool.pop(pick)
        # Fault windows start in the first half so transient effects have
        # room to resolve inside the schedule horizon.
        start_span = duration / 2.0 if extra.get("duration") else duration
        time = _unit(seed, index, "time") * start_span
        events.append(FaultEvent(time=time, kind=kind, device_id=victim, **extra))
    return FaultSchedule(events)
