"""RDP — Row-Diagonal Parity (Corbett et al., FAST 2004).

Reference [3] of the paper.  For a prime ``p``, a block is arranged into a
``(p-1) x (p-1)`` data cell array; two parity columns are added:

* column ``p-1``: plain row parity over the data columns;
* column ``p``: diagonal parity, where diagonals run over the data *and*
  the row-parity column (``i + j ≡ d (mod p)`` for ``j in 0..p-1``), and
  the diagonal ``d = p-1`` is deliberately left unprotected.

Because diagonals cover the row-parity column, no EVENODD-style adjuster is
needed; the double-erasure reconstruction is a pure XOR zig-zag, realised
here with the generic peeling solver.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..exceptions import DecodingError
from .base import ErasureCode, pad_block
from .parity import (
    Cell,
    Equation,
    is_prime,
    join_cells,
    peel,
    split_cells,
    xor_many,
)


class RowDiagonalParityCode(ErasureCode):
    """RDP(p): p-1 data shares + 2 parity shares, tolerance 2."""

    name = "rdp"

    def __init__(self, prime: int = 5) -> None:
        """Build the code.

        Args:
            prime: The array parameter ``p``; must be a prime >= 3.  The
                code produces ``p + 1`` shares per block.
        """
        if not is_prime(prime) or prime < 3:
            raise ValueError(f"RDP needs a prime p >= 3, got {prime}")
        self._p = prime

    @property
    def prime(self) -> int:
        """The array parameter ``p``."""
        return self._p

    @property
    def total_shares(self) -> int:
        """Shares produced per block."""
        return self._p + 1

    @property
    def data_shares(self) -> int:
        """Minimum shares needed to reconstruct."""
        return self._p - 1

    def encode(self, block: bytes) -> List[bytes]:
        p = self._p
        data_columns = p - 1
        padded = pad_block(block, data_columns * (p - 1))
        column_bytes = len(padded) // data_columns
        size = column_bytes // (p - 1)
        columns = [
            split_cells(
                padded[j * column_bytes : (j + 1) * column_bytes], p - 1
            )
            for j in range(data_columns)
        ]
        row_parity = [
            xor_many((columns[j][i] for j in range(data_columns)), size)
            for i in range(p - 1)
        ]
        extended = columns + [row_parity]  # columns 0..p-1 incl. row parity
        diag_parity = []
        for diagonal in range(p - 1):
            parts = []
            for j in range(p):
                i = (diagonal - j) % p
                if i <= p - 2:
                    parts.append(extended[j][i])
            diag_parity.append(xor_many(parts, size))
        shares = [join_cells(column) for column in columns]
        shares.append(join_cells(row_parity))
        shares.append(join_cells(diag_parity))
        return shares

    def decode(self, shares: Dict[int, bytes]) -> bytes:
        self.check_enough(shares)
        p = self._p
        data_columns = p - 1
        missing = [pos for pos in range(self.total_shares) if pos not in shares]
        if not any(position < data_columns for position in missing):
            return b"".join(shares[j] for j in range(data_columns))
        if len(missing) > 2:
            raise DecodingError(f"rdp tolerates 2 erasures, got {len(missing)}")

        size = len(next(iter(shares.values()))) // (p - 1)
        known: Dict[Cell, bytes] = {}
        for position, payload in shares.items():
            for i, cell in enumerate(split_cells(payload, p - 1)):
                known[(i, position)] = cell

        missing_set = set(missing)
        # Unknown cells: erased columns among 0..p-1 (data + row parity).
        unknowns: Set[Cell] = {
            (i, j)
            for j in missing_set
            if j <= p - 1
            for i in range(p - 1)
        }

        equations: List[Equation] = []
        # Row equations need the row-parity cell or treat it as unknown too.
        for i in range(p - 1):
            unknown: Set[Cell] = set()
            parts = []
            for j in range(p):  # data columns + row parity column
                if j in missing_set:
                    unknown.add((i, j))
                else:
                    parts.append(known[(i, j)])
            equations.append(Equation(unknown, xor_many(parts, size)))
        # Diagonal equations (diagonal p-1 is unprotected by design).
        if p not in missing_set:
            for diagonal in range(p - 1):
                unknown = set()
                parts = [known[(diagonal, p)]]
                for j in range(p):
                    i = (diagonal - j) % p
                    if i > p - 2:
                        continue
                    if j in missing_set:
                        unknown.add((i, j))
                    else:
                        parts.append(known[(i, j)])
                equations.append(Equation(unknown, xor_many(parts, size)))

        solved = peel(equations, set(unknowns), self.name)
        known.update(solved)
        return b"".join(
            join_cells([known[(i, j)] for i in range(p - 1)])
            for j in range(data_columns)
        )
