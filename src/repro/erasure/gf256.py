"""Arithmetic in GF(2^8) — the base field for Reed-Solomon coding.

The field is realised as polynomials over GF(2) modulo the primitive
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d, the conventional choice of
storage RS implementations).  Multiplication uses exp/log tables built once
at import; addition is XOR.

Also provides the small amount of linear algebra Reed-Solomon needs:
matrix multiply, Gaussian inversion, and (systematic) Vandermonde
construction.
"""

from __future__ import annotations

from typing import List, Sequence

#: The primitive polynomial (degree-8 terms included) defining the field.
PRIMITIVE_POLY = 0x11D

#: Field size.
ORDER = 256


def _build_tables():
    exp = [0] * (2 * ORDER)
    log = [0] * ORDER
    value = 1
    for power in range(ORDER - 1):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    for power in range(ORDER - 1, 2 * ORDER):
        exp[power] = exp[power - (ORDER - 1)]
    return exp, log


_EXP, _LOG = _build_tables()


def add(a: int, b: int) -> int:
    """Field addition (and subtraction): XOR."""
    return a ^ b


def mul(a: int, b: int) -> int:
    """Field multiplication via log tables."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def inv(a: int) -> int:
    """Multiplicative inverse.

    Raises:
        ZeroDivisionError: for ``a == 0``.
    """
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _EXP[(ORDER - 1) - _LOG[a]]


def div(a: int, b: int) -> int:
    """Field division ``a / b``."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return _EXP[_LOG[a] - _LOG[b] + (ORDER - 1)]


def power(a: int, exponent: int) -> int:
    """``a`` raised to a non-negative integer power."""
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return _EXP[(_LOG[a] * exponent) % (ORDER - 1)]


Matrix = List[List[int]]


def identity(size: int) -> Matrix:
    """The size x size identity matrix."""
    return [[1 if row == col else 0 for col in range(size)] for row in range(size)]


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    """Matrix product over GF(256)."""
    rows, inner, cols = len(a), len(b), len(b[0])
    if len(a[0]) != inner:
        raise ValueError("matrix shapes do not align")
    result = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        row = a[i]
        out = result[i]
        for t in range(inner):
            coefficient = row[t]
            if coefficient == 0:
                continue
            b_row = b[t]
            for j in range(cols):
                if b_row[j]:
                    out[j] ^= mul(coefficient, b_row[j])
    return result


def mat_vec(a: Matrix, v: Sequence[int]) -> List[int]:
    """Matrix-vector product over GF(256)."""
    return [
        _dot(row, v)
        for row in a
    ]


def _dot(row: Sequence[int], v: Sequence[int]) -> int:
    total = 0
    for coefficient, value in zip(row, v):
        if coefficient and value:
            total ^= mul(coefficient, value)
    return total


def mat_invert(matrix: Matrix) -> Matrix:
    """Gauss-Jordan inversion over GF(256).

    Raises:
        ValueError: if the matrix is singular or not square.
    """
    size = len(matrix)
    if any(len(row) != size for row in matrix):
        raise ValueError("matrix must be square")
    work = [list(row) + identity_row for row, identity_row in zip(matrix, identity(size))]
    for col in range(size):
        pivot_row = next(
            (row for row in range(col, size) if work[row][col]), None
        )
        if pivot_row is None:
            raise ValueError("matrix is singular")
        work[col], work[pivot_row] = work[pivot_row], work[col]
        pivot_inv = inv(work[col][col])
        work[col] = [mul(pivot_inv, value) for value in work[col]]
        for row in range(size):
            if row == col or not work[row][col]:
                continue
            factor = work[row][col]
            work[row] = [
                value ^ mul(factor, pivot_value)
                for value, pivot_value in zip(work[row], work[col])
            ]
    return [row[size:] for row in work]


def vandermonde(rows: int, cols: int) -> Matrix:
    """The ``rows x cols`` Vandermonde matrix ``V[i][j] = i^j``.

    Any ``cols`` rows are linearly independent as long as ``rows <= 256``.
    """
    if rows > ORDER:
        raise ValueError("at most 256 distinct evaluation points exist")
    return [[power(i, j) for j in range(cols)] for i in range(rows)]


def systematic_generator(data: int, total: int) -> Matrix:
    """A ``total x data`` generator whose top ``data`` rows are the identity.

    Built by column-reducing a Vandermonde matrix (the Jerasure
    construction); every ``data``-row subset remains invertible.
    """
    if data < 1 or total < data:
        raise ValueError("need 1 <= data <= total")
    matrix = vandermonde(total, data)
    # Column operations to turn the top square into the identity.
    for col in range(data):
        pivot = matrix[col][col]
        if pivot == 0:
            swap = next(
                j for j in range(col, data) if matrix[col][j]
            )
            for row in matrix:
                row[col], row[swap] = row[swap], row[col]
            pivot = matrix[col][col]
        pivot_inv = inv(pivot)
        for row in matrix:
            row[col] = mul(row[col], pivot_inv)
        for other in range(data):
            if other == col or not matrix[col][other]:
                continue
            factor = matrix[col][other]
            for row in matrix:
                row[other] ^= mul(factor, row[col])
    return matrix
