"""Erasure codes — consumers of position-aware placement.

The paper's strategies always identify the i-th of k copies, enabling the
redundancy techniques it cites: plain mirroring, Reed-Solomon codes, EVENODD
[1] and Row-Diagonal Parity [3].  All are implemented here behind one
:class:`~repro.erasure.base.ErasureCode` interface so the cluster layer can
swap them freely.
"""

from .base import ErasureCode, pad_block
from .evenodd import EvenOddCode
from .mirror import MirrorCode
from .parity import is_prime, xor_bytes
from .rdp import RowDiagonalParityCode
from .reed_solomon import ReedSolomonCode
from .single_parity import SingleParityCode

__all__ = [
    "ErasureCode",
    "EvenOddCode",
    "MirrorCode",
    "ReedSolomonCode",
    "RowDiagonalParityCode",
    "SingleParityCode",
    "is_prime",
    "pad_block",
    "xor_bytes",
]
