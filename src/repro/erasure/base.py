"""Erasure-code interface.

The paper stresses that Redundant Share "is always able to clearly identify
the i-th of k copies of a data block", which is exactly what erasure codes
require: each of the k placed sub-blocks has a distinct meaning.  The codes
here consume that property — share ``i`` of a block goes to the device
placement position ``i``.

All codes operate on ``bytes`` and present the same surface:

* :meth:`ErasureCode.encode` — block payload -> list of ``total_shares``
  share payloads.
* :meth:`ErasureCode.decode` — any sufficient subset (as a
  ``{position: payload}`` dict) -> the original block.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from ..exceptions import DecodingError


class ErasureCode(abc.ABC):
    """Systematic or replicated encoding of one block into shares."""

    #: Short machine-readable code name.
    name: str = "erasure"

    @property
    @abc.abstractmethod
    def total_shares(self) -> int:
        """Number of shares produced per block (placement degree k)."""

    @property
    @abc.abstractmethod
    def data_shares(self) -> int:
        """Minimum number of shares needed to reconstruct a block."""

    @property
    def tolerance(self) -> int:
        """Number of simultaneous share losses the code survives."""
        return self.total_shares - self.data_shares

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per payload byte (1.0 = no redundancy)."""
        return self.total_shares / self.data_shares

    @abc.abstractmethod
    def encode(self, block: bytes) -> List[bytes]:
        """Split/encode ``block`` into ``total_shares`` share payloads."""

    @abc.abstractmethod
    def decode(self, shares: Dict[int, bytes]) -> bytes:
        """Reconstruct the block from surviving ``{position: payload}``.

        Raises:
            DecodingError: if fewer than ``data_shares`` shares survive or
                the payloads are inconsistent.
        """

    def check_enough(self, shares: Dict[int, bytes]) -> None:
        """Common precondition check for :meth:`decode` implementations."""
        if len(shares) < self.data_shares:
            raise DecodingError(
                f"{self.name}: {len(shares)} shares cannot reconstruct a "
                f"block needing {self.data_shares}"
            )
        for position in shares:
            if not 0 <= position < self.total_shares:
                raise DecodingError(
                    f"{self.name}: share position {position} out of range"
                )

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}({self.data_shares}+"
            f"{self.total_shares - self.data_shares})"
        )


def pad_block(block: bytes, multiple: int) -> bytes:
    """Pad ``block`` with zeros to a length multiple (codes need aligned
    stripes); the original length must be tracked by the caller."""
    remainder = len(block) % multiple
    if remainder == 0:
        return block
    return block + bytes(multiple - remainder)
