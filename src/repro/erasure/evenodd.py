"""EVENODD — optimal double-erasure XOR code (Blaum/Brady/Bruck/Menon).

Reference [1] of the paper.  For a prime ``p``, a block is arranged into a
``(p-1) x p`` cell array (``p`` data columns); two parity columns are added:

* column ``p`` (``P``): plain row parity;
* column ``p+1`` (``Q``): diagonal parity, where every diagonal parity cell
  additionally XORs the *EVENODD adjuster* ``S`` — the parity of the one
  diagonal (``i + j ≡ p-1 (mod p)``) that has no parity cell of its own.

Any two column erasures are decodable using only XOR.  The adjuster is what
distinguishes EVENODD from RDP: it lets both parity columns be computed
from data columns only (Q does not cover P), at the cost of the ``S`` term.

Decoding computes ``S`` for the erasure pattern at hand and then runs the
generic peeling solver over the row/diagonal constraints.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..exceptions import DecodingError
from .base import ErasureCode, pad_block
from .parity import (
    Cell,
    Equation,
    is_prime,
    join_cells,
    peel,
    split_cells,
    xor_bytes,
    xor_many,
)


class EvenOddCode(ErasureCode):
    """EVENODD(p): p data shares + 2 parity shares, tolerance 2."""

    name = "evenodd"

    def __init__(self, prime: int = 5) -> None:
        """Build the code.

        Args:
            prime: The array parameter ``p``; must be a prime >= 3.  The
                code produces ``p + 2`` shares per block.
        """
        if not is_prime(prime) or prime < 3:
            raise ValueError(f"EVENODD needs a prime p >= 3, got {prime}")
        self._p = prime

    @property
    def prime(self) -> int:
        """The array parameter ``p``."""
        return self._p

    @property
    def total_shares(self) -> int:
        """Shares produced per block."""
        return self._p + 2

    @property
    def data_shares(self) -> int:
        """Minimum shares needed to reconstruct."""
        return self._p

    def _layout(self, block: bytes) -> List[List[bytes]]:
        """Pad and split the block into the (p-1) x p data cell array."""
        p = self._p
        padded = pad_block(block, p * (p - 1))
        column_bytes = len(padded) // p
        columns = [
            split_cells(
                padded[j * column_bytes : (j + 1) * column_bytes], p - 1
            )
            for j in range(p)
        ]
        return columns  # columns[j][i] = cell (row i, column j)

    def _adjuster(self, columns: List[List[bytes]], size: int) -> bytes:
        """``S``: parity of the diagonal ``i + j ≡ p-1`` (virtual row 0)."""
        p = self._p
        parts = []
        for j in range(p):
            i = (p - 1 - j) % p
            if i <= p - 2:
                parts.append(columns[j][i])
        return xor_many(parts, size)

    def encode(self, block: bytes) -> List[bytes]:
        p = self._p
        columns = self._layout(block)
        size = len(columns[0][0])
        row_parity = [
            xor_many((columns[j][i] for j in range(p)), size)
            for i in range(p - 1)
        ]
        adjuster = self._adjuster(columns, size)
        diag_parity = []
        for diagonal in range(p - 1):
            parts = [adjuster]
            for j in range(p):
                i = (diagonal - j) % p
                if i <= p - 2:
                    parts.append(columns[j][i])
            diag_parity.append(xor_many(parts, size))
        shares = [join_cells(column) for column in columns]
        shares.append(join_cells(row_parity))
        shares.append(join_cells(diag_parity))
        return shares

    def decode(self, shares: Dict[int, bytes]) -> bytes:
        self.check_enough(shares)
        p = self._p
        missing = [pos for pos in range(self.total_shares) if pos not in shares]
        if not any(position < p for position in missing):
            return b"".join(shares[j] for j in range(p))
        if len(missing) > 2:
            raise DecodingError(
                f"evenodd tolerates 2 erasures, got {len(missing)}"
            )

        size = len(next(iter(shares.values()))) // (p - 1)
        known: Dict[Cell, bytes] = {}
        for position, payload in shares.items():
            for i, cell in enumerate(split_cells(payload, p - 1)):
                known[(i, position)] = cell

        adjuster = self._solve_adjuster(known, missing, size)
        unknowns: Set[Cell] = {
            (i, j) for j in missing if j < p for i in range(p - 1)
        }
        equations = self._equations(known, missing, adjuster, size)
        solved = peel(equations, set(unknowns), self.name)
        known.update(solved)
        return b"".join(
            join_cells([known[(i, j)] for i in range(p - 1)]) for j in range(p)
        )

    def _solve_adjuster(
        self, known: Dict[Cell, bytes], missing: List[int], size: int
    ) -> bytes:
        """Recover ``S`` under the current erasure pattern."""
        p = self._p

        def diagonal_survivors(diagonal: int) -> bytes:
            parts = []
            for j in range(p):
                i = (diagonal - j) % p
                if i <= p - 2 and (i, j) in known:
                    parts.append(known[(i, j)])
            return xor_many(parts, size)

        data_missing = [j for j in missing if j < p]
        p_missing = p in missing
        q_missing = (p + 1) in missing

        if q_missing:
            # S is only needed to use Q; with Q gone, peeling runs on row
            # parity alone, and S is irrelevant (encode recomputes it).
            return bytes(size)
        if len(data_missing) == 2 and not p_missing and not q_missing:
            # XOR of all P cells = all-data parity T; XOR of all Q cells =
            # T xor S (p-1 even), so S = xor(P) xor xor(Q).
            total_p = xor_many(
                (known[(i, p)] for i in range(p - 1)), size
            )
            total_q = xor_many(
                (known[(i, p + 1)] for i in range(p - 1)), size
            )
            return xor_bytes(total_p, total_q)
        if p_missing and len(data_missing) == 1:
            # Use the diagonal through the erased column's virtual cell:
            # it contains no unknown, so S = Q[u0] xor survivors (or just
            # the survivors when u0 is the parity-less diagonal).
            column = data_missing[0]
            u0 = (column + p - 1) % p
            if u0 == p - 1:
                return diagonal_survivors(p - 1)
            return xor_bytes(known[(u0, p + 1)], diagonal_survivors(u0))
        if p_missing and not data_missing:
            # Only P (or P and Q) missing: S comes straight from the data.
            parts = []
            for j in range(p):
                i = (p - 1 - j) % p
                if i <= p - 2:
                    parts.append(known[(i, j)])
            return xor_many(parts, size)
        # Only data columns missing alongside nothing else (single data
        # erasure with both parities alive): row parity suffices, but S is
        # still exactly xor(P) xor xor(Q).
        total_p = xor_many((known[(i, p)] for i in range(p - 1)), size)
        total_q = xor_many((known[(i, p + 1)] for i in range(p - 1)), size)
        return xor_bytes(total_p, total_q)

    def _equations(
        self,
        known: Dict[Cell, bytes],
        missing: List[int],
        adjuster: bytes,
        size: int,
    ) -> List[Equation]:
        """Build row + diagonal XOR constraints with knowns folded in."""
        p = self._p
        equations: List[Equation] = []
        missing_set = set(missing)

        # Row equations: xor of data row + P cell = 0.
        if p not in missing_set:
            for i in range(p - 1):
                unknown: Set[Cell] = set()
                parts = [known[(i, p)]]
                for j in range(p):
                    if j in missing_set:
                        unknown.add((i, j))
                    else:
                        parts.append(known[(i, j)])
                equations.append(Equation(unknown, xor_many(parts, size)))

        # Diagonal equations: xor of diagonal data + S + Q cell = 0.
        if (p + 1) not in missing_set:
            for diagonal in range(p - 1):
                unknown = set()
                parts = [known[(diagonal, p + 1)], adjuster]
                for j in range(p):
                    i = (diagonal - j) % p
                    if i > p - 2:
                        continue
                    if j in missing_set:
                        unknown.add((i, j))
                    else:
                        parts.append(known[(i, j)])
                equations.append(Equation(unknown, xor_many(parts, size)))
            # The parity-less diagonal: xor of its data cells = S.
            unknown = set()
            parts = [adjuster]
            for j in range(p):
                i = (p - 1 - j) % p
                if i > p - 2:
                    continue
                if j in missing_set:
                    unknown.add((i, j))
                else:
                    parts.append(known[(i, j)])
            equations.append(Equation(unknown, xor_many(parts, size)))
        return equations
