"""Plain k-fold mirroring as an erasure code.

The degenerate code the paper's experiments use: every share is a full
copy of the block, any single survivor reconstructs it.  Wrapping it in
the :class:`~repro.erasure.base.ErasureCode` interface lets the cluster
layer treat mirroring and parity codes uniformly.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import DecodingError
from .base import ErasureCode


class MirrorCode(ErasureCode):
    """k identical copies; tolerates k-1 losses."""

    name = "mirror"

    def __init__(self, copies: int = 2) -> None:
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        self._copies = copies

    @property
    def total_shares(self) -> int:
        """Shares produced per block."""
        return self._copies

    @property
    def data_shares(self) -> int:
        """Minimum shares needed to reconstruct."""
        return 1

    def encode(self, block: bytes) -> List[bytes]:
        return [bytes(block) for _ in range(self._copies)]

    def decode(self, shares: Dict[int, bytes]) -> bytes:
        self.check_enough(shares)
        payloads = set(shares.values())
        if len(payloads) > 1:
            raise DecodingError("mirror copies disagree — corruption detected")
        return next(iter(payloads))
