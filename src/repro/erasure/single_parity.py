"""Single-parity striping — the RAID-4/RAID-5 code ([10] of the paper).

The simplest parity code: ``data`` payload shares plus one XOR parity
share; any single loss is recoverable.  Which *device* holds the parity is
a placement concern, not a coding one — under Redundant Share the parity
share's position rotates over devices per block automatically, giving the
RAID-5 "distributed parity" behaviour without a dedicated layout.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import DecodingError
from .base import ErasureCode, pad_block
from .parity import xor_many


class SingleParityCode(ErasureCode):
    """``data`` shares + 1 XOR parity share; tolerance 1."""

    name = "single-parity"

    def __init__(self, data: int) -> None:
        """Build the code.

        Args:
            data: Number of data shares (``>= 1``).
        """
        if data < 1:
            raise ValueError(f"data must be >= 1, got {data}")
        self._data = data

    @property
    def total_shares(self) -> int:
        """Shares produced per block."""
        return self._data + 1

    @property
    def data_shares(self) -> int:
        """Minimum shares needed to reconstruct."""
        return self._data

    def encode(self, block: bytes) -> List[bytes]:
        padded = pad_block(block, self._data)
        stripe = len(padded) // self._data
        shares = [
            padded[index * stripe : (index + 1) * stripe]
            for index in range(self._data)
        ]
        shares.append(xor_many(shares, stripe))
        return shares

    def decode(self, shares: Dict[int, bytes]) -> bytes:
        self.check_enough(shares)
        lengths = {len(payload) for payload in shares.values()}
        if len(lengths) != 1:
            raise DecodingError("single-parity shares have differing lengths")
        stripe = lengths.pop()
        missing = [
            position
            for position in range(self.total_shares)
            if position not in shares
        ]
        if len(missing) > 1:
            raise DecodingError(
                f"single parity tolerates 1 erasure, got {len(missing)}"
            )
        if missing and missing[0] < self._data:
            rebuilt = xor_many(shares.values(), stripe)
            shares = dict(shares)
            shares[missing[0]] = rebuilt
        return b"".join(shares[index] for index in range(self._data))
