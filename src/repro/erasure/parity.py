"""Shared machinery for the XOR parity-array codes (EVENODD, RDP).

Both codes arrange a block into a ``(p-1) x columns`` cell array and add
row/diagonal parity columns.  Reconstruction is *peeling*: every parity
constraint is an XOR equation over cells; repeatedly find an equation with
exactly one unknown cell and solve it.  For the double-erasure patterns the
codes are designed for, peeling provably completes (the diagonals of prime
``p`` form a single zig-zag chain through any two columns).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..exceptions import DecodingError

Cell = Tuple[int, int]  # (row, column)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("xor operands must have equal length")
    return bytes(x ^ y for x, y in zip(a, b))


def xor_many(parts: Iterable[bytes], size: int) -> bytes:
    """XOR an iterable of equal-length byte strings (empty -> zeros)."""
    total = bytearray(size)
    for part in parts:
        if len(part) != size:
            raise ValueError("xor operands must have equal length")
        for index, value in enumerate(part):
            total[index] ^= value
    return bytes(total)


def is_prime(value: int) -> bool:
    """Primality test for the small moduli the parity codes use."""
    if value < 2:
        return False
    if value % 2 == 0:
        return value == 2
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


class Equation:
    """One XOR constraint: ``xor(unknown cells) == value``."""

    __slots__ = ("unknowns", "value")

    def __init__(self, unknowns: Set[Cell], value: bytes) -> None:
        self.unknowns = unknowns
        self.value = value

    def absorb(self, cell: Cell, payload: bytes) -> None:
        """Substitute a solved cell into the equation."""
        self.unknowns.discard(cell)
        self.value = xor_bytes(self.value, payload)


def peel(
    equations: List[Equation], unknowns: Set[Cell], code_name: str
) -> Dict[Cell, bytes]:
    """Solve the system by iterated single-unknown substitution.

    Args:
        equations: The XOR constraints (consumed/modified in place).
        unknowns: All cells to solve for.
        code_name: For error messages.

    Returns:
        Mapping of every unknown cell to its payload.

    Raises:
        DecodingError: if peeling stalls (more erasures than the code's
            designed pattern tolerates).
    """
    solved: Dict[Cell, bytes] = {}
    pending = list(equations)
    progress = True
    while unknowns and progress:
        progress = False
        for equation in pending:
            live = equation.unknowns & unknowns
            if len(live) != 1:
                continue
            cell = next(iter(live))
            # Fold any already-solved cells of this equation first.
            for other in list(equation.unknowns):
                if other in solved:
                    equation.absorb(other, solved[other])
            payload = equation.value
            solved[cell] = payload
            unknowns.discard(cell)
            for other_equation in pending:
                if cell in other_equation.unknowns:
                    other_equation.absorb(cell, payload)
            progress = True
    if unknowns:
        raise DecodingError(
            f"{code_name}: erasure pattern outside the code's tolerance "
            f"({len(unknowns)} cells unresolved)"
        )
    return solved


def split_cells(payload: bytes, rows: int) -> List[bytes]:
    """Split a column payload into ``rows`` equal cells."""
    if len(payload) % rows:
        raise ValueError("column payload not divisible into rows")
    size = len(payload) // rows
    return [payload[index * size : (index + 1) * size] for index in range(rows)]


def join_cells(cells: Sequence[bytes]) -> bytes:
    """Concatenate cells back into a column payload."""
    return b"".join(cells)
