"""Systematic Reed-Solomon coding over GF(256).

The general-purpose MDS code the paper names as a mirroring alternative:
``data`` payload shares plus ``parity`` coded shares; *any* ``data``
survivors reconstruct the block (tolerance = ``parity``).

The generator matrix is a column-reduced Vandermonde matrix (top square =
identity), so encoding leaves the data shares verbatim — the usual choice
for storage systems, where the common case reads data shares directly.
Decoding inverts the surviving rows of the generator.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import DecodingError
from . import gf256
from .base import ErasureCode, pad_block


class ReedSolomonCode(ErasureCode):
    """RS(data + parity) with byte-interleaved shares."""

    name = "reed-solomon"

    def __init__(self, data: int, parity: int) -> None:
        """Build the code.

        Args:
            data: Number of data shares (``>= 1``).
            parity: Number of parity shares (``>= 0``); ``data + parity``
                must not exceed 256 (the field size).
        """
        if data < 1 or parity < 0:
            raise ValueError("need data >= 1 and parity >= 0")
        if data + parity > gf256.ORDER:
            raise ValueError("data + parity must be <= 256")
        self._data = data
        self._parity = parity
        self._generator = gf256.systematic_generator(data, data + parity)

    @property
    def total_shares(self) -> int:
        """Shares produced per block."""
        return self._data + self._parity

    @property
    def data_shares(self) -> int:
        """Minimum shares needed to reconstruct."""
        return self._data

    def encode(self, block: bytes) -> List[bytes]:
        padded = pad_block(block, self._data)
        stripe = len(padded) // self._data
        columns = [
            padded[index * stripe : (index + 1) * stripe]
            for index in range(self._data)
        ]
        shares = [bytearray(column) for column in columns]
        for parity_row in self._generator[self._data :]:
            share = bytearray(stripe)
            for coefficient, column in zip(parity_row, columns):
                if coefficient == 0:
                    continue
                for offset in range(stripe):
                    byte = column[offset]
                    if byte:
                        share[offset] ^= gf256.mul(coefficient, byte)
            shares.append(share)
        return [bytes(share) for share in shares]

    def decode(self, shares: Dict[int, bytes]) -> bytes:
        self.check_enough(shares)
        lengths = {len(payload) for payload in shares.values()}
        if len(lengths) != 1:
            raise DecodingError("reed-solomon shares have differing lengths")
        stripe = lengths.pop()

        positions = sorted(shares)[: self._data]
        if all(position < self._data for position in positions) and positions == list(
            range(self._data)
        ):
            # Fast path: all data shares survived; concatenate.
            return b"".join(shares[index] for index in range(self._data))

        matrix = [list(self._generator[position]) for position in positions]
        try:
            inverse = gf256.mat_invert(matrix)
        except ValueError as error:  # pragma: no cover - MDS guarantees this
            raise DecodingError(f"unexpected singular decode matrix: {error}")
        survivors = [shares[position] for position in positions]
        columns = [bytearray(stripe) for _ in range(self._data)]
        for row_index, row in enumerate(inverse):
            column = columns[row_index]
            for coefficient, survivor in zip(row, survivors):
                if coefficient == 0:
                    continue
                for offset in range(stripe):
                    byte = survivor[offset]
                    if byte:
                        column[offset] ^= gf256.mul(coefficient, byte)
        return b"".join(bytes(column) for column in columns)

    def reconstruct_share(self, shares: Dict[int, bytes], position: int) -> bytes:
        """Rebuild a single lost share (device rebuild after failure)."""
        block = self.decode(shares)
        return self.encode(block)[position]
