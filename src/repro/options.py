"""Typed option schemas shared by the name-keyed registries.

Both registries — :mod:`repro.placement.registry` and
:mod:`repro.scheduling.registry` — build instances from a *name* plus a
uniform positional shape (``(bins, copies)`` / ``(device_ids, seed)``).
Strategies whose constructors need anything beyond that shape (RPDP's
per-device service rates, Sequential Checking's device generations,
weighted striping's pattern resolution) declare it here as a typed
:class:`OptionSpec`, so every consumer — the CLI's ``--strategy-opt``,
the service configs, the benches — validates and defaults extra
parameters identically instead of each growing a private construction
path.

The contract:

* unknown option keys raise :class:`~repro.exceptions.ConfigurationError`
  listing the declared options (or stating that none are declared);
* values of the wrong type raise ``ConfigurationError`` naming the
  expected kind;
* omitted options take their declared defaults;
* :func:`parse_option_text` turns the CLI's ``key=value`` strings into
  typed values using the same schema, so ``--strategy-opt`` needs no
  per-strategy parsing code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from .exceptions import ConfigurationError

#: Accepted ``kind`` values and the phrase used in error messages.
_KIND_PHRASES = {
    "int": "an integer",
    "float": "a number",
    "bool": "a boolean",
    "str": "a string",
    "ints": "a sequence of integers",
    "weights": "a sequence of positive numbers (or a bin-id mapping)",
}


@dataclass(frozen=True)
class OptionSpec:
    """One declared per-strategy (or per-policy) option.

    Attributes:
        name: Keyword the option is passed as.
        kind: Value shape — one of ``int``, ``float``, ``bool``, ``str``,
            ``ints`` (tuple of ints) or ``weights`` (tuple of positive
            floats, or a mapping from id to positive number).
        default: Value used when the option is omitted.  Not validated —
            ``None`` is the conventional "unset" marker.
        doc: One-line description (surfaced by docs and CLI errors).
        choices: For ``str`` kinds, the accepted values.
        minimum: For numeric kinds, the inclusive lower bound (applied
            element-wise to ``ints``).
    """

    name: str
    kind: str
    default: Any = None
    doc: str = ""
    choices: Optional[Tuple[str, ...]] = None
    minimum: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _KIND_PHRASES:
            raise ValueError(f"unknown option kind {self.kind!r}")

    def validate(self, value: Any, owner: str) -> Any:
        """Return the normalized value, or raise ``ConfigurationError``."""
        label = f"option {self.name!r} of {owner}"
        kind = self.kind
        if kind == "bool":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"{label} must be {_KIND_PHRASES[kind]}, "
                    f"got {value!r}"
                )
            return value
        if kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"{label} must be {_KIND_PHRASES[kind]}, got {value!r}"
                )
            self._check_minimum(value, label)
            return value
        if kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"{label} must be {_KIND_PHRASES[kind]}, got {value!r}"
                )
            self._check_minimum(value, label)
            return float(value)
        if kind == "str":
            if not isinstance(value, str):
                raise ConfigurationError(
                    f"{label} must be {_KIND_PHRASES[kind]}, got {value!r}"
                )
            if self.choices is not None and value not in self.choices:
                raise ConfigurationError(
                    f"{label} must be one of {sorted(self.choices)}, "
                    f"got {value!r}"
                )
            return value
        if kind == "ints":
            if isinstance(value, (str, bytes, Mapping)) or not isinstance(
                value, Sequence
            ):
                raise ConfigurationError(
                    f"{label} must be {_KIND_PHRASES[kind]}, got {value!r}"
                )
            items = []
            for item in value:
                if isinstance(item, bool) or not isinstance(item, int):
                    raise ConfigurationError(
                        f"{label} must be {_KIND_PHRASES[kind]}, "
                        f"got element {item!r}"
                    )
                self._check_minimum(item, label)
                items.append(item)
            return tuple(items)
        # kind == "weights"
        if isinstance(value, Mapping):
            normalized: Dict[str, float] = {}
            for key, item in value.items():
                if not isinstance(key, str):
                    raise ConfigurationError(
                        f"{label} mapping keys must be ids, got {key!r}"
                    )
                normalized[key] = self._weight(item, label)
            return normalized
        if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
            raise ConfigurationError(
                f"{label} must be {_KIND_PHRASES['weights']}, got {value!r}"
            )
        return tuple(self._weight(item, label) for item in value)

    def _weight(self, item: Any, label: str) -> float:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ConfigurationError(
                f"{label} must hold numbers, got {item!r}"
            )
        if not item > 0:
            raise ConfigurationError(
                f"{label} must hold positive values, got {item!r}"
            )
        return float(item)

    def _check_minimum(self, value: Any, label: str) -> None:
        if self.minimum is not None and value < self.minimum:
            raise ConfigurationError(
                f"{label} must be >= {self.minimum:g}, got {value!r}"
            )

    def parse_text(self, text: str, owner: str) -> Any:
        """Parse a CLI ``key=value`` string's value half into this kind."""
        label = f"option {self.name!r} of {owner}"
        kind = self.kind
        try:
            if kind == "int":
                return self.validate(int(text), owner)
            if kind == "float":
                return self.validate(float(text), owner)
            if kind == "bool":
                lowered = text.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    return True
                if lowered in ("0", "false", "no", "off"):
                    return False
                raise ConfigurationError(
                    f"{label} must be a boolean (true/false), got {text!r}"
                )
            if kind == "ints":
                return self.validate(
                    [int(part) for part in text.split(",") if part.strip()],
                    owner,
                )
            if kind == "weights":
                return self.validate(
                    [
                        float(part)
                        for part in text.split(",")
                        if part.strip()
                    ],
                    owner,
                )
        except ValueError:
            raise ConfigurationError(
                f"{label} must be {_KIND_PHRASES[kind]}, got {text!r}"
            )
        return self.validate(text, owner)  # str


def resolve_options(
    schema: Sequence[OptionSpec],
    options: Optional[Mapping[str, Any]],
    owner: str,
) -> Dict[str, Any]:
    """Validate ``options`` against ``schema``; fill defaults.

    Args:
        schema: The declared options, in declaration order.
        options: Caller-supplied keyword options (may be None/empty).
        owner: Human-readable owner, e.g. ``"strategy 'rpdp'"`` — used
            in every error message.

    Raises:
        ConfigurationError: on unknown keys or invalid values.  A
            non-empty ``options`` against an empty schema reports that
            the owner declares no options.
    """
    supplied = dict(options or {})
    by_name = {spec.name: spec for spec in schema}
    unknown = sorted(set(supplied) - set(by_name))
    if unknown:
        if by_name:
            raise ConfigurationError(
                f"unknown option(s) {unknown} for {owner}; declared: "
                f"{sorted(by_name)}"
            )
        raise ConfigurationError(
            f"{owner} declares no options, got {unknown}"
        )
    resolved: Dict[str, Any] = {}
    for spec in schema:
        if spec.name in supplied:
            resolved[spec.name] = spec.validate(supplied[spec.name], owner)
        else:
            resolved[spec.name] = spec.default
    return resolved


def parse_option_text(
    schema: Sequence[OptionSpec],
    pairs: Sequence[str],
    owner: str,
) -> Dict[str, Any]:
    """Turn CLI ``key=value`` strings into a typed options dict.

    Unknown keys and malformed values raise ``ConfigurationError`` with
    the same messages as :func:`resolve_options`, so ``--strategy-opt``
    errors read identically to programmatic ones.  Returns only the
    supplied options (defaults are filled later by the registry).
    """
    by_name = {spec.name: spec for spec in schema}
    parsed: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, text = pair.partition("=")
        key = key.strip()
        if not separator or not key:
            raise ConfigurationError(
                f"strategy options must be key=value, got {pair!r}"
            )
        spec = by_name.get(key)
        if spec is None:
            if by_name:
                raise ConfigurationError(
                    f"unknown option(s) [{key!r}] for {owner}; declared: "
                    f"{sorted(by_name)}"
                )
            raise ConfigurationError(
                f"{owner} declares no options, got [{key!r}]"
            )
        parsed[key] = spec.parse_text(text, owner)
    return parsed
