"""Block-request traces for the cluster simulator.

A trace is a deterministic sequence of :class:`Request` objects (read or
write of one block address).  Mix generators build the standard workload
shapes: write-once-read-many, mixed OLTP-like, scan-heavy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from ..hashing.primitives import stable_u64
from . import addresses


class Op(enum.Enum):
    """Request type."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Request:
    """One block operation.

    Attributes:
        op: READ or WRITE.
        address: Virtual block address.
        payload_seed: Seed from which write payloads are derived (writes
            only); keeps traces compact and deterministic.
    """

    op: Op
    address: int
    payload_seed: int = 0

    def payload(self, size: int = 64) -> bytes:
        """Deterministic payload bytes for a write request."""
        chunks = []
        produced = 0
        counter = 0
        while produced < size:
            value = stable_u64("payload", self.payload_seed, self.address, counter)
            chunks.append(value.to_bytes(8, "little"))
            produced += 8
            counter += 1
        return b"".join(chunks)[:size]


def write_population(count: int, start: int = 0) -> Iterator[Request]:
    """Write every address once — how the paper's experiments fill bins."""
    for address in addresses.sequential(count, start):
        yield Request(Op.WRITE, address, payload_seed=1)


def mixed(
    count: int,
    universe: int,
    read_fraction: float = 0.7,
    seed: int = 0,
) -> Iterator[Request]:
    """Random mix of reads and writes over a bounded address space."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    for index in range(count):
        address = stable_u64("mixed-addr", seed, index) % universe
        coin = stable_u64("mixed-op", seed, index) / float(1 << 64)
        if coin < read_fraction:
            yield Request(Op.READ, address)
        else:
            yield Request(Op.WRITE, address, payload_seed=seed)


def zipf_reads(
    count: int, universe: int, alpha: float = 1.1, seed: int = 0
) -> Iterator[Request]:
    """Skewed read trace — exercises per-device load (not just capacity)."""
    generator = addresses.ZipfGenerator(universe, alpha=alpha, seed=seed)
    for address in generator.stream(count):
        yield Request(Op.READ, address)


def materialize(trace: Iterable[Request]) -> List[Request]:
    """Realise a lazy trace (handy for replaying it several times)."""
    return list(trace)
