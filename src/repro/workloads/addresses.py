"""Ball-address generators for experiments and benches.

The paper's evaluation uses synthetic block populations (consecutive
virtual addresses); real systems see skew, so zipf, hotspot and
flash-crowd generators are provided for the extended benches.  All
generators are deterministic given their parameters.

Two API shapes coexist:

* **Streams** (``uniform``, ``ZipfGenerator.draw``/``stream``,
  ``hotspot``, ``flash_crowd``) — scalar iterators, pure Python.
* **Samples** (``uniform_sample``, ``ZipfGenerator.sample``,
  ``flash_crowd_sample``) — whole-batch forms feeding the
  million-request scheduler benches; with NumPy they vectorize, without
  it they loop, and the two legs are bit-for-bit identical (they draw
  through :func:`repro.hashing.primitives.units_from_base`).  The
  sample forms use their own derived draw streams — deterministic under
  the same seed, but not element-wise equal to the scalar streams
  (which predate them and key their hashes differently).
  ``flash_crowd`` and ``flash_crowd_sample`` *do* share draw bases and
  agree element-wise.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator, List, Sequence

from .._compat import get_numpy
from ..hashing.primitives import (
    derive_base,
    stable_u64,
    u64_from_base,
    u64s_from_base,
    unit_from_base,
    units_from_base,
)


def sequential(count: int, start: int = 0) -> Iterator[int]:
    """Consecutive virtual addresses — the paper's population."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return iter(range(start, start + count))


def uniform(count: int, universe: int, seed: int = 0) -> Iterator[int]:
    """``count`` draws uniform over ``[0, universe)`` (with repetition)."""
    if universe <= 0:
        raise ValueError("universe must be positive")
    for index in range(count):
        yield stable_u64("uniform", seed, index) % universe


class ZipfGenerator:
    """Zipf-distributed addresses over ``[0, universe)``.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1)^alpha``; an inverse-CDF table makes draws O(log U).
    """

    def __init__(self, universe: int, alpha: float = 1.1, seed: int = 0) -> None:
        if universe <= 0:
            raise ValueError("universe must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self._universe = universe
        self._alpha = alpha
        self._seed = seed
        cumulative: List[float] = []
        total = 0.0
        for rank in range(universe):
            total += 1.0 / math.pow(rank + 1, alpha)
            cumulative.append(total)
        self._cumulative = [value / total for value in cumulative]

    def draw(self, index: int) -> int:
        """The ``index``-th deterministic draw."""
        uniform_draw = (
            stable_u64("zipf", self._seed, index) / float(1 << 64)
        )
        lo, hi = 0, self._universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if uniform_draw < self._cumulative[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def stream(self, count: int) -> Iterator[int]:
        """``count`` deterministic draws."""
        return (self.draw(index) for index in range(count))

    def sample(self, count: int, start: int = 0):
        """Batched draws for sequence numbers ``[start, start + count)``.

        The batch engine behind the scheduler benches: an ``int64``
        array with NumPy, a list of ints without, bit-for-bit identical
        between the legs.  Uses its own derived draw stream (seeded on
        the generator's seed), distinct from :meth:`draw`'s.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        base = derive_base("zipf-batch", self._seed)
        top = self._universe - 1
        np = get_numpy()
        if np is None:
            cumulative = self._cumulative
            return [
                min(bisect.bisect_right(cumulative, unit_from_base(base, index)), top)
                for index in range(start, start + count)
            ]
        units = units_from_base(
            base, np.arange(start, start + count, dtype=np.uint64)
        )
        cumulative = np.asarray(self._cumulative, dtype=np.float64)
        ranks = np.searchsorted(cumulative, units, side="right")
        return np.minimum(ranks, top).astype(np.int64)


def hotspot(
    count: int,
    universe: int,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
    seed: int = 0,
) -> Iterator[int]:
    """A fraction of the address space receives most of the accesses.

    Args:
        count: Number of addresses to generate.
        universe: Address-space size.
        hot_fraction: Share of the universe that is "hot".
        hot_weight: Probability an access goes to the hot region.
        seed: Determinism seed.
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must be in (0, 1)")
    if not 0.0 <= hot_weight <= 1.0:
        raise ValueError("hot_weight must be in [0, 1]")
    hot_size = max(1, int(universe * hot_fraction))
    for index in range(count):
        coin = stable_u64("hotspot-coin", seed, index) / float(1 << 64)
        if coin < hot_weight:
            yield stable_u64("hotspot-hot", seed, index) % hot_size
        else:
            cold = universe - hot_size
            yield hot_size + stable_u64("hotspot-cold", seed, index) % max(1, cold)


def uniform_sample(count: int, universe: int, seed: int = 0, start: int = 0):
    """Batched uniform draws over ``[0, universe)``.

    The batch form of :func:`uniform` (on a distinct derived draw
    stream): ``int64`` array with NumPy, list of ints without,
    bit-identical between the legs.
    """
    if universe <= 0:
        raise ValueError("universe must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    base = derive_base("uniform-batch", seed)
    np = get_numpy()
    if np is None:
        return [
            u64_from_base(base, index) % universe
            for index in range(start, start + count)
        ]
    draws = u64s_from_base(base, np.arange(start, start + count, dtype=np.uint64))
    return (draws % np.uint64(universe)).astype(np.int64)


def _flash_crowd_params(
    count: int,
    universe: int,
    crowd_weight: float,
    crowd_size: int,
    window: Sequence[float],
    seed: int,
):
    """Validate flash-crowd parameters; derive targets, window and bases."""
    if universe <= 0:
        raise ValueError("universe must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0.0 <= crowd_weight <= 1.0:
        raise ValueError("crowd_weight must be in [0, 1]")
    if crowd_size < 1:
        raise ValueError("crowd_size must be >= 1")
    begin_frac, end_frac = window
    if not 0.0 <= begin_frac <= end_frac <= 1.0:
        raise ValueError("window must satisfy 0 <= begin <= end <= 1")
    target_base = derive_base("flash-target", seed)
    targets = [
        u64_from_base(target_base, slot) % universe for slot in range(crowd_size)
    ]
    begin = int(count * begin_frac)
    end = int(count * end_frac)
    bases = (
        derive_base("flash-coin", seed),
        derive_base("flash-pick", seed),
        derive_base("flash-bg", seed),
    )
    return targets, begin, end, bases


def flash_crowd(
    count: int,
    universe: int,
    *,
    crowd_weight: float = 0.8,
    crowd_size: int = 1,
    window: Sequence[float] = (0.25, 0.75),
    seed: int = 0,
) -> Iterator[int]:
    """A flash crowd: mid-stream, most requests slam a few addresses.

    Outside the crowd window the stream is uniform background traffic.
    Inside it (``window`` as fractions of the stream), each request goes
    to one of ``crowd_size`` fixed target addresses with probability
    ``crowd_weight`` — the "everyone loads the same page" scenario that
    stresses copy scheduling far harder than stationary Zipf skew.

    Element-wise identical to :func:`flash_crowd_sample` (they share
    draw bases).
    """
    targets, begin, end, bases = _flash_crowd_params(
        count, universe, crowd_weight, crowd_size, window, seed
    )
    coin_base, pick_base, background_base = bases
    for index in range(count):
        if begin <= index < end and (
            unit_from_base(coin_base, index) < crowd_weight
        ):
            yield targets[u64_from_base(pick_base, index) % crowd_size]
        else:
            yield u64_from_base(background_base, index) % universe


def flash_crowd_sample(
    count: int,
    universe: int,
    *,
    crowd_weight: float = 0.8,
    crowd_size: int = 1,
    window: Sequence[float] = (0.25, 0.75),
    seed: int = 0,
):
    """Batched :func:`flash_crowd`: same parameters, same draw bases,
    element-wise identical addresses — as an ``int64`` array (NumPy) or
    list of ints (pure leg)."""
    targets, begin, end, bases = _flash_crowd_params(
        count, universe, crowd_weight, crowd_size, window, seed
    )
    coin_base, pick_base, background_base = bases
    np = get_numpy()
    if np is None:
        result: List[int] = []
        for index in range(count):
            if begin <= index < end and (
                unit_from_base(coin_base, index) < crowd_weight
            ):
                result.append(targets[u64_from_base(pick_base, index) % crowd_size])
            else:
                result.append(u64_from_base(background_base, index) % universe)
        return result
    indices = np.arange(count, dtype=np.uint64)
    coins = units_from_base(coin_base, indices)
    in_window = (indices >= np.uint64(begin)) & (indices < np.uint64(end))
    crowd = in_window & (coins < crowd_weight)
    picks = u64s_from_base(pick_base, indices) % np.uint64(crowd_size)
    background = u64s_from_base(background_base, indices) % np.uint64(universe)
    target_table = np.asarray(targets, dtype=np.int64)
    return np.where(
        crowd, target_table[picks.astype(np.int64)], background.astype(np.int64)
    )
