"""Ball-address generators for experiments and benches.

The paper's evaluation uses synthetic block populations (consecutive
virtual addresses); real systems see skew, so zipf and hotspot generators
are provided for the extended benches.  All generators are deterministic
given their parameters.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from ..hashing.primitives import stable_u64


def sequential(count: int, start: int = 0) -> Iterator[int]:
    """Consecutive virtual addresses — the paper's population."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return iter(range(start, start + count))


def uniform(count: int, universe: int, seed: int = 0) -> Iterator[int]:
    """``count`` draws uniform over ``[0, universe)`` (with repetition)."""
    if universe <= 0:
        raise ValueError("universe must be positive")
    for index in range(count):
        yield stable_u64("uniform", seed, index) % universe


class ZipfGenerator:
    """Zipf-distributed addresses over ``[0, universe)``.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1)^alpha``; an inverse-CDF table makes draws O(log U).
    """

    def __init__(self, universe: int, alpha: float = 1.1, seed: int = 0) -> None:
        if universe <= 0:
            raise ValueError("universe must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self._universe = universe
        self._alpha = alpha
        self._seed = seed
        cumulative: List[float] = []
        total = 0.0
        for rank in range(universe):
            total += 1.0 / math.pow(rank + 1, alpha)
            cumulative.append(total)
        self._cumulative = [value / total for value in cumulative]

    def draw(self, index: int) -> int:
        """The ``index``-th deterministic draw."""
        uniform_draw = (
            stable_u64("zipf", self._seed, index) / float(1 << 64)
        )
        lo, hi = 0, self._universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if uniform_draw < self._cumulative[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def stream(self, count: int) -> Iterator[int]:
        """``count`` deterministic draws."""
        return (self.draw(index) for index in range(count))


def hotspot(
    count: int,
    universe: int,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
    seed: int = 0,
) -> Iterator[int]:
    """A fraction of the address space receives most of the accesses.

    Args:
        count: Number of addresses to generate.
        universe: Address-space size.
        hot_fraction: Share of the universe that is "hot".
        hot_weight: Probability an access goes to the hot region.
        seed: Determinism seed.
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must be in (0, 1)")
    if not 0.0 <= hot_weight <= 1.0:
        raise ValueError("hot_weight must be in [0, 1]")
    hot_size = max(1, int(universe * hot_fraction))
    for index in range(count):
        coin = stable_u64("hotspot-coin", seed, index) / float(1 << 64)
        if coin < hot_weight:
            yield stable_u64("hotspot-hot", seed, index) % hot_size
        else:
            cold = universe - hot_size
            yield hot_size + stable_u64("hotspot-cold", seed, index) % max(1, cold)
