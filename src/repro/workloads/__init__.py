"""Workload generators: address populations, request traces, persistence."""

from .addresses import ZipfGenerator, hotspot, sequential, uniform
from .persistence import dump_trace, load_trace
from .traces import Op, Request, materialize, mixed, write_population, zipf_reads

__all__ = [
    "Op",
    "Request",
    "ZipfGenerator",
    "dump_trace",
    "hotspot",
    "load_trace",
    "materialize",
    "mixed",
    "sequential",
    "uniform",
    "write_population",
    "zipf_reads",
]
