"""Workload generators: address populations, request traces, persistence."""

from .addresses import (
    ZipfGenerator,
    flash_crowd,
    flash_crowd_sample,
    hotspot,
    sequential,
    uniform,
    uniform_sample,
)
from .persistence import dump_trace, load_trace
from .traces import Op, Request, materialize, mixed, write_population, zipf_reads

__all__ = [
    "Op",
    "Request",
    "ZipfGenerator",
    "dump_trace",
    "flash_crowd",
    "flash_crowd_sample",
    "hotspot",
    "load_trace",
    "materialize",
    "mixed",
    "sequential",
    "uniform",
    "uniform_sample",
    "write_population",
    "zipf_reads",
]
