"""Trace persistence: save and replay request traces as JSON lines.

Experiments become comparable across machines and runs when the exact
trace is an artifact.  One JSON object per line keeps files streamable and
diff-friendly::

    {"op": "write", "address": 17, "seed": 1}
    {"op": "read", "address": 17}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from .traces import Op, Request

PathLike = Union[str, Path]


def dump_trace(trace: Iterable[Request], path: PathLike) -> int:
    """Write a trace to ``path`` (JSON lines).

    Returns:
        Number of requests written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for request in trace:
            record = {"op": request.op.value, "address": request.address}
            if request.op is Op.WRITE:
                record["seed"] = request.payload_seed
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_trace(path: PathLike) -> Iterator[Request]:
    """Stream a trace back from ``path``.

    Raises:
        ValueError: on malformed lines.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                op = Op(record["op"])
                address = int(record["address"])
            except (json.JSONDecodeError, KeyError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line: {error}"
                ) from None
            if op is Op.WRITE:
                yield Request(op, address, payload_seed=int(record.get("seed", 0)))
            else:
                yield Request(op, address)
