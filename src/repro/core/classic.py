"""Literal Algorithm 2 (LinMirror) with an explicit ``placeonecopy``.

:class:`~repro.core.redundant_share.RedundantShare` realises the paper's
strategy through one exact hazard table.  This module keeps the *literal*
formulation of Section 3.1 alongside it, for fidelity and for the
``placeonecopy``-backend ablation:

* the primary copy is chosen by the while loop over ``č_i = 2 b_i / B_i``;
* the secondary copy is delegated to a pluggable fair single-copy strategy
  (``placeonecopy``) over the remaining bins with natural capacity weights;
* at the inhomogeneity boundary — the first bin ``T`` with ``č_T >= 1`` —
  the weight bin ``T`` gets inside the distribution used for primaries on
  bin ``T - 1`` is boosted to ``b̃`` (equations 2–5 of the paper) so that
  bin ``T``'s total inflow meets its fair demand exactly.

Both classes are perfectly fair with identical marginals; they differ in
the joint distribution (which bin pairs co-occur) and in how much data
moves under reconfiguration, which is precisely what the ablation bench
measures for the different ``placeonecopy`` backends.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..capacity.clipping import clip_capacities
from ..capacity.weights import (
    first_saturated_index,
    reach_probabilities,
    round_probabilities,
    suffix_sums,
)
from ..exceptions import PlacementError
from ..hashing.primitives import derive_base, unit_from_base
from ..placement.base import ReplicationStrategy, WeightedPlacer
from ..placement.rendezvous import make_rendezvous
from ..types import BinSpec, Placement, sort_bins_by_capacity

#: Secondary-placer factory: (ids, weights, namespace) -> WeightedPlacer.
PlacerFactory = Callable[[Sequence[str], Sequence[float], str], WeightedPlacer]


def boundary_boost(capacities: Sequence[float]) -> Optional[float]:
    """Compute the paper's ``b̃`` for a clipped, descending capacity vector.

    Returns the boosted weight for bin ``T`` inside the secondary
    distribution used when the primary lands on bin ``T - 1``, or None when
    no boost is needed (``T == 0``, or the natural weights are already
    exact because ``č`` is exactly 1 at the boundary).

    Raises:
        PlacementError: if the required boost is negative or would need to
            exceed "all secondaries of bin T-1 go to bin T" — both
            impossible for correctly clipped inputs.
    """
    k = 2
    sums = suffix_sums(capacities)
    total = sums[0]
    rounds = round_probabilities(capacities, k)
    saturated = first_saturated_index(rounds)
    if saturated == 0:
        return None
    reach = reach_probabilities(rounds)
    primaries = [
        min(prob, 1.0) * reach[index] for index, prob in enumerate(rounds)
    ]

    target = k * capacities[saturated] / total
    # Natural inflow from primaries strictly before T-1.
    natural_inflow = sum(
        primaries[index] * capacities[saturated] / sums[index + 1]
        for index in range(saturated - 1)
    )
    source = primaries[saturated - 1]
    needed = target - reach[saturated] - natural_inflow
    if needed < -1e-9:
        raise PlacementError("boundary bin is over-supplied; clipping broken")
    if source <= 0.0:
        raise PlacementError("no primary mass at the boundary predecessor")
    share = needed / source
    if share >= 1.0 - 1e-12:
        # All secondaries of T-1 must go to T: signalled by an "infinite"
        # boost; the caller treats it as a deterministic choice.
        return float("inf")
    if share <= 0.0:
        return None
    tail = sums[saturated + 1]
    return share * tail / (1.0 - share)


class ClassicLinMirror(ReplicationStrategy):
    """The verbatim Algorithm 2, parameterised by ``placeonecopy``."""

    name = "classic-lin-mirror"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        namespace: str = "",
        placer_factory: PlacerFactory = make_rendezvous,
        apply_boost: bool = True,
    ) -> None:
        """Build the strategy.

        Args:
            bins: The participating storage devices.
            namespace: Hash salt prefix.
            placer_factory: Fair single-copy backend used for the secondary
                copy (rendezvous by default; consistent hashing and alias
                backends live in :mod:`repro.placement`).
            apply_boost: Apply the ``b̃`` boundary adjustment (default).
                Disabling it reproduces the small unfairness the paper
                describes in Section 3.1 — used by the ablation bench.
        """
        super().__init__(bins, copies=2, namespace=namespace)
        self._ordered = sort_bins_by_capacity(self._bins)
        raw = [float(spec.capacity) for spec in self._ordered]
        self._capacities = clip_capacities(raw, 2)
        self._rank_ids = [spec.bin_id for spec in self._ordered]
        self._rounds = [
            min(1.0, value)
            for value in round_probabilities(self._capacities, 2)
        ]
        self._saturated = first_saturated_index(self._rounds)
        self._boost = boundary_boost(self._capacities) if apply_boost else None
        self._placer_factory = placer_factory
        self._placers: Dict[int, Optional[WeightedPlacer]] = {}
        self._primary_bases = [
            derive_base(self._namespace, "primary", bin_id)
            for bin_id in self._rank_ids
        ]

    @property
    def boundary_index(self) -> int:
        """Rank ``T`` of the deterministic primary stop."""
        return self._saturated

    @property
    def boost(self) -> Optional[float]:
        """The ``b̃`` weight in effect (None when no boost applies)."""
        return self._boost

    def _secondary_placer(self, primary_rank: int) -> Optional[WeightedPlacer]:
        """placeonecopy instance for primaries at ``primary_rank`` (cached).

        Returns None when the secondary is forced (one remaining bin or an
        infinite boost).
        """
        if primary_rank in self._placers:
            return self._placers[primary_rank]
        ids = self._rank_ids[primary_rank + 1 :]
        weights = list(self._capacities[primary_rank + 1 :])
        placer: Optional[WeightedPlacer]
        if len(ids) == 1:
            placer = None
        elif (
            self._boost is not None
            and primary_rank == self._saturated - 1
        ):
            if self._boost == float("inf"):
                placer = None  # secondary deterministically at rank T
            else:
                weights[0] = self._boost  # rank T is first in the tail
                placer = self._placer_factory(
                    ids, weights, f"{self._namespace}/sec/{primary_rank}"
                )
        else:
            placer = self._placer_factory(
                ids, weights, f"{self._namespace}/sec/{primary_rank}"
            )
        self._placers[primary_rank] = placer
        return placer

    def place(self, address: int) -> Placement:
        """Primary via the while loop, secondary via placeonecopy."""
        primary_rank = self._saturated
        for rank in range(self._saturated):
            draw = unit_from_base(self._primary_bases[rank], address)
            if draw < self._rounds[rank]:
                primary_rank = rank
                break
        placer = self._secondary_placer(primary_rank)
        if placer is None:
            secondary = self._rank_ids[primary_rank + 1]
        else:
            secondary = placer.place(address)
        return (self._rank_ids[primary_rank], secondary)

    def expected_shares(self) -> Dict[str, float]:
        """Fair target shares (b̂-proportional); exact for the rendezvous
        backend, approximate for ring/alias backends."""
        total = sum(self._capacities)
        return {
            bin_id: capacity / total
            for bin_id, capacity in zip(self._rank_ids, self._capacities)
        }
