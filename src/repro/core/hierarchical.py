"""Hierarchical Redundant Share: copies spread across failure domains.

A natural extension of the paper (its conclusion asks for strategies with
stronger structure): place the ``k`` copies of every block in ``k``
*distinct racks* (failure domains), so that losing an entire rack never
loses more than one copy — while keeping per-device fairness.

Construction: run Redundant Share over the racks (weights = rack capacity
sums, clipped for ``k``), then pick one device inside each selected rack
with an exactly fair single-copy rendezvous.  Fairness composes: a device
holding fraction ``f`` of its rack, in a rack deserving copy-probability
``k·c_R``, receives ``k·c_R·f = k·b_d/B`` of the copies — the same target
as flat Redundant Share (rack-level clipping permitting), now with rack
fault tolerance on top.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..exceptions import ConfigurationError
from ..placement.base import ReplicationStrategy
from ..placement.rendezvous import WeightedRendezvous
from ..types import BinSpec, Placement
from .redundant_share import RedundantShare


class HierarchicalRedundantShare(ReplicationStrategy):
    """Rack-aware k-replication: one copy per rack, fair per device."""

    name = "hierarchical-redundant-share"

    def __init__(
        self,
        racks: Mapping[str, Sequence[BinSpec]],
        copies: int = 2,
        namespace: str = "",
    ) -> None:
        """Build the two-level strategy.

        Args:
            racks: Failure domains: rack name -> device specs.  At least
                ``copies`` racks are required (one copy per rack).
            copies: Replication degree ``k``.
            namespace: Hash salt prefix.

        Raises:
            ConfigurationError: on empty racks, duplicate devices, or
                fewer racks than ``copies``.
        """
        if len(racks) < copies:
            raise ConfigurationError(
                f"need at least k={copies} racks, got {len(racks)}"
            )
        all_bins: List[BinSpec] = []
        rack_bins: List[BinSpec] = []
        self._rack_devices: Dict[str, List[BinSpec]] = {}
        for rack_name, devices in racks.items():
            devices = list(devices)
            if not devices:
                raise ConfigurationError(f"rack {rack_name!r} has no devices")
            self._rack_devices[rack_name] = devices
            all_bins.extend(devices)
            rack_bins.append(
                BinSpec(rack_name, sum(spec.capacity for spec in devices))
            )
        super().__init__(all_bins, copies, namespace)
        self._rack_strategy = RedundantShare(
            rack_bins, copies=copies, namespace=f"{self._namespace}/racks"
        )
        self._device_placers: Dict[str, WeightedRendezvous] = {
            rack_name: WeightedRendezvous(
                [spec.bin_id for spec in devices],
                [float(spec.capacity) for spec in devices],
                f"{self._namespace}/rack/{rack_name}",
            )
            for rack_name, devices in self._rack_devices.items()
        }
        self._rack_of = {
            spec.bin_id: rack_name
            for rack_name, devices in self._rack_devices.items()
            for spec in devices
        }

    def rack_of(self, device_id: str) -> str:
        """Failure domain of a device."""
        return self._rack_of[device_id]

    @property
    def rack_strategy(self) -> RedundantShare:
        """The rack-level Redundant Share instance."""
        return self._rack_strategy

    def place(self, address: int) -> Placement:
        """One device per selected rack; position i = rack-copy i."""
        rack_choice = self._rack_strategy.place(address)
        return tuple(
            self._device_placers[rack_name].place(address)
            for rack_name in rack_choice
        )

    def expected_shares(self) -> Dict[str, float]:
        """Exact composed shares: rack share x in-rack device share."""
        rack_shares = self._rack_strategy.expected_shares()
        shares: Dict[str, float] = {}
        for rack_name, devices in self._rack_devices.items():
            rack_total = sum(spec.capacity for spec in devices)
            for spec in devices:
                shares[spec.bin_id] = (
                    rack_shares[rack_name] * spec.capacity / rack_total
                )
        return shares
