"""The paper's primary contribution: Redundant Share.

* :class:`~repro.core.redundant_share.RedundantShare` — Algorithms 2/4 via
  an exact hazard table, O(n + k) lookups.
* :class:`~repro.core.redundant_share.LinMirror` — the k = 2 special case.
* :class:`~repro.core.fast_variant.FastRedundantShare` — the Section 3.3
  precomputed variant, O(k) lookups.
* :class:`~repro.core.classic.ClassicLinMirror` — the verbatim Algorithm 2
  with a pluggable ``placeonecopy`` and the b̃ boundary boost (eqs. 2–5).
* :class:`~repro.core.sequential_checking.SequentialChecking` — the
  reallocation-free contender (zero movement on scale-out).
* :mod:`repro.core.preprocess` — the hazard-table solver.
"""

from .balanced_rendezvous import BalancedRendezvous
from .classic import ClassicLinMirror, boundary_boost
from .fast_variant import FastRedundantShare
from .hierarchical import HierarchicalRedundantShare
from .objectstore import ObjectExtent, ObjectNotFoundError, ObjectStore
from .preprocess import HazardTable, compute_hazards
from .redundant_share import LinMirror, RedundantShare
from .sequential_checking import SequentialChecking
from .virtualizer import VirtualVolume

__all__ = [
    "BalancedRendezvous",
    "ClassicLinMirror",
    "FastRedundantShare",
    "HazardTable",
    "HierarchicalRedundantShare",
    "LinMirror",
    "ObjectExtent",
    "ObjectNotFoundError",
    "ObjectStore",
    "RedundantShare",
    "SequentialChecking",
    "VirtualVolume",
    "boundary_boost",
    "compute_hazards",
]
