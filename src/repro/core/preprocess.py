"""Hazard-table preprocessing for Redundant Share.

Redundant Share (Algorithms 2 and 4 of the paper) walks the bins in
descending capacity order and decides, per bin and per copy, whether the
copy lands there.  The decision at copy ``c`` (1-based) and bin rank ``i``
is a Bernoulli draw with a *hazard* probability ``h_c(i)``; the walk is
memoryless, so the full strategy is characterised by the hazard matrix.

The paper derives the hazards recursively: ``č_i = r * b_i / B_i`` (with
``r`` copies remaining and ``B_i`` the suffix capacity sum), capped at 1,
plus a boundary adjustment ``b̃`` (equations 2–5) where the cap makes the
natural formula under-deliver.  This module computes the same object *in
closed form*: a forward pass over the bins solves for the exact hazards
that give every bin its fair expected number of copies

    t_i = k * b̂_i / sum(b̂)          (b̂ = capacities clipped per Lemma 2.2)

while following the paper's allocation structure — natural hazards wherever
they are exact, and corrections absorbed by the deepest copies (the
``placeonecopy`` boost of Section 3.1) at inhomogeneity boundaries.

Notation used throughout (all arrays are per copy ``c in 1..k`` and bin
rank ``i in 0..n-1``):

* ``F_c(i)``  — probability copy ``c`` is placed at rank <= i (CDF).
* ``R_c(i)``  — probability the copy-``c`` scan *reaches* rank ``i``:
  ``R_c(i) = F_{c-1}(i-1) - F_c(i-1)`` (copy c-1 done, copy c not yet).
* ``M_c(i)``  — probability copy ``c`` lands on rank ``i`` (= ``h_c(i) R_c(i)``).

Identities the construction maintains and asserts:

* ``sum_c M_c(i) = t_i``                         (perfect fairness)
* ``sum_i M_c(i) = 1``                           (every copy is placed)
* ``M_c(i) = R_c(i)`` whenever ``n - i == k - c + 1``  (termination: copy c
  must be placed while enough bins remain for the copies after it)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..capacity.weights import suffix_sums
from ..exceptions import ConfigurationError, PlacementError

#: Numerical tolerance for the conservation asserts.  The forward pass does
#: O(k n) float operations; 1e-9 leaves ample headroom.
_EPS = 1e-9


@dataclass(frozen=True)
class HazardTable:
    """The preprocessed description of a Redundant Share instance.

    Attributes:
        copies: Replication degree ``k``.
        capacities: Clipped capacities in descending order (``b̂``).
        targets: Fair per-bin expected copy counts ``t_i`` (sum = k).
        hazards: ``hazards[c-1][i]`` = probability copy ``c`` selects rank
            ``i`` given its scan reached rank ``i``.
        marginals: ``marginals[c-1][i]`` = unconditional probability copy
            ``c`` lands on rank ``i``.
        reach: ``reach[c-1][i]`` = probability the copy-``c`` scan reaches
            rank ``i``.
    """

    copies: int
    capacities: List[float]
    targets: List[float]
    hazards: List[List[float]]
    marginals: List[List[float]]
    reach: List[List[float]]

    @property
    def bin_count(self) -> int:
        """Number of bins the table covers."""
        return len(self.capacities)

    def copy_distribution(self, copy: int) -> List[float]:
        """Marginal landing distribution of copy ``copy`` (1-based)."""
        if not 1 <= copy <= self.copies:
            raise IndexError(f"copy {copy} out of range 1..{self.copies}")
        return list(self.marginals[copy - 1])

    def conditional_distribution(self, copy: int, previous_rank: int) -> List[float]:
        """``P(copy c at rank i | copy c-1 at previous_rank)`` for all i.

        The memoryless scan makes this a simple hazard chain; it is the
        object the O(k) fast variant precomputes per state (Section 3.3).
        For ``copy == 1`` use ``previous_rank == -1``.
        """
        if not 1 <= copy <= self.copies:
            raise IndexError(f"copy {copy} out of range 1..{self.copies}")
        if not -1 <= previous_rank < self.bin_count:
            raise IndexError(f"previous rank {previous_rank} out of range")
        row = self.hazards[copy - 1]
        result = [0.0] * self.bin_count
        survive = 1.0
        for rank in range(previous_rank + 1, self.bin_count):
            result[rank] = survive * row[rank]
            survive *= 1.0 - row[rank]
        return result


def natural_hazard(remaining: int, capacity: float, suffix: float) -> float:
    """The paper's ``č = r * b_i / B_i``, capped at 1."""
    return min(1.0, remaining * capacity / suffix)


def compute_hazards(capacities: Sequence[float], copies: int) -> HazardTable:
    """Solve for the exact Redundant Share hazard matrix.

    Args:
        capacities: *Clipped* capacities sorted in descending order (use
            :func:`repro.capacity.clip_capacities` first — clipping
            guarantees ``t_i <= 1`` so the demands are feasible).
        copies: Replication degree ``k`` with ``1 <= k <= len(capacities)``.

    Raises:
        ConfigurationError: on invalid inputs.
        PlacementError: if the forward pass cannot meet a bin's fair demand
            — impossible for correctly clipped inputs; kept as a hard check
            of the construction's invariants.
    """
    n = len(capacities)
    if copies < 1:
        raise ConfigurationError(f"copies must be >= 1, got {copies}")
    if n < copies:
        raise ConfigurationError(
            f"cannot place {copies} distinct copies on {n} bins"
        )
    if any(value <= 0 for value in capacities):
        raise ConfigurationError("capacities must be positive")
    for left, right in zip(capacities, capacities[1:]):
        if left < right:
            raise ConfigurationError("capacities must be sorted descending")

    sums = suffix_sums(capacities)
    total = sums[0]
    targets = [copies * value / total for value in capacities]
    if targets[0] > 1.0 + _EPS:
        raise ConfigurationError(
            "largest bin exceeds a 1/k capacity share; clip capacities "
            "first (Lemma 2.1 / Algorithm 1)"
        )

    hazards = [[0.0] * n for _ in range(copies)]
    marginals = [[0.0] * n for _ in range(copies)]
    reach = [[0.0] * n for _ in range(copies)]
    # cdf[c] tracks F_{c+1}(i-1) as the pass advances; cdf_virtual = F_0 = 1.
    cdf = [0.0] * copies

    for i in range(n):
        # Reach probabilities at this rank, from the CDFs at rank i-1.
        for c in range(copies):
            above = 1.0 if c == 0 else cdf[c - 1]
            reach[c][i] = max(0.0, above - cdf[c])

        demand = min(targets[i], 1.0)
        allocation = [0.0] * copies

        # 1. Termination constraints: copy c (1-based c = index+1) must be
        #    placed while k - c bins remain after rank i.
        bins_after = n - 1 - i
        for c in range(copies):
            copies_after = copies - (c + 1)
            if bins_after <= copies_after and reach[c][i] > 0.0:
                allocation[c] = reach[c][i]
        mandatory = sum(allocation)
        if mandatory > demand + 1e-6:
            raise PlacementError(
                f"termination needs {mandatory:.12f} at rank {i}, fair "
                f"demand is only {demand:.12f}"
            )
        remaining = max(0.0, demand - mandatory)

        # 2. Natural allocations (the paper's č), capped by the remaining
        #    demand, walked from the primary copy downwards.
        for c in range(copies):
            if allocation[c] > 0.0 or reach[c][i] <= 0.0:
                continue
            natural = natural_hazard(copies - c, capacities[i], sums[i])
            wanted = min(natural * reach[c][i], remaining)
            allocation[c] = wanted
            remaining -= wanted
            if remaining <= 0.0:
                remaining = 0.0
                break

        # 3. Boundary correction: absorb any residual demand with the
        #    deepest copies that still have slack (the paper's b̃ boost
        #    lives in placeonecopy, i.e. the last copy).
        if remaining > _EPS:
            for c in range(copies - 1, -1, -1):
                slack = reach[c][i] - allocation[c]
                if slack <= 0.0:
                    continue
                take = min(slack, remaining)
                allocation[c] += take
                remaining -= take
                if remaining <= _EPS:
                    break
        if remaining > 1e-6:
            raise PlacementError(
                f"rank {i}: fair demand {demand:.12f} cannot be met; "
                f"residual {remaining:.3e}"
            )

        # Commit: derive hazards and advance the CDFs.
        for c in range(copies):
            marginals[c][i] = allocation[c]
            if reach[c][i] > 0.0:
                hazards[c][i] = min(1.0, allocation[c] / reach[c][i])
            else:
                # Unreachable state; hazard value is never consulted, but
                # keep the natural formula for inspection friendliness.
                hazards[c][i] = natural_hazard(
                    copies - c, capacities[i], sums[i]
                )
            cdf[c] += allocation[c]

    for c in range(copies):
        if abs(cdf[c] - 1.0) > 1e-6:
            raise PlacementError(
                f"copy {c + 1} places with probability {cdf[c]:.12f} != 1"
            )

    return HazardTable(
        copies=copies,
        capacities=list(map(float, capacities)),
        targets=targets,
        hazards=hazards,
        marginals=marginals,
        reach=reach,
    )
