"""A small named-object store on top of the virtual volume.

The downstream consumer the paper's introduction gestures at: users do not
address blocks, they store *objects* (files, documents, segments).
:class:`ObjectStore` provides ``put/get/delete/list`` over named blobs,
mapping each object to a dedicated extent of volume blocks through a tiny
allocation table — all durability, fairness and reconfiguration behaviour
is inherited from the layers below (volume → cluster → Redundant Share).

Block 0 region of the volume is *not* reserved: object extents are
allocated from a monotonically growing block cursor, and the allocation
table lives in memory (persist it with the cluster snapshot if needed —
the table is returned by :meth:`ObjectStore.manifest`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..exceptions import BlockNotFoundError, ReproError
from .virtualizer import VirtualVolume


class ObjectNotFoundError(ReproError):
    """An object name was not present in the store."""


@dataclass(frozen=True)
class ObjectExtent:
    """Where an object lives on the volume.

    Attributes:
        first_block: First volume block of the extent.
        block_count: Blocks occupied.
        size: Exact object size in bytes.
    """

    first_block: int
    block_count: int
    size: int


class ObjectStore:
    """Named blobs over a :class:`~repro.core.virtualizer.VirtualVolume`."""

    def __init__(self, volume: VirtualVolume) -> None:
        self._volume = volume
        self._objects: Dict[str, ObjectExtent] = {}
        self._next_block = 0

    @property
    def volume(self) -> VirtualVolume:
        """The backing volume."""
        return self._volume

    def put(self, name: str, data: bytes) -> ObjectExtent:
        """Store (or replace) an object."""
        if not name:
            raise ValueError("object name must be non-empty")
        if name in self._objects:
            self.delete(name)
        block_size = self._volume.block_size
        blocks = max(1, -(-len(data) // block_size))
        extent = ObjectExtent(self._next_block, blocks, len(data))
        self._next_block += blocks
        if data:
            self._volume.write(extent.first_block * block_size, data)
        else:
            # Materialise one zero block so the extent exists durably.
            self._volume.write(extent.first_block * block_size, b"\x00")
        self._objects[name] = extent
        return extent

    def get(self, name: str) -> bytes:
        """Fetch an object.

        Raises:
            ObjectNotFoundError: for unknown names.
        """
        extent = self._extent(name)
        if extent.size == 0:
            return b""
        return self._volume.read(
            extent.first_block * self._volume.block_size, extent.size
        )

    def delete(self, name: str) -> None:
        """Remove an object and free its blocks.

        Raises:
            ObjectNotFoundError: for unknown names.
        """
        extent = self._extent(name)
        for block in range(
            extent.first_block, extent.first_block + extent.block_count
        ):
            self._volume.truncate_block(block)
        del self._objects[name]

    def exists(self, name: str) -> bool:
        """True if the object is stored."""
        return name in self._objects

    def size(self, name: str) -> int:
        """Exact byte size of an object."""
        return self._extent(name).size

    def list_objects(self) -> List[str]:
        """Sorted object names."""
        return sorted(self._objects)

    def manifest(self) -> Dict[str, ObjectExtent]:
        """The allocation table (copy)."""
        return dict(self._objects)

    def _extent(self, name: str) -> ObjectExtent:
        try:
            return self._objects[name]
        except KeyError:
            raise ObjectNotFoundError(f"no object {name!r}") from None
