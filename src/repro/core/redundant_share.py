"""Redundant Share — the paper's core contribution (Section 3).

:class:`RedundantShare` implements k-fold replicated placement over
arbitrary heterogeneous bins with

* **perfect fairness** in expectation (bin ``i`` stores a
  ``b̂_i / sum(b̂)`` share of all copies, with capacities clipped per
  Lemma 2.2 so the share is achievable),
* **redundancy** (the k copies always land on k distinct bins),
* **O(n + k) lookups** (the Algorithm 2/4 scan),
* **bounded adaptivity** (expected ``k^2``-competitive block movement under
  bin insertions/removals — Lemmas 3.2/3.5), and
* **position awareness** (the i-th copy is identified, so erasure codes can
  replace plain mirroring).

The scan walks the bins in descending capacity order; at (copy ``c``, bin
``i``) a pseudo-random draw keyed on *(namespace, copy, bin name, ball
address)* is compared against the precomputed hazard ``h_c(i)`` (see
:mod:`repro.core.preprocess`).  Keying draws on bin *names* — not ranks —
is what keeps decisions stable when unrelated bins enter or leave, the
essence of the adaptivity bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import obs
from .._compat import get_numpy
from ..capacity.clipping import clip_capacities, is_capacity_efficient
from ..exceptions import InfeasibleReplicationError
from ..hashing.primitives import (
    as_u64_array,
    derive_base,
    unit_from_base,
)
from ..placement import kernels
from ..placement.base import BatchPlacement, ReplicationStrategy, record_batch
from ..types import BinSpec, Placement, sort_bins_by_capacity
from .preprocess import HazardTable, compute_hazards

#: Bounded size of the per-instance walk cache backing :meth:`place_copy`
#: (FIFO eviction; sized for the read-path pattern of consulting a few
#: positions of the same hot addresses repeatedly).
_WALK_CACHE_SIZE = 1024


class RedundantShare(ReplicationStrategy):
    """k-fold replicated placement with fairness and redundancy."""

    name = "redundant-share"
    kernel = "hazard-scan"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        copies: int = 2,
        namespace: str = "",
        clip: bool = True,
    ) -> None:
        """Build the strategy for a configuration snapshot.

        Args:
            bins: The participating storage devices.
            copies: Replication degree ``k``.
            namespace: Hash salt prefix; strategies with equal namespaces
                and bin names produce correlated placements (intended — it
                is how adaptivity across configurations works).
            clip: Clip capacities per Lemma 2.2 / Algorithm 1 when the raw
                vector is not capacity-efficient (default).  With
                ``clip=False`` an infeasible vector raises
                :class:`~repro.exceptions.InfeasibleReplicationError`.
        """
        super().__init__(bins, copies, namespace)
        self._ordered = sort_bins_by_capacity(self._bins)
        raw = [float(spec.capacity) for spec in self._ordered]
        if clip:
            effective = clip_capacities(raw, copies)
        else:
            if not is_capacity_efficient(raw, copies):
                raise InfeasibleReplicationError(
                    f"k*b_0 = {copies * raw[0]} exceeds B = {sum(raw)} "
                    "(Lemma 2.1); enable clipping or fix the capacities"
                )
            effective = raw
        self._table = compute_hazards(effective, copies)
        self._rank_ids = [spec.bin_id for spec in self._ordered]
        # Per-(copy, rank) salt bases: lookups then mix integers only.
        self._draw_bases = [
            [
                derive_base(self._namespace, "copy", copy, bin_id)
                for bin_id in self._rank_ids
            ]
            for copy in range(copies)
        ]
        # Deadline rank for each copy: the scan must select at this rank at
        # the latest so that enough bins remain for the following copies.
        self._deadlines = [
            len(self._ordered) - copies + c for c in range(copies)
        ]
        # Lazily built vectorized draw state (uint64 base matrix) and the
        # bounded walk memo shared by place_copy/primary/secondary.
        self._np_bases = None
        self._walk_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def table(self) -> HazardTable:
        """The preprocessed hazard table (read-only use intended)."""
        return self._table

    @property
    def ordered_bins(self) -> List[BinSpec]:
        """Bins in scan order (descending capacity, ties by id)."""
        return list(self._ordered)

    def effective_capacities(self) -> Dict[str, float]:
        """Clipped capacity ``b̂_i`` per bin id."""
        return {
            spec.bin_id: capacity
            for spec, capacity in zip(self._ordered, self._table.capacities)
        }

    def expected_shares(self) -> Dict[str, float]:
        """Exact expected share of all stored copies per bin (sums to 1)."""
        return {
            spec.bin_id: target / self._copies
            for spec, target in zip(self._ordered, self._table.targets)
        }

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _draw(self, copy: int, rank: int, address: int) -> float:
        return unit_from_base(self._draw_bases[copy][rank], address)

    def place(self, address: int) -> Placement:
        """Return the ordered bin ids of all ``k`` copies of ``address``."""
        return tuple(self._walk(address, self._copies))

    def place_copy(self, address: int, position: int) -> str:
        """Bin of copy ``position`` (0-based) via the shared walk cache.

        The full k-copy scan is computed once per address and memoised
        (bounded FIFO), so ``primary()``/``secondary()``/``place_copy``
        sequences over the same address cost one scan instead of
        re-running Algorithm 2/4 from rank 0 for every position.
        """
        if not 0 <= position < self._copies:
            raise IndexError(f"copy position {position} out of range")
        return self._rank_ids[self._cached_ranks(address)[position]]

    def _cached_ranks(self, address: int) -> List[int]:
        """Full scan result for ``address``, memoised with FIFO eviction."""
        ranks = self._walk_cache.get(address)
        if ranks is None:
            ranks = self._walk_ranks(address, self._copies)
            if len(self._walk_cache) >= _WALK_CACHE_SIZE:
                self._walk_cache.pop(next(iter(self._walk_cache)))
            self._walk_cache[address] = ranks
            if obs.sink().enabled:
                obs.metrics().counter("placement.walk_cache.misses").add(1)
        elif obs.sink().enabled:
            obs.metrics().counter("placement.walk_cache.hits").add(1)
        return ranks

    def _walk(self, address: int, copies_wanted: int) -> List[str]:
        """The scalar Algorithm 2/4 scan, mapped to bin ids."""
        return [
            self._rank_ids[rank]
            for rank in self._walk_ranks(address, copies_wanted)
        ]

    def _walk_ranks(self, address: int, copies_wanted: int) -> List[int]:
        """The Algorithm 2/4 scan over rank indices — the scalar reference
        the vectorized engine is pinned to."""
        result: List[int] = []
        rank = 0
        for copy in range(copies_wanted):
            hazards = self._table.hazards[copy]
            deadline = self._deadlines[copy]
            while True:
                if (
                    rank >= deadline
                    or hazards[rank] >= 1.0
                    or self._draw(copy, rank, address) < hazards[rank]
                ):
                    result.append(rank)
                    rank += 1
                    break
                rank += 1
        return result

    # ------------------------------------------------------------------
    # Batch placement
    # ------------------------------------------------------------------

    def _place_many_serial(self, addresses: Sequence[int]) -> BatchPlacement:
        """Vectorized Algorithm 2/4 over a whole address batch.

        With NumPy installed the hazard scan runs as a masked selection
        over the rank axis — per (copy, rank) one SplitMix64 evaluation of
        exactly the addresses whose scan is at that rank — instead of a
        Python while-loop per address; element-wise identical to
        :meth:`place` (the property tests pin this).  Without NumPy it
        falls back to the scalar scan per address.
        """
        np = get_numpy()
        if np is None:
            sink = obs.sink()
            depth_counts: Optional[Dict[int, int]] = (
                {} if sink.enabled else None
            )
            columns: List[List[int]] = [[] for _ in range(self._copies)]
            for address in addresses:
                ranks = self._walk_ranks(address, self._copies)
                for position, rank in enumerate(ranks):
                    columns[position].append(rank)
                if depth_counts is not None:
                    depth = ranks[-1] + 1
                    depth_counts[depth] = depth_counts.get(depth, 0) + 1
            if depth_counts is not None:
                self._record_scan(sink, len(columns[0]), depth_counts)
            return BatchPlacement(self._rank_ids, columns)
        return self._place_many_np(np, addresses)

    def _record_scan(
        self, sink, batch_size: int, depth_counts: Dict[int, int]
    ) -> None:
        """Record one batch hazard scan on an enabled sink.

        ``depth_counts`` maps scan depth (ranks visited until the last
        copy was placed) to the number of addresses with that depth; both
        engines reduce to this same aggregate, so traces and histograms
        are identical between the NumPy and pure-Python legs.
        """
        record_batch(
            sink, self.name, self._copies, batch_size, kernel=self.kernel
        )
        if not depth_counts:
            return
        histogram = obs.metrics().histogram("placement.scan_depth")
        depth_sum = 0
        for depth in sorted(depth_counts):
            count = depth_counts[depth]
            histogram.observe(depth, count)
            depth_sum += depth * count
        sink.emit(
            "placement.scan",
            strategy=self.name,
            addresses=batch_size,
            depth_sum=depth_sum,
            depth_max=max(depth_counts),
        )

    def _place_many_np(self, np, addresses: Sequence[int]) -> BatchPlacement:
        """The NumPy engine behind :meth:`place_many`."""
        bases = self._np_bases
        if bases is None:
            bases = self._np_bases = np.asarray(
                self._draw_bases, dtype=np.uint64
            )
        addr = as_u64_array(addresses)
        count = addr.shape[0]
        # The per-address premix is shared by every draw of the batch:
        # u64_from_base(base, a) == sm64(sm64(base ^ sm64(a))).
        mixed = kernels.premix(addr)
        position = np.zeros(count, dtype=np.int64)
        columns = np.empty((self._copies, count), dtype=np.int64)
        bin_count = len(self._rank_ids)
        for copy in range(self._copies):
            hazards = self._table.hazards[copy]
            deadline = self._deadlines[copy]
            copy_bases = bases[copy]
            undecided = np.ones(count, dtype=bool)
            for rank in range(bin_count):
                at_rank = np.flatnonzero(undecided & (position == rank))
                if at_rank.size == 0:
                    continue
                hazard = hazards[rank]
                if rank >= deadline or hazard >= 1.0:
                    taken = at_rank
                else:
                    draws = kernels.draws_from_premixed(
                        int(copy_bases[rank]), mixed[at_rank]
                    )
                    taken = at_rank[draws < hazard]
                position[at_rank] = rank + 1
                columns[copy, taken] = rank
                undecided[taken] = False
                if not undecided.any():
                    break
        sink = obs.sink()
        if sink.enabled:
            # After the last copy, position[j] is exactly the scan depth
            # (last selected rank + 1) of address j.
            depth_counts = {
                int(depth): int(tally)
                for depth, tally in enumerate(np.bincount(position))
                if tally
            }
            self._record_scan(sink, count, depth_counts)
        return BatchPlacement(self._rank_ids, list(columns))

    def primary(self, address: int) -> str:
        """Convenience accessor for the primary copy's bin."""
        return self.place_copy(address, 0)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    #
    # Strategy instances are immutable configuration snapshots, so the
    # walk cache can never go stale *within* an instance; reconfiguration
    # safety relies on callers (``Cluster._rebalance``/``add_device``)
    # building a fresh instance, which starts with empty caches.  The
    # regression tests in ``tests/cluster/test_walk_cache_invalidation``
    # pin that contract; these helpers exist so operational tooling can
    # audit and (defensively) drop the memo.

    def cache_info(self) -> Dict[str, int]:
        """Size and bound of the ``place_copy`` walk memo."""
        return {
            "entries": len(self._walk_cache),
            "capacity": _WALK_CACHE_SIZE,
        }

    def clear_walk_cache(self) -> None:
        """Drop every memoised walk (placements are recomputed on demand)."""
        self._walk_cache.clear()


class LinMirror(RedundantShare):
    """Algorithm 2: the 2-fold mirroring special case of Redundant Share.

    Kept as its own class because the paper develops and evaluates it
    separately (Figures 2 and 3); behaviourally identical to
    ``RedundantShare(copies=2)``.
    """

    name = "lin-mirror"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        namespace: str = "",
        clip: bool = True,
    ) -> None:
        super().__init__(bins, copies=2, namespace=namespace, clip=clip)

    def secondary(self, address: int) -> str:
        """Convenience accessor for the mirror copy's bin."""
        return self.place_copy(address, 1)
