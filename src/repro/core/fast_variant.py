"""The O(k) Redundant Share variant (Section 3.3 of the paper).

Instead of scanning the bins per copy, this variant precomputes — per
(copy index, previous bin) state — the conditional landing distribution of
the next copy, and draws from it directly with a single hash:

* copy 1 uses the marginal distribution ``p_i = č_i * prod_{j<i}(1 - č_j)``;
* copy ``c > 1`` given "copy ``c-1`` landed on bin ``l``" uses the hazard
  chain restricted to ranks ``> l``.

That is exactly the paper's "O(n) hash functions per copy, chosen in O(1)"
construction: O(k·n) state distributions, one draw per copy, O(k) lookup
(with an O(log n) inverse-CDF per draw in this implementation; the paper's
O(1) assumes constant-time hash-function evaluation — see the class note).

The joint placement distribution is *identical* to
:class:`~repro.core.redundant_share.RedundantShare` built from the same
bins (both are determined by the same hazard table); individual placements
differ because randomness is consumed differently.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from .._compat import get_numpy
from ..hashing.alias import CumulativeTable
from ..hashing.primitives import (
    as_u64_array,
    derive_base,
    unit_from_base,
    unit_from_base_open,
)
from ..placement import kernels
from ..placement.base import BatchPlacement, ReplicationStrategy, record_batch
from ..types import BinSpec, Placement
from ..placement import precompute
from .redundant_share import RedundantShare


class _StateBundle:
    """Shareable precomputed state for one (configuration, epoch) pair.

    Holds the per-(copy, previous rank) conditional tables and salt bases
    the scalar ``place`` consults, plus the NumPy mirrors the batch engine
    gathers from.  Bundles live in the epoch-keyed
    :func:`repro.placement.precompute.shared_cache`, so rebuilding a strategy
    over an unchanged configuration (benchmark scalar/batch pairs, cold
    test clones) reuses the tables instead of re-solving them — while a
    cluster reconfiguration, which advances the epoch, always starts
    clean.
    """

    __slots__ = ("tables", "bases", "np_states")

    def __init__(self) -> None:
        self.tables: Dict[Tuple[int, int], Optional[CumulativeTable]] = {}
        self.bases: Dict[Tuple[int, int], int] = {}
        #: (copy, prev) -> (forced_rank, base, cumulative) where a forced
        #: state has ``forced_rank >= 0`` and no table, and a sampled
        #: state has ``forced_rank == -1`` plus the uint64 base and the
        #: float64 boundary array shared bit-for-bit with the scalar
        #: :class:`CumulativeTable`.
        self.np_states: Dict[Tuple[int, int], tuple] = {}


class FastRedundantShare(ReplicationStrategy):
    """Precomputed-state Redundant Share with O(k) lookups.

    Note on adaptivity: the per-state sampler decides how much data moves
    when the configuration changes.  The default inverse CDF is fastest
    but its boundary shifts *cascade*; ``state_selector="rendezvous"``
    or ``"share"`` confine movement to roughly the total-variation
    distance between old and new state distributions, at O(n) resp.
    near-O(1) per copy — the memory/time/adaptivity triangle the paper's
    Section 3.3 alludes to (measured in
    ``benchmarks/bench_table_state_selector.py``).
    """

    name = "fast-redundant-share"
    kernel = "cdf-gather"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        copies: int = 2,
        namespace: str = "",
        clip: bool = True,
        eager: bool = False,
        state_selector: str = "cdf",
    ) -> None:
        """Build the state tables.

        Args:
            bins: The participating storage devices.
            copies: Replication degree ``k``.
            namespace: Hash salt prefix.
            clip: Clip capacities per Lemma 2.2 (default).
            eager: Precompute all O(k·n) state tables up front instead of
                lazily on first use (lazy is the default: most states are
                never visited for moderate ball populations).
            state_selector: Per-state sampling backend.  ``"cdf"`` (default)
                draws through an inverse CDF — O(log n) per copy but
                boundary shifts cascade, so reconfigurations move more data
                than the scan variant.  ``"rendezvous"`` scores the
                outcomes with weighted rendezvous hashing — adaptivity as
                good as the scan variant, at O(n) per copy (the paper's
                "more memory and additional hash functions" trade-off).
                ``"share"`` uses a per-state Share instance — near-O(1)
                per copy *and* adaptive, at the cost of (1+eps)-approximate
                rather than exact per-state fairness.
        """
        if state_selector not in ("cdf", "rendezvous", "share"):
            raise ValueError(
                f"unknown state_selector {state_selector!r}; "
                "use 'cdf', 'rendezvous' or 'share'"
            )
        super().__init__(bins, copies, namespace)
        self._state_selector = state_selector
        self._epoch = precompute.current_epoch()
        self._precompute: Optional[_StateBundle] = None
        self._share_states: Dict[Tuple[int, int], object] = {}
        # Reuse the scan variant's preprocessing (ordering, clipping,
        # hazard solve); this also guarantees both variants agree.
        self._scan = RedundantShare(
            bins, copies=copies, namespace=namespace, clip=clip
        )
        self._rank_ids = [spec.bin_id for spec in self._scan.ordered_bins]
        self._rank_index = {
            bin_id: rank for rank, bin_id in enumerate(self._rank_ids)
        }
        self._tables: Dict[Tuple[int, int], Optional[CumulativeTable]] = {}
        self._state_bases: Dict[Tuple[int, int], int] = {}
        self._rendezvous_bases: Dict[Tuple[int, int], list] = {}
        if eager:
            for copy in range(copies):
                first = -1 if copy == 0 else copy - 1
                for previous in range(first, len(self._rank_ids)):
                    self._state_table(copy, previous)

    @property
    def scan_equivalent(self) -> RedundantShare:
        """The O(n) strategy this variant is distribution-equivalent to."""
        return self._scan

    def expected_shares(self) -> Dict[str, float]:
        """Same closed form as the scan variant."""
        return self._scan.expected_shares()

    def _state_table(self, copy: int, previous_rank: int) -> Optional[CumulativeTable]:
        """Conditional distribution table for (copy, previous rank).

        Returns None for degenerate states where the next copy's rank is
        forced (exactly one positive outcome).
        """
        key = (copy, previous_rank)
        if key in self._tables:
            return self._tables[key]
        distribution = self._scan.table.conditional_distribution(
            copy + 1, previous_rank
        )
        tail = distribution[previous_rank + 1 :]
        positive = [value for value in tail if value > 0.0]
        table: Optional[CumulativeTable]
        if len(positive) <= 1:
            table = None
        else:
            table = CumulativeTable(tail)
        self._tables[key] = table
        return table

    def _select(self, copy: int, previous_rank: int, address: int) -> int:
        anchor = "root" if previous_rank < 0 else self._rank_ids[previous_rank]
        if self._state_selector == "rendezvous":
            return self._select_rendezvous(copy, previous_rank, anchor, address)
        if self._state_selector == "share":
            return self._select_share(copy, previous_rank, anchor, address)
        table = self._state_table(copy, previous_rank)
        if table is None:
            return self._forced_rank(copy, previous_rank)
        base = self._state_base(copy, previous_rank, anchor)
        draw = unit_from_base(base, address)
        return previous_rank + 1 + table.select(draw)

    def _state_base(
        self, copy: int, previous_rank: int, anchor: Optional[str] = None
    ) -> int:
        """Salt base for the (copy, previous rank) state draw (memoised)."""
        key = (copy, previous_rank)
        base = self._state_bases.get(key)
        if base is None:
            if anchor is None:
                anchor = (
                    "root" if previous_rank < 0
                    else self._rank_ids[previous_rank]
                )
            base = self._state_bases[key] = derive_base(
                self._namespace, "state", copy, anchor
            )
        return base

    def _forced_rank(self, copy: int, previous_rank: int) -> int:
        """First rank with positive mass after ``previous_rank``."""
        distribution = self._scan.table.conditional_distribution(
            copy + 1, previous_rank
        )
        for rank in range(previous_rank + 1, len(distribution)):
            if distribution[rank] > 0.0:
                return rank
        raise AssertionError("state has no positive outcome")

    def _select_rendezvous(
        self, copy: int, previous_rank: int, anchor: str, address: int
    ) -> int:
        """Adaptive per-state draw: weighted rendezvous over the outcomes.

        Exactly fair for any weight vector, and stable: a small shift of the
        conditional distribution only moves a ~total-variation fraction of
        the balls in this state.
        """
        entries = self._rendezvous_bases.get((copy, previous_rank))
        if entries is None:
            distribution = self._scan.table.conditional_distribution(
                copy + 1, previous_rank
            )
            entries = [
                (
                    rank,
                    distribution[rank],
                    derive_base(
                        self._namespace, "state", copy, anchor,
                        self._rank_ids[rank],
                    ),
                )
                for rank in range(previous_rank + 1, len(distribution))
                if distribution[rank] > 0.0
            ]
            self._rendezvous_bases[(copy, previous_rank)] = entries
        best_rank = -1
        best_score = -math.inf
        for rank, weight, base in entries:
            uniform = unit_from_base_open(base, address)
            score = -weight / math.log(uniform)
            if score > best_score:
                best_score = score
                best_rank = rank
        if best_rank < 0:
            raise AssertionError("state has no positive outcome")
        return best_rank

    def _select_share(
        self, copy: int, previous_rank: int, anchor: str, address: int
    ) -> int:
        """Adaptive near-O(1) per-state draw via a cached Share instance."""
        from ..placement.share_weighted import ShareWeightedPlacer

        key = (copy, previous_rank)
        placer = self._share_states.get(key)
        if placer is None:
            distribution = self._scan.table.conditional_distribution(
                copy + 1, previous_rank
            )
            ids = []
            weights = []
            for rank in range(previous_rank + 1, len(distribution)):
                if distribution[rank] > 0.0:
                    ids.append(self._rank_ids[rank])
                    weights.append(distribution[rank])
            if len(ids) == 1:
                placer = ids[0]  # forced outcome, no placer needed
            else:
                # A generous stretch keeps the per-state (1+eps) fairness
                # error well below the Monte-Carlo noise of the benches;
                # candidate sets stay ~stretch-sized, preserving near-O(1).
                placer = ShareWeightedPlacer(
                    ids,
                    weights,
                    f"{self._namespace}/state/{copy}/{anchor}",
                    stretch=16.0,
                )
            self._share_states[key] = placer
        if isinstance(placer, str):
            chosen = placer
        else:
            chosen = placer.place(address)
        return self._rank_index[chosen]

    def place(self, address: int) -> Placement:
        """O(k) lookup: one precomputed draw per copy."""
        ranks: List[int] = []
        previous = -1
        for copy in range(self._copies):
            previous = self._select(copy, previous, address)
            ranks.append(previous)
        return tuple(self._rank_ids[rank] for rank in ranks)

    # ------------------------------------------------------------------
    # Batch placement
    # ------------------------------------------------------------------

    def _ensure_precompute(self) -> _StateBundle:
        """Attach this instance to its epoch-keyed precompute bundle.

        Consulted once per instance on the first batch call; a hit reuses
        another instance's state tables for the identical configuration
        (same fingerprint *and* same placement epoch).  The instance's own
        lazily-built tables are merged in, and from here on the scalar and
        batch paths share one table store.
        """
        bundle = self._precompute
        if bundle is not None:
            return bundle
        cache = precompute.shared_cache()
        fingerprint = self._fingerprint()
        bundle = cache.get(fingerprint, self._epoch)
        if bundle is None:
            bundle = cache.put(fingerprint, self._epoch, _StateBundle())
        bundle.tables.update(self._tables)
        bundle.bases.update(self._state_bases)
        self._tables = bundle.tables
        self._state_bases = bundle.bases
        self._precompute = bundle
        return bundle

    def _fingerprint(self) -> tuple:
        """Everything the state tables depend on, as a hashable key."""
        return (
            "fast-redundant-share",
            self._namespace,
            self._copies,
            self._state_selector,
            tuple(
                (spec.bin_id, spec.capacity)
                for spec in self._scan.ordered_bins
            ),
        )

    def _place_many_serial(self, addresses: Sequence[int]) -> BatchPlacement:
        """Batch lookup through the precomputed state tables.

        With NumPy and the default ``"cdf"`` selector the whole batch runs
        as one SplitMix64 pass plus a ``searchsorted`` gather per visited
        state — the Section 3.3 O(k) bound per address, element-wise
        identical to :meth:`place` because both paths compare the very
        same :class:`CumulativeTable` boundaries.  The ``"rendezvous"``
        and ``"share"`` selectors score candidates through per-state hash
        races that the scalar path owns; they keep the generic loop.
        """
        if self._state_selector == "cdf":
            self._ensure_precompute()
            np = get_numpy()
            if np is not None:
                return self._place_many_np(np, addresses)
        return super()._place_many_serial(addresses)

    def _place_many_np(self, np, addresses: Sequence[int]) -> BatchPlacement:
        """The NumPy engine: per copy, gather draws grouped by state."""
        addr = as_u64_array(addresses)
        count = addr.shape[0]
        mixed = kernels.premix(addr)
        columns = np.empty((self._copies, count), dtype=np.int64)
        previous = np.full(count, -1, dtype=np.int64)
        for copy in range(self._copies):
            out = np.empty(count, dtype=np.int64)
            for prev in np.unique(previous):
                prev_rank = int(prev)
                chosen = np.flatnonzero(previous == prev)
                forced, base, cumulative = self._np_state(np, copy, prev_rank)
                if cumulative is None:
                    out[chosen] = forced
                else:
                    draws = kernels.draws_from_premixed(base, mixed[chosen])
                    out[chosen] = prev_rank + 1 + kernels.cdf_gather(
                        cumulative, draws
                    )
            columns[copy] = out
            previous = out
        sink = obs.sink()
        if sink.enabled:
            record_batch(
                sink, self.name, self._copies, count, kernel=self.kernel
            )
        return BatchPlacement(self._rank_ids, list(columns))

    def _np_state(self, np, copy: int, previous_rank: int) -> tuple:
        """NumPy mirror of one state: forced rank or (base, boundaries).

        Built lazily per state actually visited by a batch (mirroring the
        scalar laziness) and memoised in the shared bundle, so every
        instance over the same configuration and epoch gathers from the
        same arrays.
        """
        bundle = self._precompute
        key = (copy, previous_rank)
        state = bundle.np_states.get(key)
        if state is None:
            table = self._state_table(copy, previous_rank)
            if table is None:
                state = (self._forced_rank(copy, previous_rank), None, None)
            else:
                base = self._state_base(copy, previous_rank)
                state = (
                    -1,
                    np.uint64(base),
                    np.asarray(table.boundaries(), dtype=np.float64),
                )
            bundle.np_states[key] = state
        return state

    def cache_info(self) -> Dict[str, int]:
        """Occupancy of the per-state precompute (scalar + vector)."""
        bundle = self._precompute
        return {
            "state_tables": len(self._tables),
            "vector_states": len(bundle.np_states) if bundle else 0,
            "precomputed": int(bundle is not None),
            "epoch": self._epoch,
        }

    def state_count(self) -> int:
        """Number of state tables materialised so far (for the memory
        accounting in the time-efficiency bench)."""
        return len(self._tables)
