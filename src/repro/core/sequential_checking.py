"""Sequential Checking: reallocation-free placement over device epochs.

Ishikawa's Sequential Checking (arXiv 1707.00904; see PAPERS.md) targets
archival systems — tape and optical libraries — where moving data after
a scale-out is prohibitively expensive: the method places data so that
*adding devices moves nothing*.  The key idea is to treat the device
list as an **addition history** and never revisit decisions made when
the fleet was smaller.

This reproduction realises that idea inside the repo's immutable
snapshot model (a strategy is a pure function of its configuration):

* The bin list order is the device-addition order, optionally grouped
  into ``generations`` (devices installed together).
* Each usable prefix of ``p`` devices has a **capacity watermark**
  ``N_p`` — the Lemma 2.2 :func:`~repro.capacity.clipping.max_balls` of
  the first ``p`` devices — and owns the address *epoch*
  ``[N_{p'}, N_p)`` (``p'`` the previous prefix).  An address is placed
  by the first fleet prefix big enough to store it.
* Within its epoch an address draws ``k`` masked weighted-rendezvous
  winners over *only the first p devices*, weighted by each device's
  **residual fair target**: the copies it should hold at watermark
  ``N_p`` minus what earlier epochs already routed to it.  New devices
  therefore absorb new data first, exactly the sequential-checking
  behaviour, while old epochs stay frozen.

Appending devices appends epochs and touches nothing earlier, so for
every address below the old capacity limit the placement is **bit-for-
bit unchanged** — the zero-movement guarantee is exact, not
probabilistic, and is asserted by the trade-off bench's gate.

Addresses at or beyond the capacity limit are either folded back into
the stored address space (``overflow="wrap"``, the default — epoch
selection uses ``address mod N``, hash draws still use the full
address) or rejected (``overflow="error"``).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from .._compat import get_numpy
from ..capacity.clipping import max_balls
from ..exceptions import CapacityExceededError, ConfigurationError
from ..hashing.primitives import (
    as_u64_array,
    derive_base,
    unit_from_base_open,
)
from ..metrics.stats import fair_copy_shares
from ..placement import kernels
from ..placement.base import (
    BatchPlacement,
    ReplicationStrategy,
    record_batch,
)
from ..placement.rendezvous import rendezvous_score
from ..types import Placement

_MASK64 = (1 << 64) - 1

#: Relative floor applied to residual weights so devices whose fair
#: target is already met keep a vanishing (but non-zero, tie-free)
#: chance — zero weights would score every address identically and
#: trip the kernel tie guard on the whole batch.
_RESIDUAL_FLOOR = 1e-9


@dataclass(frozen=True)
class Epoch:
    """One frozen placement era: addresses ``[start, stop)`` over the
    first ``prefix`` devices with residual-target ``weights``."""

    prefix: int
    start: int
    stop: int
    weights: Tuple[float, ...]
    #: Per-draw ``(bin_id, weight, salt_base)`` rows, mirroring the
    #: proven trivial-replication masked-hrw layout.
    draw_entries: Tuple[Tuple[Tuple[str, float, int], ...], ...]


class SequentialChecking(ReplicationStrategy):
    """Zero-reallocation replication over capacity-watermark epochs."""

    name = "sequential-checking"
    kernel = "masked-hrw"

    def __init__(
        self,
        bins,
        copies: int = 2,
        namespace: str = "",
        generations: Optional[Sequence[int]] = None,
        overflow: str = "wrap",
    ):
        """Freeze the epoch table for this addition history.

        Args:
            bins: Devices in **addition order** (not capacity order).
            copies: Replication degree ``k``.
            namespace: Salt prefix (defaults to the strategy name).
            generations: Sizes of device groups added together, in
                order; must sum to ``len(bins)``.  ``None`` treats every
                device as its own generation.
            overflow: ``"wrap"`` folds addresses beyond the capacity
                limit back into the stored space; ``"error"`` raises
                :class:`~repro.exceptions.CapacityExceededError`.
        """
        super().__init__(bins, copies, namespace)
        if overflow not in ("wrap", "error"):
            raise ConfigurationError(
                f"overflow must be 'wrap' or 'error', got {overflow!r}"
            )
        self._overflow = overflow
        self._generation_sizes = self._resolve_generations(generations)
        self._epochs: List[Epoch] = []
        self._assigned: Dict[str, float] = {}
        self._build_epochs()
        if not self._epochs:
            raise ConfigurationError(
                "capacities too small to store a single ball at "
                f"k={self._copies}"
            )
        self._boundaries = [epoch.stop for epoch in self._epochs]
        self._capacity_limit = self._boundaries[-1]
        self._rank_ids = [spec.bin_id for spec in self._bins]
        self._rank_index = {
            bin_id: rank for rank, bin_id in enumerate(self._rank_ids)
        }

    def _resolve_generations(
        self, generations: Optional[Sequence[int]]
    ) -> Tuple[int, ...]:
        count = len(self._bins)
        if generations is None:
            return (1,) * count
        sizes = tuple(int(size) for size in generations)
        if not sizes or any(size < 1 for size in sizes):
            raise ConfigurationError(
                f"generation sizes must be positive, got {sizes}"
            )
        if sum(sizes) != count:
            raise ConfigurationError(
                f"generations {sizes} sum to {sum(sizes)}, "
                f"but there are {count} devices"
            )
        return sizes

    def _build_epochs(self) -> None:
        """Walk the addition history, freezing one epoch per watermark.

        The recursion is what makes scale-out free: each epoch's
        weights depend only on the capacities of its prefix and on the
        expected copies already routed by *earlier* epochs, so appending
        a generation recomputes nothing — it only appends.
        """
        assigned = self._assigned
        previous_balls = 0
        prefix = 0
        for size in self._generation_sizes:
            prefix += size
            if prefix < self._copies:
                continue  # fleet not yet big enough for k distinct copies
            capacities = {
                spec.bin_id: float(spec.capacity)
                for spec in self._bins[:prefix]
            }
            descending = sorted(capacities.values(), reverse=True)
            balls = max_balls(descending, self._copies)
            if balls <= previous_balls:
                continue  # watermark did not rise: empty epoch
            shares = fair_copy_shares(capacities, self._copies)
            target_total = balls * self._copies
            residuals = {
                bin_id: max(
                    0.0,
                    target_total * shares[bin_id] - assigned.get(bin_id, 0.0),
                )
                for bin_id in capacities
            }
            demand = float((balls - previous_balls) * self._copies)
            residual_total = sum(residuals.values())
            if residual_total > 0:
                scale = demand / residual_total
                for bin_id, residual in residuals.items():
                    assigned[bin_id] = (
                        assigned.get(bin_id, 0.0) + residual * scale
                    )
            floor = _RESIDUAL_FLOOR * max(
                max(residuals.values(), default=0.0), 1.0
            )
            weights = tuple(
                max(residuals[spec.bin_id], floor)
                for spec in self._bins[:prefix]
            )
            draw_entries = tuple(
                tuple(
                    (
                        spec.bin_id,
                        weights[rank],
                        derive_base(
                            self._namespace,
                            "epoch",
                            prefix,
                            "draw",
                            draw,
                            spec.bin_id,
                        ),
                    )
                    for rank, spec in enumerate(self._bins[:prefix])
                )
                for draw in range(self._copies)
            )
            self._epochs.append(
                Epoch(prefix, previous_balls, balls, weights, draw_entries)
            )
            previous_balls = balls

    @property
    def capacity_limit(self) -> int:
        """Most balls the fleet can store at ``k`` copies (Lemma 2.2)."""
        return self._capacity_limit

    @property
    def epochs(self) -> List[Epoch]:
        """The frozen epoch table (for introspection and tests)."""
        return list(self._epochs)

    def target_shares(self) -> Dict[str, float]:
        """Per-device share of all copies the epoch targets route.

        This is the *design* distribution (the expected copies the
        residual weighting aims at), not the exact realised one — the
        masked draws track it only approximately within each epoch.
        """
        total = sum(self._assigned.values())
        return {
            spec.bin_id: self._assigned.get(spec.bin_id, 0.0) / total
            for spec in self._bins
        }

    def _epoch_for(self, address: int) -> Epoch:
        value = address & _MASK64
        if value >= self._capacity_limit:
            if self._overflow == "error":
                raise CapacityExceededError(
                    f"address {address} beyond capacity limit "
                    f"{self._capacity_limit}"
                )
            value %= self._capacity_limit
        return self._epochs[bisect_right(self._boundaries, value)]

    def place(self, address: int) -> Placement:
        epoch = self._epoch_for(address)
        chosen: List[str] = []
        taken = set()
        for draw in range(self._copies):
            best_id = None
            best_score = -math.inf
            for bin_id, weight, base in epoch.draw_entries[draw]:
                if bin_id in taken:
                    continue
                uniform = unit_from_base_open(base, address)
                score = rendezvous_score(weight, uniform)
                if score > best_score:
                    best_score = score
                    best_id = bin_id
            assert best_id is not None
            chosen.append(best_id)
            taken.add(best_id)
        return tuple(chosen)

    def _place_many_serial(self, addresses: Sequence[int]) -> BatchPlacement:
        """Vectorized epoch placement: group by epoch, race per group.

        Addresses are bucketed by epoch with one ``searchsorted`` over
        the watermark boundaries; each bucket then runs the proven
        masked-hrw race of the trivial engine, restricted to the
        epoch's device prefix and residual weights.  Winner ranks within
        a prefix are global ranks (prefixes are list-order), so columns
        assemble directly.  Element-wise identical to :meth:`place`;
        near-ties are settled by the scalar path (see
        :data:`~repro.placement.kernels.TIE_GUARD`).  Without NumPy the
        generic scalar loop runs.
        """
        np = get_numpy()
        if np is None:
            return super()._place_many_serial(addresses)
        addr = as_u64_array(addresses)
        count = addr.shape[0]
        limit = np.uint64(self._capacity_limit)
        if self._overflow == "error":
            over = addr >= limit
            if over.any():
                index = int(np.flatnonzero(over)[0])
                raise CapacityExceededError(
                    f"address {int(addr[index])} beyond capacity limit "
                    f"{self._capacity_limit}"
                )
            folded = addr
        else:
            folded = addr % limit
        stops = np.asarray(self._boundaries, dtype=np.uint64)
        epoch_of = np.searchsorted(stops, folded, side="right")
        columns = np.empty((self._copies, count), dtype=np.int64)
        unsafe_indices: List[int] = []
        for epoch_index, epoch in enumerate(self._epochs):
            selected = np.flatnonzero(epoch_of == epoch_index)
            if selected.size == 0:
                continue
            weights = list(epoch.weights)
            all_bases = [
                np.asarray(
                    [base for _, _, base in epoch.draw_entries[draw]],
                    dtype=np.uint64,
                )
                for draw in range(self._copies)
            ]
            sub_addr = addr[selected]
            for start, stop in kernels.blocks(selected.size):
                mixed = kernels.premix(sub_addr[start:stop])
                block = stop - start
                taken = np.zeros((block, epoch.prefix), dtype=bool)
                unsafe = np.zeros(block, dtype=bool)
                rows = np.arange(block)
                target = selected[start:stop]
                for draw in range(self._copies):
                    uniforms = kernels.open_draw_matrix(
                        all_bases[draw], mixed
                    )
                    scores = kernels.hrw_score_matrix(weights, uniforms)
                    scores[taken] = -np.inf
                    winner, draw_unsafe = kernels.argmax_with_guard(scores)
                    unsafe |= draw_unsafe
                    columns[draw, target] = winner
                    taken[rows, winner] = True
                unsafe_indices.extend(
                    int(i) for i in target[np.flatnonzero(unsafe)]
                )
        for index in unsafe_indices:
            # Near-tie: the scalar loop is the authority on this address.
            placement = self.place(int(addresses[index]))
            for position, bin_id in enumerate(placement):
                columns[position, index] = self._rank_index[bin_id]
        kernels.record_tie_recomputes(self.kernel, len(unsafe_indices))
        sink = obs.sink()
        if sink.enabled:
            record_batch(
                sink, self.name, self._copies, count, kernel=self.kernel
            )
        return BatchPlacement(self._rank_ids, list(columns))
